//! # climate-rca — root cause analysis for large simulation code bases
//!
//! A Rust reproduction of Milroy, Baker, Hammerling, Kim, Jessup, Hauser,
//! *"Making root cause analysis feasible for large code bases: a solution
//! approach for a climate model"* (HPDC 2019).
//!
//! When an ensemble consistency test reports that a simulation's output is
//! statistically distinguishable from an accepted ensemble, this library
//! locates the *root cause* inside the code base: it compiles the source
//! into a variable-dependency digraph, slices it backward from the affected
//! output variables, partitions the slice into communities, ranks nodes by
//! eigenvector in-centrality, and iteratively refines the suspect set with
//! runtime sampling (Algorithm 5.4 of the paper).
//!
//! The workspace is organized as one crate per subsystem, re-exported here:
//!
//! - [`graph`] — digraph algorithms (BFS slicing, Girvan–Newman,
//!   centralities, quotient graphs).
//! - [`fortran`] — lexer/parser/AST for the Fortran-90 subset.
//! - [`metagraph`] — AST → variable digraph with metadata.
//! - [`stats`] — PCA-based ensemble consistency testing, lasso and
//!   median-distance variable selection, normalized-RMS comparison.
//! - [`model`] — the synthetic CESM-like climate model generator with
//!   ground-truth bug injection.
//! - [`sim`] — the interpreter: FMA/AVX2 simulation, PRNG substitution,
//!   coverage, runtime sampling, parallel ensembles.
//! - [`rca`] — the paper's pipeline: hybrid slicing, community/centrality
//!   ranking, iterative refinement, module-level AVX2 policies.
//!
//! ## Quickstart
//!
//! ```no_run
//! use climate_rca::prelude::*;
//!
//! // Generate the synthetic climate model and inject the paper's
//! // GOFFGRATCH typo (8.1328e-3 -> 8.1828e-3).
//! let model = model::generate(&model::ModelConfig::test());
//!
//! // 1. Statistics: ensemble + experiment, ECT verdict, variable selection.
//! let data = rca::run_statistics(&model, model::Experiment::GoffGratch,
//!                                 &rca::ExperimentSetup::quick()).unwrap();
//! assert_eq!(data.verdict, stats::Verdict::Fail);
//!
//! // 2. Graph: coverage-filtered source compiled to a variable digraph.
//! let pipeline = rca::RcaPipeline::build(&model).unwrap();
//!
//! // 3. Slice + refine toward the bug.
//! let internal = pipeline.outputs_to_internal(&rca::affected_outputs(&data, 10));
//! let slice = rca::induce_slice(&pipeline.metagraph, &internal,
//!                                |m| pipeline.is_cam(m));
//! ```

pub use rca_core as rca;
pub use rca_fortran as fortran;
pub use rca_graph as graph;
pub use rca_metagraph as metagraph;
pub use rca_model as model;
pub use rca_sim as sim;
pub use rca_stats as stats;

/// Convenient glob-import of the crates under their short names.
pub mod prelude {
    pub use crate::{fortran, graph, metagraph, model, rca, sim, stats};
}
