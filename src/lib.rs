//! # climate-rca — root cause analysis for large simulation code bases
//!
//! A Rust reproduction of Milroy, Baker, Hammerling, Kim, Jessup, Hauser,
//! *"Making root cause analysis feasible for large code bases: a solution
//! approach for a climate model"* (HPDC 2019).
//!
//! When an ensemble consistency test reports that a simulation's output is
//! statistically distinguishable from an accepted ensemble, this library
//! locates the *root cause* inside the code base: it compiles the source
//! into a variable-dependency digraph, slices it backward from the affected
//! output variables, partitions the slice into communities, ranks nodes by
//! eigenvector in-centrality, and iteratively refines the suspect set with
//! runtime sampling (Algorithm 5.4 of the paper).
//!
//! ## Quickstart
//!
//! The whole workflow lives behind [`rca::RcaSession`]: build a session
//! once per model (parsing, coverage calibration, and graph compilation
//! happen here), then [`diagnose`](rca::RcaSession::diagnose) any number
//! of experiments.
//!
//! ```no_run
//! use climate_rca::prelude::*;
//!
//! // Generate the synthetic climate model; experiments inject the
//! // paper's bugs (e.g. the GOFFGRATCH typo 8.1328e-3 -> 8.1828e-3).
//! let model = model::generate(&model::ModelConfig::test());
//!
//! let session = RcaSession::builder(&model)
//!     .setup(ExperimentSetup::quick())
//!     .oracle(OracleKind::Runtime) // sample real instrumented runs
//!     .build()?;
//!
//! let diagnosis = session.diagnose(model::Experiment::GoffGratch)?;
//! assert_eq!(diagnosis.verdict, stats::Verdict::Fail);
//! println!("{}", diagnosis.render());
//! # Ok::<(), RcaError>(())
//! ```
//!
//! When you need stage-level control — overriding the affected-output
//! selection, supplying your own evidence source — use the typed stage
//! handles. Each stage is only constructible from its predecessor, so the
//! pipeline cannot run out of order:
//!
//! ```no_run
//! # use climate_rca::prelude::*;
//! # let model = model::generate(&model::ModelConfig::test());
//! # let session = RcaSession::builder(&model).build()?;
//! let mut stats = session.statistics(model::Experiment::GoffGratch)?;
//! stats.affected.truncate(5);          // override the selection
//! let sliced = stats.slice()?;          // Statistics -> Sliced
//! let mut oracle = session.make_oracle(model::Experiment::GoffGratch);
//! let refined = sliced.refine_with(oracle.as_mut()); // Sliced -> Refined
//! let diagnosis = refined.into_diagnosis();
//! # Ok::<(), RcaError>(())
//! ```
//!
//! ## Choosing an oracle
//!
//! Refinement consumes evidence through the object-safe
//! [`rca::Oracle`] trait (see [`rca::oracle`] for the full contract):
//!
//! - [`OracleKind::Reachability`](rca::OracleKind::Reachability) — the
//!   paper's simulated sampling: a difference is detectable iff a directed
//!   path exists from a ground-truth bug site. Fast and deterministic; use
//!   it to evaluate the *method* when bug locations are known.
//! - [`OracleKind::Runtime`](rca::OracleKind::Runtime) — real sampling:
//!   each refinement iteration instruments the chosen variables in actual
//!   control and experimental interpreter runs. Use it when the bug is
//!   genuinely unknown.
//!
//! Anything implementing `Oracle` can be passed to
//! [`Sliced::refine_with`](rca::session::Sliced::refine_with) or the
//! low-level [`rca::refine()`].
//!
//! ## The oracle fast path
//!
//! Runtime-oracle refinement is the dominant cost of a campaign: every
//! iteration of Algorithm 5.4 asks `differs` about ~an iteration's worth
//! of candidate nodes, and the naive answer is two *complete* model runs.
//! The sampler instead makes that cost proportional to the backward slice
//! of what it captures, through three stacked mechanisms that live
//! entirely behind the unchanged [`rca::Oracle`] surface:
//!
//! - **Slice specialization** ([`sim::specialize_with`] over a cached
//!   [`sim::SpecIndex`]): the query's capture set is backward-sliced at
//!   the statement level and the program is re-materialized with every
//!   statement outside the slice pruned (control flow, PRNG draw
//!   positions, and capture-procedure invocation counts preserved), then
//!   re-lowered to bytecode. Specialized programs share the base
//!   program's interned arenas (`Arc`) and are cached per spec-set key.
//! - **Per-node memoization**: verdicts are keyed by metagraph `NodeId`;
//!   refinement re-queries overlapping node sets every iteration, and a
//!   memo hit answers without any run at all.
//! - **Early stopping**: sampling happens at one configured step, so
//!   specialized runs truncate at `sample_step + 1` instead of the full
//!   horizon.
//!
//! The contract is **fast paths never change evidence**: specialization
//! falls back to the full program whenever a capture set is not provably
//! separable, any specialized-run error permanently poisons the fast
//! path and re-runs the full pair (the generic path owns all error
//! semantics, exactly like the VM's kernel fallback), and oracle runs
//! are always fault-free (`RunConfig::without_faults`) so a scenario's
//! [`sim::FaultPlan`] can never shift verdicts. CI enforces the contract
//! end to end: a fixed-seed `--oracle runtime` campaign with
//! `--oracle-fastpath off` ([`rca::RcaSessionBuilder::oracle_fastpath`])
//! must produce a byte-identical scorecard to the default fastpath-on
//! run, and `sim_throughput`'s `oracle_fastpath` entry asserts the
//! specialized query pair stays ≥2× faster than the full pair.
//!
//! ## Migrating from the 0.1 free functions
//!
//! The 0.1 loose functions (`run_statistics`, `affected_outputs`,
//! `induce_slice`) and the `SamplingOracle` alias were deprecated shims
//! for one release and are now **removed**:
//!
//! | removed 0.1 call | replacement |
//! |---|---|
//! | `run_statistics(&model, exp, &setup)` | `session.statistics(exp)` (or `diagnose`) |
//! | `affected_outputs(&data, n)` | `ExperimentData::affected_outputs(&data, n)`, or the `affected` field of the `Statistics` stage |
//! | `induce_slice(&mg, &names, f)` | `stats.slice()` stage, or `backward_slice` for raw criteria |
//! | `SamplingOracle` (trait) | renamed [`rca::Oracle`] |
//! | manual report assembly | [`rca::Diagnosis`] fields + [`render`](rca::Diagnosis::render) |
//!
//! `RcaPipeline::build`, `backward_slice` and the free `refine` remain as
//! granular building blocks.
//!
//! Errors: every stage returns the workspace-wide [`rca::RcaError`]
//! instead of stringly-typed `RuntimeError`s; `RuntimeError` converts via
//! `From`, so `?` composes.
//!
//! ## Beyond the paper's experiments: scenarios and campaigns
//!
//! [`rca::Scenario`] describes any experimental model variant (mutated
//! source, PRNG swap, per-module FMA) with optional ground truth;
//! [`rca::RcaSession::diagnose_scenario`] runs the identical pipeline on
//! it, sharing the session's cached metagraph **and control ensemble**.
//! The `rca-campaign` crate builds on this: it generates seeded random
//! fault-injection scenarios, fans them out across threads, and scores
//! module-level localization — see `examples/campaign.rs` and the
//! `rca-campaign` binary.
//!
//! ## Execution engine: parse → compile → execute
//!
//! Model execution is a three-stage pipeline. `sim::compile_model` parses
//! the Fortran once and lowers it into a slot-indexed
//! [`sim::Program`] — interned symbols, pre-resolved call targets and
//! variable bindings (module globals become arena indices, subprogram
//! locals become frame offsets) — and every run is then a cheap
//! [`sim::Executor`] over the shared `Arc<Program>`: the hot
//! `cam_run_step` loop never hashes a name or touches a `String`. The
//! original tree-walking `sim::Interpreter` survives as the *reference
//! engine*; a differential suite holds the two bit-identical (histories,
//! samples, coverage) across all paper experiments and seeded campaign
//! mutants, which is the proof that the compilation step is
//! semantics-preserving.
//!
//! [`rca::RcaSession`] keeps a **program cache** keyed by
//! [`model::ModelSource::content_hash`] (FNV-1a over every file name and
//! source text). The invalidation rule is content addressing itself:
//! a cached program is valid exactly as long as a model with the same
//! source bytes is being executed — any source patch produces a new hash
//! (and a new entry), while variants that differ only in run
//! configuration (RAND-MT's PRNG swap, AVX2's FMA policy) share one
//! compiled program, because PRNG, FMA policy, and instrumentation are
//! execution-time parameters of the `Executor`, not of the `Program`.
//! The cache means an N-scenario campaign parses and compiles each
//! mutated variant exactly once — the ensemble, the statistics stage,
//! and every runtime-oracle query all execute the same shared program.
//!
//! ## The columnar run store
//!
//! Ensembles are the method's dominant cost (`n_ensemble +
//! n_experiment` full runs per diagnosis), so their data plane is **one
//! contiguous block, written in place and never re-assembled**:
//!
//! - [`sim::EnsembleRuns`] owns a single `members × steps × outputs`
//!   history block (member-major, each member's chunk step-major so the
//!   ECT evaluation step is a contiguous `outputs`-wide plane) plus
//!   positional sample buffers and a dense coverage bitmap. Ensemble and
//!   experimental matrices memcpy-gather straight out of the store's step
//!   planes (`Matrix::from_rows_with` / `Matrix::gather_rows_with` in
//!   `rca-stats`) — no per-run vectors, no hashing, no element-wise
//!   re-copy between the executor and the ECT.
//! - **Executor reuse contract**: [`sim::Executor::reset`] restores a
//!   just-constructed state in place — global arena overwritten from the
//!   program's pristine snapshot (allocation-reusing deep copy), PRNG
//!   reseeded, history rows / written lengths / coverage bits zeroed —
//!   and call frames, argument vectors, and array-local buffers are
//!   pooled across calls and runs. A reset run is bit-identical to a
//!   fresh one (the differential suite proves it on every paper
//!   experiment and on seeded campaign mutants), and a store fill gives
//!   each rayon worker one pooled executor for its whole chunk of
//!   members, so the steady-state ensemble allocates nothing beyond the
//!   store itself. [`sim::Executor::reset_with`] additionally swaps the
//!   run configuration — the `RuntimeSampler` oracle keeps one pooled
//!   executor pair for every refinement query this way.
//! - **When to materialize**: [`sim::RunOutput`] is the
//!   materialize-on-demand edge type. Hot paths read [`sim::RunView`]s
//!   (cheap indexed views into the store) or executor state directly;
//!   `RunView::materialize` reconstructs the owned ragged form
//!   bit-identically for callers that own a single run's results
//!   (single-run drivers, the differential harness, external tooling).
//!   Run coverage follows the same rule: [`sim::RunCoverage`] keys
//!   executed subprograms by `(ModuleId, VarId)` and renders strings only
//!   at the edges (calibration marking, reports, tests).
//!
//! ## The interned identity plane
//!
//! Every layer between the simulator and the diagnosis shares **one
//! workspace-wide symbol table** ([`metagraph::SymbolTable`], from the
//! `rca-ident` crate) assigning dense ids in three namespaces:
//! `VarId` (variable/canonical names), `ModuleId`, and `OutputId`
//! (history output names). Strings cross the boundary in exactly two
//! places:
//!
//! - **in** — parsing/compilation interns every module, variable, and
//!   `outfld` name into the base program's table; the session clones that
//!   table as the seed of the metagraph build, which appends the names
//!   only the graph knows (derived-type elements, per-line intrinsic
//!   nodes). The table is append-only, so every program-assigned id stays
//!   valid in the extended session table ([`rca::RcaSession::symbols`]).
//! - **out** — [`rca::Diagnosis`] resolves ids back to display strings
//!   (`render`, JSON export) exactly once, in
//!   `Refined::into_diagnosis`.
//!
//! Everything in between is id-keyed and `Vec`-backed: run histories are
//! dense buffers indexed by `OutputId` over the program's sorted output
//! table ([`sim::RunOutput`]), sample captures are positional over
//! `RunConfig::samples`, metagraph node metadata and its three lookup
//! indexes are `VarId`/`ModuleId` keyed, slicing criteria are `VarId`s,
//! the slice scope is a dense CAM mask over `ModuleId`, the ensemble/ECT
//! matrices assemble by direct column indexing, and campaign ground truth
//! matches by `ModuleId` binary search. **Ownership rules:** ids are
//! session-local (never persist or compare ids across sessions or across
//! differently-sourced programs — the scorecard/JSON edge always goes
//! through strings), and the session table is sealed behind an `Arc`
//! after the metagraph build — nothing interns after construction.
//!
//! ## The static analysis plane
//!
//! The paper's feasibility argument is that *static*, compiler-style
//! analysis collapses the search space before anything dynamic runs.
//! The [`analysis`] crate is that plane for the reproduction — a
//! reusable dataflow framework over the slot-indexed [`sim::Program`]
//! IR, id-keyed end to end (strings only at the render edge):
//!
//! - **Framework** ([`analysis::dataflow`], [`analysis::reach`],
//!   [`analysis::absint`]): per-procedure CFGs with ordered use/def
//!   events and worklist solvers (reaching definitions, def-use chains,
//!   liveness), call-graph reachability from the host entry points, and
//!   an interval/sign abstract interpretation for definite numeric
//!   hazards.
//! - **Lint catalog** ([`analysis::ModelAnalysis::lint`], `rca-lint`
//!   CLI): uninitialized-read, dead-store/redundant-store, unreachable
//!   procedure, unused output, unused sample spec, division-by-zero /
//!   sqrt/log domain hazards, and const-foldable subexpressions —
//!   deterministic string-keyed JSON, byte-identical across runs and
//!   thread counts. CI gates the bundled paper models at zero warnings
//!   and proves a seeded mutant still raises one.
//! - **Slicer-agreement invariant**: [`analysis::DepGraph`] is a
//!   *second, independent* implementation of §4.2 dependence extraction,
//!   built from the IR instead of the AST. A differential suite holds it
//!   node-for-node **and** edge-for-edge equal to the metagraph, and
//!   [`analysis::DepGraph::static_slice`] equal to
//!   [`rca::backward_slice`], on the pristine model, all seven paper
//!   experiments, and seeded campaign mutants — the same fence the
//!   interpreter/executor pair sits behind.
//! - **Campaign pre-filter**: `campaign_sites` classifies every
//!   injection candidate through both planes
//!   ([`analysis::ModelAnalysis::classify_site`] vs the metagraph's
//!   backward-reachable set) and asserts they agree; provably-dead sites
//!   (including whole subprograms `model::patch_sites` proves
//!   unreachable from the driver) are rejected before they can corrupt
//!   ground truth. [`rca::RcaSession::analyze`] exposes the plane over
//!   the session's own coverage-filtered source universe.
//!
//! ## The fault-tolerance plane
//!
//! Ensembles are dozens of independent runs, and the method's statistics
//! only need a quorum of them — so the pipeline **degrades instead of
//! diverging** when members fail:
//!
//! - **Runtime fault injection** ([`sim::FaultPlan`]): a seeded,
//!   deterministic chaos axis the [`sim::Executor`] applies mid-run —
//!   NaN/Inf poisoning and stuck values on chosen outputs, transient or
//!   persistent member aborts. Executor-only by construction: the
//!   reference tree-walker ignores it, differential suites run zero-fault
//!   configurations, and an empty plan leaves the hot path byte-identical.
//!   `rca-campaign --runtime-faults S` seeds one plan per scenario from a
//!   stream independent of the mutation RNG, so the chaos axis never
//!   perturbs a recorded mutation plan.
//! - **Graceful degradation**: [`sim::EnsembleRuns::run_resilient`]
//!   tracks per-member [`sim::MemberHealth`], retries failed members with
//!   derived reseeds up to a bounded [`rca::RetryPolicy`], and
//!   quarantines what never recovers; the statistics stages fit the ECT
//!   from the surviving quorum (configurable minimums) and record a
//!   [`rca::DegradedEnsemble`] note on the [`rca::Diagnosis`] instead of
//!   erroring. Non-finite values that poison an output without killing
//!   its member fall out of the keep set the ECT already intersects.
//! - **Run budgets**: statement fuel per run (`RunConfig::fuel`) and a
//!   per-diagnosis wall clock ([`rca::RcaSessionBuilder::wall_budget`])
//!   turn runaway work into typed, **retryable**
//!   [`rca::RcaError::Budget`] errors ([`rca::RcaError::is_retryable`])
//!   instead of hangs.
//! - **Resumable campaigns**: the batch runner streams each finished
//!   scenario to an append-only JSONL checkpoint keyed by `(seed, plan
//!   digest, index)`; a restarted campaign restores what already ran and
//!   its merged scorecard is byte-identical to an uninterrupted run's.
//!
//! The standing invariant is *degrade, never diverge*: every
//! fault-tolerance path is observable in telemetry
//! (`ensemble.member_retry`, `ensemble.quarantined`,
//! `run.budget_exhausted`) but invisible in deterministic artifacts —
//! a zero-fault fixed-seed campaign produces byte-identical scorecards
//! before and after the whole plane existed.
//!
//! ## The observability plane
//!
//! Every layer from parse to diagnosis is instrumented through the
//! [`obs`] crate (`rca-obs`): structured spans, process-wide metrics,
//! and per-stage phase profiles. Three rules govern it:
//!
//! - **Telemetry never leaks into deterministic artifacts.** Scorecard
//!   JSON, lint JSON, and every fixed-seed export are byte-identical
//!   with tracing enabled or disabled; wall times and allocation counts
//!   travel only through the telemetry channel (trace JSONL, metrics
//!   snapshots, [`rca::Diagnosis::profile`]). Trace files themselves are
//!   deterministic modulo the explicitly-tagged `ts`/`dur` fields —
//!   [`obs::strip_timing`] removes them so CI can diff traces.
//! - **Span naming**: pipeline stages are `phase.<stage>` spans
//!   (`phase.parse`, `phase.compile`, `phase.coverage`,
//!   `phase.metagraph`, `phase.ensemble_fill`, `phase.ect_fit`,
//!   `phase.statistics`, `phase.slice`, `phase.refine`,
//!   `phase.analysis_build`, `phase.lint`); one diagnosis runs under a
//!   `diagnose` span; progress points are dot-namespaced events
//!   (`refine.iter`, `scenario`, `scenario.error`, `campaign.plan`,
//!   `lint.report`). Counters and histograms use the same
//!   `subsystem.noun` convention (`executor.runs`, `oracle.queries`,
//!   `slice.nodes`).
//! - **Sink contract**: instrumentation is always on; *sinks* are opt-in
//!   ([`obs::with_sink`] thread-scoped, [`obs::install_global`]
//!   process-wide). With no sink installed a span is one relaxed atomic
//!   load and a branch — the `obs_overhead` bench holds the disabled
//!   cost under 2% of an ensemble fill. Use a **span** for anything
//!   with duration and structure, an **event** for a point-in-time
//!   progress fact, and a **counter/histogram** for aggregates that
//!   must be cheap enough for the hottest loops.
//!
//! The CLIs expose the plane as `--trace-out PATH` (JSONL trace,
//! schema-checked by `rca-trace-check`) and `--metrics` (snapshot to
//! stderr) on both `rca-campaign` and `rca-lint`;
//! [`rca::Diagnosis::profile`] reports per-phase wall time, call
//! counts, and (when a probe is installed) allocations for one
//! diagnosis.
//!
//! ## Workspace layout
//!
//! One crate per subsystem, re-exported here:
//!
//! - [`graph`] — digraph algorithms (BFS slicing, Girvan–Newman,
//!   centralities, quotient graphs).
//! - [`fortran`] — lexer/parser/AST for the Fortran-90 subset.
//! - [`metagraph`] — AST → variable digraph with metadata.
//! - [`stats`] — PCA-based ensemble consistency testing, lasso and
//!   median-distance variable selection, normalized-RMS comparison.
//! - [`model`] — the synthetic CESM-like climate model generator with
//!   ground-truth bug injection.
//! - [`sim`] — the execution substrate: the compiled slot-indexed engine
//!   and the reference tree-walker, FMA/AVX2 simulation, PRNG
//!   substitution, coverage, runtime sampling, and the columnar
//!   [`sim::EnsembleRuns`] store behind parallel ensembles.
//! - [`analysis`] — the static analysis plane: IR dataflow framework,
//!   the `rca-lint` detector catalog, and the independent dependence
//!   slicer cross-checked against the metagraph.
//! - [`obs`] — the observability plane: spans/events with pluggable
//!   sinks (no-op, in-memory collector, JSONL writer), the metrics
//!   registry, and phase profiling.
//! - [`rca`] — the paper's pipeline behind [`rca::RcaSession`]: hybrid
//!   slicing, community/centrality ranking, iterative refinement,
//!   module-level AVX2 policies, and the per-session program cache.

pub use rca_analysis as analysis;
pub use rca_core as rca;
pub use rca_fortran as fortran;
pub use rca_graph as graph;
pub use rca_metagraph as metagraph;
pub use rca_model as model;
pub use rca_obs as obs;
pub use rca_sim as sim;
pub use rca_stats as stats;

/// Convenient glob-import: the crates under their short names plus the
/// session-facade types.
pub mod prelude {
    pub use crate::{analysis, fortran, graph, metagraph, model, obs, rca, sim, stats};
    pub use rca_core::{Diagnosis, ExperimentSetup, OracleKind, RcaError, RcaSession, SliceScope};
}
