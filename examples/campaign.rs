//! Fault-injection campaign: hundreds of scored RCA scenarios from one
//! seed.
//!
//! Where `quickstart` diagnoses one known paper bug, this example turns
//! the evaluation around: the `rca-campaign` engine injects seeded random
//! defects (constant perturbations, operator swaps, comparison flips,
//! PRNG substitution, per-module FMA) into the generated model, runs every
//! scenario through one shared `RcaSession` in parallel, and scores
//! whether the pipeline flags each mutant and localizes the injected
//! module — the repo's standing quality benchmark.
//!
//! Run with: `cargo run --release --example campaign`

use rca_campaign::{run_campaign, CampaignOptions, RunnerOptions};
use rca_model::{generate, ModelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = generate(&ModelConfig::test());
    let opts = CampaignOptions {
        scenarios: 16,
        seed: 51966,
        include_paper: true, // the six paper experiments ride along
        ..Default::default()
    };
    let card = run_campaign(&model, &opts, &RunnerOptions::default())?;
    print!("{}", card.render());

    // The machine-readable scorecard is deterministic for a given seed
    // (timing excluded): the same seed yields byte-identical JSON.
    let json = serde_json::to_string_pretty(&card)?;
    println!(
        "\nJSON scorecard: {} bytes (deterministic per seed)",
        json.len()
    );

    let s = card.summary();
    println!(
        "localization rate {:.0}% over {} flagged mutants",
        s.localization_rate * 100.0,
        s.mutants_flagged
    );
    Ok(())
}
