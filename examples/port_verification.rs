//! Port verification: detect and attribute an FMA-capable "machine".
//!
//! Reproduces the investigation that motivated the paper (§1, §6.4): CESM
//! output from a new machine (FMA-capable CPUs) fails the ensemble
//! consistency test against the accepted ensemble, and the KGen-style
//! kernel comparison identifies which Morrison–Gettelman variables are
//! sensitive to the fused instructions — the analysis that originally
//! "took several months and many CESM experts".
//!
//! Run with: `cargo run --release --example port_verification`

use climate_rca::prelude::*;
use model::{generate, Experiment, ModelConfig};
use sim::{compare_kernel, Avx2Policy, RunConfig};

fn main() -> Result<(), RcaError> {
    let model = generate(&ModelConfig::test());
    let session = RcaSession::builder(&model)
        .setup(ExperimentSetup {
            steps: 9,
            ..ExperimentSetup::quick()
        })
        .build()?;

    // "Port" the model to a machine with AVX2/FMA enabled and test its
    // output against the accepted (FMA-disabled) ensemble — the typed
    // statistics stage alone, no slicing needed for this question.
    let stats = session.statistics(Experiment::Avx2)?;
    println!(
        "UF-ECT on the FMA-enabled port: {} (failure rate {:.0}%)",
        stats.verdict(),
        stats.data.failure_rate * 100.0
    );
    println!(
        "most affected outputs (median distance): {:?}",
        stats
            .data
            .median_ranking
            .iter()
            .take(6)
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
    );

    // KGen-style kernel extraction: compare every micro_mg variable
    // between the two instruction sets at identical initial conditions.
    let base = RunConfig {
        steps: 9,
        ..Default::default()
    };
    let fma = RunConfig {
        steps: 9,
        avx2: Avx2Policy::AllModules,
        ..Default::default()
    };
    // The paper's 1e-12 threshold reflects ~10^4 kernel operations per
    // variable in CESM's MG; our damped kernel holds deltas at 1-3 ulp,
    // so the proportional threshold is 1e-16.
    let cmp = compare_kernel(&model, &base, &fma, "micro_mg", 1e-16).expect("kernel comparison");
    println!(
        "\nKGen comparison of the micro_mg kernel: {} of {} variables exceed 1e-16 normalized RMS",
        cmp.flagged.len(),
        cmp.all.len()
    );
    for (name, nrms) in cmp.flagged.iter().take(10) {
        println!("  {name:<40} {nrms:.3e}");
    }
    println!("\n(the paper's manual investigation flagged 42 variables, including");
    println!(" nctend, qvlat, tlat, nitend and qsout — compare the list above)");
    Ok(())
}
