//! Module ranking: which modules matter most for information flow?
//!
//! Reproduces §6.5: collapse the variable digraph into the module quotient
//! graph (a graph minor under the "same module" equivalence relation),
//! rank modules by eigenvector centrality, and build the selective AVX2
//! disablement policies of Table 1. "Selective disablement of instructions
//! such as AVX2 balances optimization with preserving statistical
//! consistency."
//!
//! Run with: `cargo run --release --example module_ranking`

use climate_rca::prelude::*;
use model::{generate, ModelConfig};
use rca::{avx2_policy, DisablementPolicy, ModuleRanking};

fn main() -> Result<(), RcaError> {
    let model = generate(&ModelConfig::medium());
    let session = RcaSession::builder(&model).build()?;
    let ranking = ModuleRanking::build(session.metagraph());

    println!(
        "module quotient graph: {} nodes, {} edges (paper: 561 nodes, 4245 edges)",
        ranking.quotient.graph.node_count(),
        ranking.quotient.graph.edge_count()
    );

    println!("\ntop 20 modules by eigenvector centrality:");
    for (i, (module, c)) in ranking.ranked().into_iter().take(20).enumerate() {
        println!("  {:>2}. {module:<24} {c:.5}", i + 1);
    }

    let loc = model.loc_per_module();
    let mut by_loc: Vec<&(String, usize)> = loc.iter().collect();
    by_loc.sort_by_key(|m| std::cmp::Reverse(m.1));
    println!("\ntop 10 modules by lines of code (the paper's weaker baseline):");
    for (module, lines) in by_loc.into_iter().take(10) {
        println!("  {module:<24} {lines} LoC");
    }

    // Build the Table-1 policy sets.
    let k = ranking.modules.len() / 8;
    let central = avx2_policy(DisablementPolicy::DisableCentral(k), &ranking, &loc);
    let sim::Avx2Policy::Except(set) = &central else {
        unreachable!()
    };
    println!("\nselective AVX2 policy: disable FMA in the {k} most central modules:");
    let mut names: Vec<&String> = set.iter().collect();
    names.sort();
    println!("  {names:?}");
    Ok(())
}
