//! Bug hunt: run every paper experiment end-to-end and score the method.
//!
//! For each of the paper's experiments (§6, §8.2) this example asks one
//! `RcaSession` — configured with **real runtime sampling**, not the
//! reachability simulation — for a diagnosis: the instrumented variables
//! are captured in actual interpreter runs of the control and
//! experimental models.
//!
//! Run with: `cargo run --release --example bug_hunt`

use climate_rca::prelude::*;
use model::{generate, Experiment, ModelConfig};

fn main() -> Result<(), RcaError> {
    let model = generate(&ModelConfig::test());
    let session = RcaSession::builder(&model)
        .setup(ExperimentSetup::quick())
        .oracle(OracleKind::Runtime)
        .max_outputs(8)
        .build()?;

    println!(
        "{:<12} {:>8} {:>7} {:>9} {:>7} {:>33}  outcome",
        "experiment", "verdict", "rate", "slice", "iters", "stopped because"
    );
    for experiment in [
        Experiment::WsubBug,
        Experiment::GoffGratch,
        Experiment::Dyn3Bug,
        Experiment::RandomBug,
        Experiment::RandMt,
    ] {
        let d = session.diagnose(experiment)?;
        let outcome = if d.instrumented() {
            "bug instrumented"
        } else if d.localized() {
            "bug localized in final subgraph"
        } else {
            "missed"
        };
        println!(
            "{:<12} {:>8} {:>6.0}% {:>9} {:>7} {:>33}  {}",
            experiment.name(),
            d.verdict.to_string(),
            d.failure_rate * 100.0,
            format!("{}n", d.slice_nodes),
            d.iterations(),
            d.stop().map_or_else(|| "-".to_string(), |s| s.to_string()),
            outcome
        );
    }
    Ok(())
}
