//! Bug hunt: run every paper experiment end-to-end and score the method.
//!
//! For each of the six experiments (§6, §8.2) this example injects the
//! discrepancy, checks the UF-ECT verdict, selects affected outputs, and
//! runs Algorithm 5.4 with **real runtime sampling** (not the reachability
//! simulation): the instrumented variables are captured in actual
//! interpreter runs of the control and experimental models.
//!
//! Run with: `cargo run --release --example bug_hunt`

use climate_rca::prelude::*;
use rca::{
    affected_outputs, experiment_configs, induce_slice, refine, run_statistics, ExperimentSetup,
    RcaPipeline, ReachabilityOracle, RefineOptions, RuntimeSampler,
};
use model::{generate, Experiment, ModelConfig};

fn main() {
    let model = generate(&ModelConfig::test());
    let pipeline = RcaPipeline::build(&model).expect("pipeline");
    let setup = ExperimentSetup::quick();

    println!(
        "{:<12} {:>8} {:>7} {:>9} {:>7} {:>11}  outcome",
        "experiment", "verdict", "rate", "slice", "iters", "sampling"
    );
    for experiment in [
        Experiment::WsubBug,
        Experiment::GoffGratch,
        Experiment::Dyn3Bug,
        Experiment::RandomBug,
        Experiment::RandMt,
    ] {
        let data = run_statistics(&model, experiment, &setup).expect("statistics");
        let outputs = affected_outputs(&data, 8);
        let internal = pipeline.outputs_to_internal(&outputs);
        let slice = induce_slice(&pipeline.metagraph, &internal, |m| pipeline.is_cam(m));

        // Real runtime sampling oracle.
        let (ctl_cfg, exp_cfg) = experiment_configs(experiment, &setup);
        let mut sampler = RuntimeSampler::new(
            model.clone(),
            model.apply(experiment),
            ctl_cfg,
            exp_cfg,
        );
        sampler.sample_step = 2;

        let bug_nodes =
            ReachabilityOracle::from_sites(&pipeline.metagraph, &experiment.bug_sites()).bug_nodes;
        let report = refine(
            &pipeline.metagraph,
            &slice,
            &mut sampler,
            &bug_nodes,
            &RefineOptions::default(),
        );
        let outcome = if report.instrumented(&bug_nodes) {
            "bug instrumented"
        } else if report.localized(&bug_nodes) {
            "bug localized in final subgraph"
        } else {
            "missed"
        };
        println!(
            "{:<12} {:>8} {:>6.0}% {:>9} {:>7} {:>11}  {}",
            experiment.name(),
            data.verdict.to_string(),
            data.failure_rate * 100.0,
            format!("{}n", slice.graph.node_count()),
            report.iterations.len(),
            format!("{:?}", report.stop),
            outcome
        );
    }
}
