//! Quickstart: the full root-cause-analysis pipeline on one bug.
//!
//! Reproduces the paper's workflow end-to-end for the GOFFGRATCH
//! experiment (§6.3): a one-character typo in the Goff–Gratch saturation
//! vapor pressure coefficient, located by slicing + community detection +
//! centrality-guided sampling — all through one `RcaSession::diagnose`
//! call.
//!
//! Run with: `cargo run --release --example quickstart`

use climate_rca::prelude::*;
use model::{generate, Experiment, ModelConfig};

fn main() -> Result<(), RcaError> {
    // ------------------------------------------------------------------
    // 0. Generate the synthetic climate model; the experiment injects
    //    the paper's bug.
    // ------------------------------------------------------------------
    let config = ModelConfig::medium();
    let model = generate(&config);
    let experiment = Experiment::GoffGratch;
    println!(
        "model: {} modules, {} lines of Fortran",
        model.files.len(),
        model.total_loc()
    );
    println!(
        "experiment: {} — {:?}",
        experiment.name(),
        experiment.source_patches()
    );

    // ------------------------------------------------------------------
    // 1. Build the session: parse, coverage-calibrate, compile the
    //    variable digraph (paper §4) — once per model.
    // ------------------------------------------------------------------
    let session = RcaSession::builder(&model)
        .setup(ExperimentSetup::quick())
        .oracle(OracleKind::Reachability)
        .build()?;
    println!(
        "\nmetagraph: {} nodes, {} edges across {} modules",
        session.metagraph().node_count(),
        session.metagraph().edge_count(),
        session.metagraph().modules.len()
    );

    // ------------------------------------------------------------------
    // 2. Diagnose: statistics (§3) → slice (§5.1) → Algorithm 5.4.
    // ------------------------------------------------------------------
    let diagnosis = session.diagnose(experiment)?;
    print!("\n{}", diagnosis.render());

    println!(
        "\nground-truth bug {} by the procedure",
        if diagnosis.located() {
            "LOCATED"
        } else {
            "NOT located"
        }
    );
    for &b in &diagnosis.bug_nodes {
        println!("  bug node: {}", session.metagraph().display(b));
    }
    Ok(())
}
