//! Quickstart: the full root-cause-analysis pipeline on one bug.
//!
//! Reproduces the paper's workflow end-to-end for the GOFFGRATCH
//! experiment (§6.3): a one-character typo in the Goff–Gratch saturation
//! vapor pressure coefficient, located by slicing + community detection +
//! centrality-guided sampling.
//!
//! Run with: `cargo run --release --example quickstart`

use climate_rca::prelude::*;
use rca::{
    affected_outputs, induce_slice, refine, run_statistics, ExperimentSetup, RcaPipeline,
    ReachabilityOracle, RefineOptions,
};
use model::{generate, Experiment, ModelConfig};

fn main() {
    // ------------------------------------------------------------------
    // 0. Generate the synthetic climate model and inject the bug.
    // ------------------------------------------------------------------
    let config = ModelConfig::medium();
    let model = generate(&config);
    let experiment = Experiment::GoffGratch;
    println!(
        "model: {} modules, {} lines of Fortran",
        model.files.len(),
        model.total_loc()
    );
    println!(
        "experiment: {} — {:?}",
        experiment.name(),
        experiment.source_patches()
    );

    // ------------------------------------------------------------------
    // 1. Statistics: does the ensemble consistency test fail, and which
    //    outputs moved? (paper §3)
    // ------------------------------------------------------------------
    let setup = ExperimentSetup::quick();
    let data = run_statistics(&model, experiment, &setup).expect("statistics");
    println!(
        "\nUF-ECT verdict: {} (failure rate {:.0}%)",
        data.verdict,
        data.failure_rate * 100.0
    );
    let outputs = affected_outputs(&data, 10);
    println!("affected outputs: {outputs:?}");

    // ------------------------------------------------------------------
    // 2. Graph: coverage-filter the source, compile the variable digraph.
    //    (paper §4)
    // ------------------------------------------------------------------
    let pipeline = RcaPipeline::build(&model).expect("pipeline");
    println!(
        "\nmetagraph: {} nodes, {} edges across {} modules",
        pipeline.metagraph.node_count(),
        pipeline.metagraph.edge_count(),
        pipeline.metagraph.modules.len()
    );

    // ------------------------------------------------------------------
    // 3. Slice: union of shortest backward paths ending on the affected
    //    internal variables, restricted to CAM. (paper §5.1)
    // ------------------------------------------------------------------
    let internal = pipeline.outputs_to_internal(&outputs);
    println!("internal slicing criteria: {internal:?}");
    let slice = induce_slice(&pipeline.metagraph, &internal, |m| pipeline.is_cam(m));
    println!(
        "induced subgraph: {} nodes, {} edges",
        slice.graph.node_count(),
        slice.graph.edge_count()
    );

    // ------------------------------------------------------------------
    // 4. Refine: Algorithm 5.4 with the reachability sampling oracle.
    // ------------------------------------------------------------------
    let oracle_src = ReachabilityOracle::from_sites(&pipeline.metagraph, &experiment.bug_sites());
    let bug_nodes = oracle_src.bug_nodes.clone();
    let mut oracle = oracle_src;
    let report = refine(
        &pipeline.metagraph,
        &slice,
        &mut oracle,
        &bug_nodes,
        &RefineOptions::default(),
    );
    print!("\n{}", rca::refinement_trace(&pipeline.metagraph, &report));

    let located = report.instrumented(&bug_nodes) || report.localized(&bug_nodes);
    println!(
        "\nground-truth bug {} by the procedure",
        if located { "LOCATED" } else { "NOT located" }
    );
    for &b in &bug_nodes {
        println!("  bug node: {}", pipeline.metagraph.display(b));
    }
}
