//! Proptest sweep: the compiled engine and the tree-walking interpreter
//! must be bit-identical on **seeded campaign mutants**, not just the
//! hand-written paper experiments.
//!
//! The campaign's mutation operators (constant perturbation, operator
//! swap, comparison flip) produce arbitrary single-line source edits
//! across the CAM modules — exactly the inputs the compiled execution
//! engine will see in production fault-injection campaigns. Each case
//! derives a mutant from the sweep seed, runs it through both engines,
//! and requires bit-equal histories and identical coverage.

use climate_rca::{model, sim};
use proptest::prelude::*;
use rca_campaign::{campaign_sites, mutate_site, CampaignRng, MutationKind};
use rca_core::{ExperimentSetup, RcaSession};
use std::sync::OnceLock;

/// Model + mutation sites, built once for the whole sweep (session
/// construction is the expensive part).
fn fixture() -> &'static (model::ModelSource, Vec<model::PatchSite>) {
    static FIX: OnceLock<(model::ModelSource, Vec<model::PatchSite>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let m = model::generate(&model::ModelConfig::test());
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let sites = campaign_sites(&m, &session);
        assert!(!sites.is_empty());
        (m, sites)
    })
}

fn run_both(mutant: &model::ModelSource) -> (sim::RunOutput, sim::RunOutput) {
    let cfg = sim::RunConfig {
        steps: 3,
        ..Default::default()
    };
    let (asts, errs) = mutant.parse();
    assert!(errs.is_empty(), "{errs:?}");
    let mut interp = sim::Interpreter::load(&asts, cfg.clone()).expect("load");
    let tree = sim::run_loaded(&mut interp, &cfg, 0.0).expect("tree-walk");
    let program = sim::compile_model(mutant).expect("compile");
    let compiled = sim::run_program(&program, &cfg, 0.0).expect("compiled");

    // Third engine tier: the slot-indexed tree executor must match the
    // bytecode VM (the default above) on every mutant, bit for bit.
    let tree_engine_cfg = sim::RunConfig {
        engine: sim::ExecEngine::Tree,
        ..cfg
    };
    let via_tree_engine =
        sim::run_program(&program, &tree_engine_cfg, 0.0).expect("tree-engine run");
    let bits = |h: &Vec<Vec<f64>>| -> Vec<Vec<u64>> {
        h.iter()
            .map(|s| s.iter().map(|x| x.to_bits()).collect())
            .collect()
    };
    assert_eq!(
        bits(&via_tree_engine.history),
        bits(&compiled.history),
        "tree executor vs VM histories differ on mutant"
    );
    assert_eq!(&via_tree_engine.coverage, &compiled.coverage);

    (tree, compiled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mutated models execute bit-identically on both engines.
    #[test]
    fn seeded_mutants_run_bit_identical(seed in 0u64..1_000_000) {
        let (base, sites) = fixture();
        let mut rng = CampaignRng::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let kind = MutationKind::SOURCE_KINDS[seed as usize % MutationKind::SOURCE_KINDS.len()];
        let applicable: Vec<_> = sites.iter().filter(|s| kind.applies_to(s)).collect();
        prop_assert!(!applicable.is_empty());
        let site = applicable[rng.below(applicable.len())];
        let Some((mutant, _detail)) = mutate_site(base, site, kind, &mut rng) else {
            unreachable!("pre-filtered site applies");
        };
        let (tree, compiled) = run_both(&mutant);
        // Histories bit-equal (written outputs only — the compiled
        // engine's dense buffer spans the full OutputId table).
        prop_assert_eq!(tree.written_count(), compiled.written_count());
        for (name, series) in tree.history_iter() {
            let other = compiled.series(name.as_ref()).expect("written in both");
            prop_assert_eq!(series.len(), other.len());
            for (i, (x, y)) in series.iter().zip(other).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                    "{}[{}]: {:e} != {:e} ({:?} at {}::{})",
                    name, i, x, y, kind, site.module, site.subprogram
                );
            }
        }
        // Coverage identical as a set (id-keyed, compared through the
        // rendered string edge).
        prop_assert_eq!(&tree.coverage, &compiled.coverage);

        // The columnar run store must reproduce the compiled run
        // bit-for-bit on the same mutant: one member through pooled
        // reset executors vs the standalone run.
        let cfg = sim::RunConfig {
            steps: 3,
            ..Default::default()
        };
        let program = sim::compile_model(&mutant).expect("compile");
        let store = sim::EnsembleRuns::run(&program, &cfg, &[0.0]).expect("store");
        let via_store = store.view(0).materialize();
        let bits = |h: &Vec<Vec<f64>>| -> Vec<Vec<u64>> {
            h.iter()
                .map(|s| s.iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        prop_assert_eq!(bits(&via_store.history), bits(&compiled.history));
        prop_assert_eq!(&via_store.coverage, &compiled.coverage);
    }

    /// Seeded fault plans never panic either compiled engine, and the
    /// tree executor and bytecode VM stay bit-identical *under* the
    /// faults (aborts, retries, quarantines, poisoned/stuck outputs) —
    /// the fault axis is compiled-engines-only, so this pairing is its
    /// differential obligation.
    #[test]
    fn seeded_fault_plans_run_bit_identical_across_engines(seed in 0u64..1_000_000) {
        let (base, _) = fixture();
        let program = sim::compile_model(base).expect("compile");
        let perts = sim::perturbations(4, 1e-14, seed | 1);
        let steps = 5u32;
        let plan = sim::FaultPlan::seeded(seed, perts.len(), steps, 1 + (seed % 6) as usize);
        let run = |engine: sim::ExecEngine| {
            let cfg = sim::RunConfig {
                steps,
                engine,
                faults: plan.clone(),
                ..Default::default()
            };
            sim::EnsembleRuns::run_resilient(&program, &cfg, &perts, 2)
        };
        let tree = run(sim::ExecEngine::Tree);
        let vm = run(sim::ExecEngine::Vm);
        prop_assert_eq!(
            format!("{:?}", tree.health()),
            format!("{:?}", vm.health())
        );
        for m in 0..perts.len() {
            prop_assert_eq!(tree.written_of(m), vm.written_of(m));
            for step in 0..steps as usize {
                let a = tree.step_plane(m, step);
                let b = vm.step_plane(m, step);
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    prop_assert!(
                        x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                        "member {}/step {}[{}]: {:e} != {:e}", m, step, i, x, y
                    );
                }
            }
        }
    }
}
