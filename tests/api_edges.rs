//! API edge cases: unknown outputs, degenerate refinement options, and
//! skip-coverage sessions.

use climate_rca::prelude::*;
use model::{generate, Experiment, ModelConfig};
use rca::refine::StopReason;
use rca::{PipelineOptions, RcaPipeline, RefineOptions};

fn model() -> model::ModelSource {
    generate(&ModelConfig::test())
}

#[test]
fn outputs_to_internal_ignores_unknown_names() {
    let m = model();
    let p = RcaPipeline::build(&m).expect("pipeline");
    // Entirely unknown names map to nothing.
    let internal = p.outputs_to_internal(&["no_such_output".into(), "also_missing".into()]);
    assert!(internal.is_empty(), "{internal:?}");
    // Mixed lists keep the known mappings, in order, without inventing
    // entries for the unknown ones.
    let internal = p.outputs_to_internal(&[
        "no_such_output".into(),
        "flds".into(),
        "bogus".into(),
        "taux".into(),
    ]);
    assert_eq!(internal, vec!["flwds".to_string(), "wsx".to_string()]);
}

#[test]
fn session_reports_unknown_outputs_as_typed_error() {
    let m = model();
    let session = RcaSession::builder(&m)
        .setup(ExperimentSetup::quick())
        .build()
        .expect("session");
    let mut stats = session.statistics(Experiment::WsubBug).expect("statistics");
    // Override the selection with outputs the I/O registry cannot map.
    stats.affected = vec!["definitely_not_an_output".into()];
    let err = stats.slice().expect_err("slice must fail");
    match err {
        RcaError::UnknownOutputs(names) => {
            assert_eq!(names, vec!["definitely_not_an_output".to_string()]);
        }
        other => panic!("expected UnknownOutputs, got: {other}"),
    }
}

#[test]
fn zero_manual_threshold_still_terminates() {
    // manual_threshold: 0 removes the "small enough" exit entirely; the
    // loop must still stop via stall/disconnection/instrumentation/cap.
    let m = model();
    let session = RcaSession::builder(&m)
        .setup(ExperimentSetup::quick())
        .refine_options(RefineOptions {
            manual_threshold: 0,
            ..RefineOptions::default()
        })
        .build()
        .expect("session");
    let d = session.diagnose(Experiment::WsubBug).expect("diagnosis");
    let stop = d.stop().expect("refinement ran");
    assert_ne!(
        stop,
        StopReason::SmallEnough,
        "threshold 0 can never be reached by a non-empty subgraph"
    );
    // The procedure still produces a usable (non-empty) suspect set.
    assert!(!d.suspects.is_empty());
}

#[test]
fn skip_coverage_session_reaches_identical_verdicts() {
    let m = model();
    let filtered = RcaSession::builder(&m)
        .setup(ExperimentSetup::quick())
        .build()
        .expect("session");
    let unfiltered = RcaSession::builder(&m)
        .setup(ExperimentSetup::quick())
        .pipeline_options(PipelineOptions {
            skip_coverage: true,
            ..PipelineOptions::default()
        })
        .build()
        .expect("skip-coverage session");
    // Skip-coverage stats must be truthful: nothing was filtered, and the
    // universe matches what the coverage build started from.
    let fs = &unfiltered.pipeline().filter_stats;
    assert!(fs.subprograms_before > 0);
    assert_eq!(fs.subprograms_before, fs.subprograms_after);
    assert_eq!(
        fs.subprograms_before,
        filtered.pipeline().filter_stats.subprograms_before
    );

    let a = filtered.diagnose(Experiment::WsubBug).expect("diagnosis");
    let b = unfiltered.diagnose(Experiment::WsubBug).expect("diagnosis");
    assert_eq!(
        a.verdict, b.verdict,
        "coverage filtering must not change the verdict"
    );
    assert!(
        a.located() && b.located(),
        "both sessions must locate the wsub bug"
    );
}
