//! Cross-crate integration tests: the complete paper pipeline per
//! experiment through the `RcaSession` facade, at test scale, with both
//! sampling oracles.

use climate_rca::prelude::*;
use model::{generate, Experiment, ModelConfig};
use stats::Verdict;

fn session_for(
    model: &model::ModelSource,
    oracle: OracleKind,
    max_outputs: usize,
) -> RcaSession<'_> {
    RcaSession::builder(model)
        .setup(ExperimentSetup::quick())
        .oracle(oracle)
        .max_outputs(max_outputs)
        .build()
        .expect("session builds")
}

/// Runs the whole chain: statistics → selection → slice → refinement.
/// Both built-in oracles go through the identical session entry point.
fn full_chain(experiment: Experiment, oracle: OracleKind) -> (bool, Verdict) {
    let m = generate(&ModelConfig::test());
    let n = experiment.table2_outputs().len().clamp(4, 10);
    let session = session_for(&m, oracle, n);
    let d = session.diagnose(experiment).expect("diagnosis");
    (d.located(), d.verdict)
}

#[test]
fn wsubbug_end_to_end() {
    let (located, verdict) = full_chain(Experiment::WsubBug, OracleKind::Reachability);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located, "wsub bug must be located");
}

#[test]
fn goffgratch_end_to_end_with_runtime_sampling() {
    let (located, verdict) = full_chain(Experiment::GoffGratch, OracleKind::Runtime);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located, "Goff-Gratch typo must be located by real sampling");
}

#[test]
fn dyn3bug_end_to_end() {
    let (located, verdict) = full_chain(Experiment::Dyn3Bug, OracleKind::Reachability);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located);
}

#[test]
fn randombug_end_to_end() {
    let (located, verdict) = full_chain(Experiment::RandomBug, OracleKind::Reachability);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located);
}

#[test]
fn randmt_end_to_end_with_runtime_sampling() {
    let (located, verdict) = full_chain(Experiment::RandMt, OracleKind::Runtime);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located, "PRNG swap sources must be located");
}

#[test]
fn both_oracles_locate_the_same_wsub_bug() {
    // The acceptance bar for the Oracle abstraction: the same end-to-end
    // test passes with either built-in oracle plugged into the same
    // session pipeline, and the verdicts agree.
    let m = generate(&ModelConfig::test());
    let mut verdicts = Vec::new();
    for oracle in [OracleKind::Reachability, OracleKind::Runtime] {
        let session = session_for(&m, oracle, 4);
        let d = session.diagnose(Experiment::WsubBug).expect("diagnosis");
        assert!(d.located(), "oracle {oracle:?} must locate the wsub bug");
        verdicts.push(d.verdict);
    }
    assert_eq!(verdicts[0], verdicts[1]);
}

#[test]
fn oracles_agree_on_reachable_detections() {
    // For source-level bugs sampled early, reachability simulation and
    // real runtime sampling must agree on a panel of probe nodes. Both
    // oracles query the SAME metagraph (node ids are only meaningful
    // within one compiled graph), built by one session; the runtime
    // sampler is constructed directly over that session's model.
    let m = generate(&ModelConfig::test());
    let experiment = Experiment::GoffGratch;
    let session = session_for(&m, OracleKind::Reachability, 10);
    let mut reach = session.make_oracle(experiment);
    let (ctl, exp) = rca::experiment_configs(experiment, session.setup());
    let mut runtime = rca::RuntimeSampler::new(m.clone(), m.apply(experiment), ctl, exp);
    runtime.sample_step = 2;

    let mg = session.metagraph();
    let probes: Vec<graph::NodeId> = ["cld", "relhum", "wsub", "flwds", "tlat", "snowhland"]
        .iter()
        .filter_map(|n| mg.nodes_with_canonical(n).first().copied())
        .collect();
    let a = reach.differs(mg, &probes);
    let b = rca::Oracle::differs(&mut runtime, mg, &probes);
    // Runtime detections must be a subset of reachability (static paths
    // are conservative, §5.4 issue 3) and agree on most probes.
    for (i, (&ra, &rb)) in a.iter().zip(&b).enumerate() {
        if rb {
            assert!(ra, "runtime detected {i} without a static path");
        }
    }
    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    assert!(
        agree >= probes.len() - 1,
        "oracles disagree: {a:?} vs {b:?}"
    );
}

#[test]
fn control_experiment_passes_and_locates_nothing() {
    let m = generate(&ModelConfig::test());
    let session = session_for(&m, OracleKind::Reachability, 10);
    let d = session.diagnose(Experiment::Control).expect("diagnosis");
    assert_eq!(d.verdict, Verdict::Pass);
    assert!(d.refinement.is_none(), "a passing verdict must not refine");
    assert!(!d.located());
}

#[test]
fn coverage_reduction_reported() {
    let m = generate(&ModelConfig::test());
    let session = session_for(&m, OracleKind::Reachability, 10);
    let p = session.pipeline();
    assert!(p.filter_stats.subprograms_after > 0);
    assert!(session.metagraph().node_count() > 0);
    // Paper's preprocessing bookkeeping is available for reporting.
    assert!(p.coverage.subprogram_count() >= p.filter_stats.subprograms_after);
}
