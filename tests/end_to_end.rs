//! Cross-crate integration tests: the complete paper pipeline per
//! experiment, at test scale, with both sampling oracles.

use climate_rca::prelude::*;
use rca::{
    affected_outputs, experiment_configs, induce_slice, refine, run_statistics, ExperimentSetup,
    RcaPipeline, ReachabilityOracle, RefineOptions, RuntimeSampler, SamplingOracle,
};
use model::{generate, Experiment, ModelConfig};
use stats::Verdict;

fn model_and_pipeline() -> (model::ModelSource, RcaPipeline) {
    let m = generate(&ModelConfig::test());
    let p = RcaPipeline::build(&m).expect("pipeline");
    (m, p)
}

/// Runs the whole chain: statistics → selection → slice → refinement.
fn full_chain(experiment: Experiment, runtime_sampling: bool) -> (bool, Verdict) {
    let (m, p) = model_and_pipeline();
    let setup = ExperimentSetup::quick();
    let data = run_statistics(&m, experiment, &setup).expect("statistics");
    let n = experiment.table2_outputs().len().clamp(4, 10);
    let outputs = affected_outputs(&data, n);
    let internal = p.outputs_to_internal(&outputs);
    let slice = induce_slice(&p.metagraph, &internal, |mod_| p.is_cam(mod_));
    let bugs = ReachabilityOracle::from_sites(&p.metagraph, &experiment.bug_sites()).bug_nodes;

    let report = if runtime_sampling {
        let (ctl, exp) = experiment_configs(experiment, &setup);
        let mut sampler = RuntimeSampler::new(m.clone(), m.apply(experiment), ctl, exp);
        sampler.sample_step = 2;
        refine(&p.metagraph, &slice, &mut sampler, &bugs, &RefineOptions::default())
    } else {
        let mut oracle = ReachabilityOracle { bug_nodes: bugs.clone() };
        refine(&p.metagraph, &slice, &mut oracle, &bugs, &RefineOptions::default())
    };
    let located = report.instrumented(&bugs) || report.localized(&bugs);
    (located, data.verdict)
}

#[test]
fn wsubbug_end_to_end() {
    let (located, verdict) = full_chain(Experiment::WsubBug, false);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located, "wsub bug must be located");
}

#[test]
fn goffgratch_end_to_end_with_runtime_sampling() {
    let (located, verdict) = full_chain(Experiment::GoffGratch, true);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located, "Goff-Gratch typo must be located by real sampling");
}

#[test]
fn dyn3bug_end_to_end() {
    let (located, verdict) = full_chain(Experiment::Dyn3Bug, false);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located);
}

#[test]
fn randombug_end_to_end() {
    let (located, verdict) = full_chain(Experiment::RandomBug, false);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located);
}

#[test]
fn randmt_end_to_end_with_runtime_sampling() {
    let (located, verdict) = full_chain(Experiment::RandMt, true);
    assert_eq!(verdict, Verdict::Fail);
    assert!(located, "PRNG swap sources must be located");
}

#[test]
fn oracles_agree_on_reachable_detections() {
    // For source-level bugs sampled early, reachability simulation and
    // real runtime sampling must agree on a panel of probe nodes.
    let (m, p) = model_and_pipeline();
    let experiment = Experiment::GoffGratch;
    let bugs = ReachabilityOracle::from_sites(&p.metagraph, &experiment.bug_sites()).bug_nodes;
    let mut reach = ReachabilityOracle { bug_nodes: bugs };
    let setup = ExperimentSetup::quick();
    let (ctl, exp) = experiment_configs(experiment, &setup);
    let mut runtime = RuntimeSampler::new(m.clone(), m.apply(experiment), ctl, exp);
    runtime.sample_step = 2;

    let probes: Vec<graph::NodeId> = ["cld", "relhum", "wsub", "flwds", "tlat", "snowhland"]
        .iter()
        .filter_map(|n| p.metagraph.nodes_with_canonical(n).first().copied())
        .collect();
    let a = reach.differs(&p.metagraph, &probes);
    let b = runtime.differs(&p.metagraph, &probes);
    // Runtime detections must be a subset of reachability (static paths
    // are conservative, §5.4 issue 3) and agree on most probes.
    for (i, (&ra, &rb)) in a.iter().zip(&b).enumerate() {
        if rb {
            assert!(ra, "runtime detected {i} without a static path");
        }
    }
    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    assert!(agree >= probes.len() - 1, "oracles disagree: {a:?} vs {b:?}");
}

#[test]
fn control_experiment_passes_and_locates_nothing() {
    let (m, _) = model_and_pipeline();
    let data = run_statistics(&m, Experiment::Control, &ExperimentSetup::quick()).unwrap();
    assert_eq!(data.verdict, Verdict::Pass);
}

#[test]
fn coverage_reduction_reported() {
    let (_, p) = model_and_pipeline();
    assert!(p.filter_stats.subprograms_after > 0);
    assert!(p.metagraph.node_count() > 0);
    // Paper's preprocessing bookkeeping is available for reporting.
    assert!(p.coverage.subprogram_count() >= p.filter_stats.subprograms_after);
}
