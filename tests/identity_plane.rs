//! Identity-plane equivalence: everything the id-keyed pipeline renders
//! must be byte-identical to what the legacy string-keyed computation
//! produces.
//!
//! The PR that introduced the interned identity plane (one workspace-wide
//! `SymbolTable`, dense `VarId`/`ModuleId`/`OutputId` everywhere between
//! the simulator and the diagnosis) is only sound if the string edge is
//! lossless: for every paper experiment, the `Diagnosis` fields and the
//! rendered report derived *through ids* must match the same values
//! recomputed through the string-based APIs (`outputs_to_internal`,
//! `nodes_in_modules`, `display`).

use climate_rca::prelude::*;
use model::{generate, Experiment, ModelConfig};
use rca_core::backward_slice_names;
use std::sync::OnceLock;

fn session() -> &'static RcaSession<'static> {
    static MODEL: OnceLock<model::ModelSource> = OnceLock::new();
    static SESSION: OnceLock<RcaSession<'static>> = OnceLock::new();
    SESSION.get_or_init(|| {
        let m = MODEL.get_or_init(|| generate(&ModelConfig::test()));
        RcaSession::builder(m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session")
    })
}

#[test]
fn id_keyed_diagnosis_matches_legacy_string_rendering_on_all_paper_experiments() {
    let session = session();
    let mg = session.metagraph();
    for e in Experiment::ALL {
        let d = session.diagnose(e).expect("diagnosis");
        let Some(report) = &d.refinement else {
            // A passing verdict short-circuits before slicing.
            assert!(d.suspects.is_empty());
            assert!(d.slicing_criteria.is_empty());
            continue;
        };
        // Slicing criteria: the id path (OutputId → VarId → string at the
        // edge) must reproduce the legacy string-keyed I/O-registry
        // translation byte-for-byte.
        let legacy_criteria = session.pipeline().outputs_to_internal(&d.affected_outputs);
        assert_eq!(
            d.slicing_criteria,
            legacy_criteria,
            "{}: criteria diverge from string path",
            e.name()
        );
        // Suspects: id-resolved display names must equal per-node legacy
        // display rendering.
        let legacy_suspects: Vec<String> =
            report.final_nodes.iter().map(|&n| mg.display(n)).collect();
        assert_eq!(d.suspects, legacy_suspects, "{}", e.name());
        // Suspect modules: id-set → names must equal the string-keyed
        // sort/dedup of per-node module names.
        let mut legacy_modules: Vec<String> = report
            .final_nodes
            .iter()
            .map(|&n| mg.module_name_of(n).to_string())
            .collect();
        legacy_modules.sort();
        legacy_modules.dedup();
        assert_eq!(d.suspect_modules, legacy_modules, "{}", e.name());
        // The id list and the name list describe the same set.
        let syms = session.symbols();
        let mut from_ids: Vec<String> = d
            .suspect_module_ids
            .iter()
            .map(|&m| syms.module(m).to_string())
            .collect();
        from_ids.sort();
        assert_eq!(d.suspect_modules, from_ids, "{}", e.name());
        // The rendered report embeds exactly those strings.
        let rendered = d.render();
        assert!(rendered.contains(&format!("slicing criteria: {legacy_criteria:?}")));
        for m in &legacy_suspects[..legacy_suspects.len().min(3)] {
            assert!(
                rendered.contains(m),
                "{}: {m} missing from render",
                e.name()
            );
        }
    }
}

#[test]
fn id_keyed_slice_equals_string_keyed_slice() {
    // The id-keyed `backward_slice` engine and the string-edge wrapper
    // must induce the identical subgraph for Table-2 criteria.
    let session = session();
    let mg = session.metagraph();
    let syms = session.symbols();
    for e in [
        Experiment::WsubBug,
        Experiment::GoffGratch,
        Experiment::Dyn3Bug,
    ] {
        let names: Vec<String> = e
            .table2_internal()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let by_name = backward_slice_names(mg, &names, |m| session.pipeline().is_cam(m));
        let ids: Vec<_> = names.iter().filter_map(|n| syms.var_id(n)).collect();
        let by_id = rca_core::backward_slice(mg, &ids, |m| session.pipeline().is_cam_id(m));
        assert_eq!(by_name.mapping, by_id.mapping, "{}", e.name());
        assert_eq!(by_name.targets, by_id.targets, "{}", e.name());
        assert_eq!(
            by_name.graph.edge_count(),
            by_id.graph.edge_count(),
            "{}",
            e.name()
        );
    }
}

#[test]
fn columnar_ensemble_matrix_is_byte_identical_to_per_run_assembly() {
    // The session's cached control ensemble is assembled straight from
    // the columnar run store (contiguous evaluation-step planes, memcpy
    // row gathers). Recomputing the same matrix the legacy way — owned
    // per-run outputs, per-element indexing — must give the same bytes,
    // column names, and keep-set.
    let session = session();
    let ens = session.ensemble().expect("ensemble");
    let setup = session.setup();
    let program = session.program_for(session.model()).expect("base program");
    let perts = sim::perturbations(setup.n_ensemble, setup.ic_magnitude, setup.seed);
    let runs =
        sim::run_ensemble_program(&program, &session.control_config(), &perts).expect("runs");
    let eval_step = setup.steps - 1;
    let kept = sim::finite_outputs_at(&runs, eval_step);
    let legacy_names: Vec<String> = kept
        .iter()
        .map(|&i| runs[0].output_names[i as usize].to_string())
        .collect();
    assert_eq!(ens.names, legacy_names);
    let legacy = stats::Matrix::from_fn(runs.len(), kept.len(), |r, c| {
        runs[r].history[kept[c] as usize][eval_step as usize]
    });
    assert_eq!(ens.matrix.rows(), legacy.rows());
    assert_eq!(ens.matrix.cols(), legacy.cols());
    for r in 0..legacy.rows() {
        for c in 0..legacy.cols() {
            assert_eq!(
                ens.matrix[(r, c)].to_bits(),
                legacy[(r, c)].to_bits(),
                "({r},{c}) diverges"
            );
        }
    }
    // The id-keyed per-run iterators agree with the name-keyed edge.
    for run in &runs {
        let by_ids: Vec<(String, u64)> = run
            .outputs_at_ids(eval_step)
            .map(|(id, x)| (run.output_names[id.index()].to_string(), x.to_bits()))
            .collect();
        let by_names: Vec<(String, u64)> = run
            .outputs_at(eval_step)
            .into_iter()
            .map(|(n, x)| (n.to_string(), x.to_bits()))
            .collect();
        assert_eq!(by_ids, by_names);
    }
}

#[test]
fn session_table_extends_program_table_without_invalidating_ids() {
    // The workspace table is the program interner plus the metagraph's
    // extensions: every module/output the program knows must resolve to
    // the same id through the session table.
    let session = session();
    let program = session
        .program_for(session.model())
        .expect("base program cached");
    let psyms = program.symbols();
    let ssyms = session.symbols();
    for i in 0..psyms.module_count() {
        let id = metagraph::ModuleId(i as u32);
        assert_eq!(ssyms.module(id), psyms.module(id), "module id {i} drifted");
    }
    for i in 0..psyms.output_count() {
        let id = metagraph::OutputId(i as u32);
        assert_eq!(ssyms.output(id), psyms.output(id), "output id {i} drifted");
    }
    for i in 0..psyms.var_count() {
        let id = metagraph::VarId(i as u32);
        assert_eq!(ssyms.var(id), psyms.var(id), "var id {i} drifted");
    }
    assert!(ssyms.var_count() >= psyms.var_count());
}
