//! Shape assertions from the paper's evaluation: relative sizes, orderings
//! and structural claims that must hold at any model scale.

use climate_rca::prelude::*;
use graph::{fit_power_law, DegreeKind};
use model::{generate, Experiment, ModelConfig};
use rca::{backward_slice_names, ModuleRanking, RcaPipeline};

fn pipeline() -> (model::ModelSource, RcaPipeline) {
    let m = generate(&ModelConfig::test());
    let p = RcaPipeline::build(&m).expect("pipeline");
    (m, p)
}

fn slice_for(p: &RcaPipeline, exp: Experiment) -> rca::Slice {
    let internal: Vec<String> = exp
        .table2_internal()
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    backward_slice_names(&p.metagraph, &internal, |m| p.is_cam(m))
}

#[test]
fn table2_output_mapping_is_complete() {
    // Every Table-2 output name resolves through the I/O registry to the
    // paper's internal name.
    let (_, p) = pipeline();
    for exp in [
        Experiment::WsubBug,
        Experiment::RandomBug,
        Experiment::GoffGratch,
        Experiment::Dyn3Bug,
        Experiment::RandMt,
        Experiment::Avx2,
    ] {
        let outputs: Vec<String> = exp
            .table2_outputs()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let internal = p.outputs_to_internal(&outputs);
        let expected: Vec<&str> = exp.table2_internal();
        for want in &expected {
            assert!(
                internal.iter().any(|i| i == want),
                "{exp:?}: internal {want} not derivable from outputs {outputs:?} -> {internal:?}"
            );
        }
    }
}

#[test]
fn slice_size_ordering_matches_paper() {
    // Paper subgraphs: WSUBBUG 14 << RANDOMBUG 628 < GOFFGRATCH 4243 ≈
    // AVX2 4159 < DYN3BUG 5999. Absolute sizes differ; the ordering of
    // the isolated bug vs. the core experiments must hold.
    let (_, p) = pipeline();
    let wsub = slice_for(&p, Experiment::WsubBug).graph.node_count();
    let goff = slice_for(&p, Experiment::GoffGratch).graph.node_count();
    let dyn3 = slice_for(&p, Experiment::Dyn3Bug).graph.node_count();
    assert!(wsub < 25, "wsub slice must be tiny, got {wsub}");
    assert!(
        wsub * 4 < goff,
        "isolated wsub ({wsub}) must be far below goffgratch ({goff})"
    );
    assert!(wsub * 4 < dyn3, "wsub {wsub} vs dyn3 {dyn3}");
}

#[test]
fn wsub_slice_members_are_all_wsub_related() {
    // §6.1: "The induced subgraph contains only 14 internal variables,
    // all of which are related to wsub."
    let (_, p) = pipeline();
    let slice = slice_for(&p, Experiment::WsubBug);
    for &n in slice.meta_nodes() {
        let module = p.metagraph.module_name_of(n);
        assert!(
            ["microp_aero", "camstate", "ppgrid", "shr_kind_mod"].contains(&module),
            "unexpected module {} ({}) in the wsub slice",
            module,
            p.metagraph.display(n)
        );
    }
}

#[test]
fn degree_distribution_is_heavy_tailed() {
    // Figs. 4/9: approximately power law.
    let (_, p) = pipeline();
    let fit = fit_power_law(&p.metagraph.graph, DegreeKind::Total, 2).expect("fit");
    assert!(
        fit.alpha > 1.3 && fit.alpha < 5.0,
        "implausible power-law exponent {}",
        fit.alpha
    );
    // A genuine hub exists (the state aggregate).
    let max_deg = p
        .metagraph
        .graph
        .nodes()
        .map(|n| p.metagraph.graph.degree(n))
        .max()
        .unwrap();
    let mean_deg =
        2.0 * p.metagraph.graph.edge_count() as f64 / p.metagraph.graph.node_count() as f64;
    assert!(
        max_deg as f64 > 6.0 * mean_deg,
        "no hub: max {max_deg} vs mean {mean_deg:.1}"
    );
}

#[test]
fn module_quotient_ranks_core_over_periphery() {
    // §6.5: centrality "accurately captures the information flow between
    // CESM modules" — the anchor physics must outrank the median filler.
    let (_, p) = pipeline();
    let ranking = ModuleRanking::build(&p.metagraph);
    let ranked = ranking.ranked();
    let pos = |name: &str| {
        ranked
            .iter()
            .position(|(m, _)| *m == name)
            .unwrap_or(usize::MAX)
    };
    let median = ranked.len() / 2;
    for core in ["micro_mg", "dycore", "camstate", "cloud_diagnostics"] {
        assert!(
            pos(core) < median,
            "{core} ranked {} of {}",
            pos(core),
            ranked.len()
        );
    }
}

#[test]
fn randmt_bug_nodes_downstream_of_central_cluster() {
    // The Fig. 5 signature: no directed path from the PRNG-tainted
    // variables back to the emissivity cluster that dominates centrality.
    let (_, p) = pipeline();
    let taint = p
        .metagraph
        .node_by_key("cloud_cover_lw", None, "cldovrlp")
        .expect("cldovrlp node");
    let emis = p
        .metagraph
        .node_by_key("cloud_cover_lw", None, "emis")
        .expect("emis node");
    assert!(
        graph::reaches_any(&p.metagraph.graph, emis, &[taint]),
        "emissivity cluster feeds the overlap"
    );
    assert!(
        !graph::reaches_any(&p.metagraph.graph, taint, &[emis]),
        "PRNG taint must NOT reach the upstream cluster (iteration-1 non-detection)"
    );
}

#[test]
fn dum_is_most_central_in_mg_kernel() {
    // §6.4: "The node with the largest eigenvector in-centrality is the
    // temporary, dummy variable dum."
    let (_, p) = pipeline();
    let mg_nodes: Vec<graph::NodeId> = p.metagraph.nodes_in_modules(|m| m == "micro_mg");
    let (sub, mapping) = p.metagraph.graph.induced_subgraph(&mg_nodes);
    let cent = graph::eigenvector_centrality(
        &sub,
        graph::Direction::In,
        graph::PowerIterOptions::default(),
    );
    let top = graph::top_m(&cent, 3);
    let names: Vec<String> = top
        .iter()
        .map(|&n| p.metagraph.canonical_of(mapping[n.index()]).to_string())
        .collect();
    assert_eq!(names[0], "dum", "top-3 by in-centrality: {names:?}");
}

#[test]
fn coverage_is_the_hybrid_in_hybrid_slicing() {
    // Dead code must vanish from slices when coverage is applied and
    // reappear when it is skipped.
    let mut m = generate(&ModelConfig::test());
    let f = m
        .files
        .iter_mut()
        .find(|f| f.name == "wv_saturation.F90")
        .unwrap();
    f.source = f.source.replace(
        "contains",
        "contains\n  real(r8) function dead_path(x) result(r)\n    real(r8), intent(in) :: x\n    r = x * 3.0_r8\n  end function dead_path\n",
    );
    let hybrid = RcaPipeline::build(&m).unwrap();
    assert!(hybrid
        .metagraph
        .nodes_with_canonical("dead_path")
        .is_empty());
    let static_only = RcaPipeline::build_with(
        &m,
        &rca::PipelineOptions {
            skip_coverage: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        static_only.metagraph.node_count() > hybrid.metagraph.node_count(),
        "static graph must be strictly larger"
    );
}
