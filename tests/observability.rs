//! The observability plane, end to end: span-tree shape per pipeline
//! phase, profile reporting, and the standing invariant that telemetry
//! never changes a byte of any deterministic artifact.

use climate_rca::prelude::*;
use model::{generate, Experiment, ModelConfig};
use obs::{Collector, JsonlWriter};
use proptest::prelude::*;
use rca_campaign::{
    run_campaign, run_scenario, CampaignOptions, CampaignScenario, RunnerOptions, ScenarioClass,
};
use rca_core::Scenario;
use std::sync::Arc;

fn test_session(model: &model::ModelSource) -> RcaSession<'_> {
    RcaSession::builder(model)
        .setup(ExperimentSetup::quick())
        .max_outputs(4)
        .build()
        .expect("session builds")
}

/// Every pipeline phase must appear in the trace, with diagnosis stages
/// nested under the `diagnose` span.
#[test]
fn span_tree_covers_every_pipeline_phase() {
    let m = generate(&ModelConfig::test());
    let collector = Arc::new(Collector::new());
    let d = obs::with_sink(collector.clone(), || {
        let session = test_session(&m);
        session.diagnose(Experiment::WsubBug).expect("diagnosis")
    });
    assert!(d.located());

    // One span per phase, at least once each: the build phases fire
    // during session construction, the diagnosis phases during diagnose.
    for phase in [
        "phase.parse",
        "phase.coverage",
        "phase.metagraph",
        "phase.ensemble_fill",
        "phase.ect_fit",
        "phase.statistics",
        "phase.slice",
        "phase.refine",
        "diagnose",
    ] {
        assert!(
            collector.spans_named(phase) >= 1,
            "missing span {phase}; saw {:?}",
            collector.span_names()
        );
    }

    // Tree shape: the diagnosis stages (and the lazily-built control
    // ensemble they trigger) nest under the `diagnose` span.
    let under_diagnose = collector.children_of("diagnose");
    for child in [
        "phase.ensemble_fill",
        "phase.statistics",
        "phase.slice",
        "phase.refine",
    ] {
        assert!(
            under_diagnose.contains(&child),
            "{child} not nested under diagnose: {under_diagnose:?}"
        );
    }

    // Refinement streams one event per iteration with its candidate
    // count and the oracle verdict.
    let iters = collector.events_named("refine.iter");
    assert!(!iters.is_empty(), "no refine.iter events");
    for fields in &iters {
        assert!(
            fields.iter().any(|(k, _)| *k == "candidates"),
            "refine.iter missing candidates field: {fields:?}"
        );
        assert!(
            fields.iter().any(|(k, _)| *k == "any_detected"),
            "refine.iter missing oracle verdict field: {fields:?}"
        );
    }
}

/// `Diagnosis::profile()` must report non-zero per-phase wall time even
/// with no sink installed — profiling is value-level, not sink-level.
#[test]
fn diagnosis_profile_reports_nonzero_phase_timings() {
    let m = generate(&ModelConfig::test());
    let session = test_session(&m);
    let d = session.diagnose(Experiment::WsubBug).expect("diagnosis");
    let profile = d.profile();
    for phase in [
        "phase.compile",
        "phase.parse",
        "phase.metagraph",
        "phase.ensemble_fill",
        "phase.statistics",
        "phase.slice",
        "phase.refine",
    ] {
        let entry = profile
            .get(phase)
            .unwrap_or_else(|| panic!("profile missing {phase}: {}", profile.render()));
        assert!(entry.nanos > 0, "{phase} reports zero wall time");
        assert!(entry.count > 0, "{phase} reports zero calls");
    }
    assert!(profile.total_nanos() > 0);
}

/// The hard invariant: the scorecard JSON artifact is byte-identical
/// with tracing enabled vs disabled.
#[test]
fn tracing_never_changes_the_scorecard_artifact() {
    let m = generate(&ModelConfig::test());
    let opts = CampaignOptions {
        scenarios: 4,
        seed: 51966,
        ..Default::default()
    };
    let runner = RunnerOptions::default();

    let plain = run_campaign(&m, &opts, &runner).expect("untraced campaign");
    let collector = Arc::new(Collector::new());
    let traced = obs::with_sink(collector.clone(), || {
        run_campaign(&m, &opts, &runner).expect("traced campaign")
    });

    let a = serde_json::to_string(&plain).unwrap();
    let b = serde_json::to_string(&traced).unwrap();
    assert_eq!(a, b, "tracing must not change the scorecard artifact");

    // And the trace actually carried the campaign: one progress event
    // per scenario, under a plan announcement.
    assert_eq!(collector.events_named("campaign.plan").len(), 1);
    assert_eq!(collector.events_named("scenario").len(), 4);
}

/// Satellite: a scenario the pipeline cannot diagnose is absorbed into
/// the scorecard *and* surfaced as a structured `scenario.error` event.
#[test]
fn absorbed_scenario_failures_emit_structured_error_events() {
    let m = generate(&ModelConfig::test());
    let session = test_session(&m);
    // Break the first file's opening line: the mutant no longer parses,
    // so diagnosis fails at compile time.
    let broken = m.with_patched_line(&m.files[0].name, 0, "this is not fortran ((");
    let cs = CampaignScenario {
        scenario: Scenario::new("999-broken", Arc::new(broken), sim::RunConfig::default()),
        class: ScenarioClass::Clean,
        injected_module: None,
        detail: "deliberately unparseable".to_string(),
    };

    let collector = Arc::new(Collector::new());
    let result = obs::with_sink(collector.clone(), || run_scenario(&session, &cs));
    assert!(result.error.is_some(), "broken model must error");
    assert!(result.verdict.is_none());

    let errors = collector.events_named("scenario.error");
    assert_eq!(errors.len(), 1, "exactly one structured error event");
    let fields = &errors[0];
    assert!(fields
        .iter()
        .any(|(k, v)| *k == "name" && *v == obs::FieldValue::Text("999-broken".to_string())));
    assert!(
        fields
            .iter()
            .any(|(k, v)| *k == "error" && matches!(v, obs::FieldValue::Text(t) if !t.is_empty())),
        "error event must carry the failure message: {fields:?}"
    );
}

/// Runs one traced campaign into an in-memory JSONL buffer and returns
/// the trace with `ts`/`dur` stripped.
fn stripped_trace(model: &model::ModelSource, opts: &CampaignOptions, threads: usize) -> String {
    // The rayon compat layer reads this per fan-out; traced scenario
    // loops are sequential by design, but the ensemble fills underneath
    // still fan out, so this exercises thread-count independence.
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let (writer, buf) = JsonlWriter::to_buffer();
    let writer = Arc::new(writer);
    let card = obs::with_sink(writer.clone(), || {
        run_campaign(model, opts, &RunnerOptions::default()).expect("traced campaign")
    });
    writer.finish().expect("flush buffer");
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(card.results.len(), opts.scenarios);
    let jsonl = String::from_utf8(buf.lock().unwrap().clone()).expect("utf8 trace");
    obs::strip_timing(&jsonl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Timing aside, the JSONL trace of a fixed-seed campaign is
    /// byte-identical across repeated runs and across thread counts.
    #[test]
    fn jsonl_trace_is_deterministic_modulo_timing(
        seed in proptest::sample::select(vec![51966u64, 7u64, 0xBEEFu64]),
        threads in 2usize..=4,
    ) {
        let m = generate(&ModelConfig::test());
        let opts = CampaignOptions { scenarios: 3, seed, ..Default::default() };
        let base = stripped_trace(&m, &opts, 1);
        let rerun = stripped_trace(&m, &opts, 1);
        prop_assert_eq!(&base, &rerun, "same thread count, same trace");
        let wide = stripped_trace(&m, &opts, threads);
        prop_assert_eq!(&base, &wide, "thread count must not change the stripped trace");
        // Sanity: the stripped trace still carries the phase structure.
        prop_assert!(base.contains("\"name\":\"phase.ensemble_fill\""));
        prop_assert!(base.contains("\"name\":\"scenario\""));
    }
}
