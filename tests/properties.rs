//! Property-based tests (proptest) on cross-crate invariants.

use climate_rca::prelude::*;
use graph::{
    bfs_multi, communities, eigenvector_centrality, girvan_newman, preferential_attachment,
    quotient_graph, shortest_path_slice, weakly_connected_components, DiGraph, Direction, NodeId,
    PowerIterOptions,
};
use proptest::prelude::*;

/// Arbitrary digraph from an edge list over `n` nodes.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (
        2usize..40,
        proptest::collection::vec((0u32..40, 0u32..40), 0..120),
    )
        .prop_map(|(n, edges)| {
            let mut g = DiGraph::new();
            g.add_nodes(n);
            for (u, v) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                g.add_edge(NodeId(u), NodeId(v));
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The backward slice is closed under predecessors: every predecessor
    /// of a slice node is in the slice.
    #[test]
    fn slice_closed_under_predecessors(g in arb_graph(), t in 0u32..40) {
        let t = NodeId(t % g.node_count() as u32);
        let slice = shortest_path_slice(&g, &[t]);
        let inset: std::collections::HashSet<_> = slice.iter().copied().collect();
        for &n in &slice {
            for &p in g.predecessors(n) {
                prop_assert!(inset.contains(&NodeId(p)),
                    "predecessor {p} of sliced node {n} missing");
            }
        }
        prop_assert!(inset.contains(&t));
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distances_lipschitz(g in arb_graph(), s in 0u32..40) {
        let s = NodeId(s % g.node_count() as u32);
        let r = bfs_multi(&g, &[s], Direction::Out);
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (r.distance(u), r.distance(v)) {
                prop_assert!(dv <= du + 1, "edge {u}->{v}: {du} -> {dv}");
            }
        }
    }

    /// Girvan–Newman only splits: community count never decreases, and
    /// every community is connected in the undirected view.
    #[test]
    fn girvan_newman_refines_components(g in arb_graph()) {
        let before = weakly_connected_components(&g).count;
        let result = girvan_newman(&g, 1);
        prop_assert!(result.partition.count >= before);
        // Labels cover every node.
        prop_assert_eq!(result.partition.labels.len(), g.node_count());
    }

    /// Eigenvector centrality is non-negative and normalized.
    #[test]
    fn eigenvector_centrality_normalized(g in arb_graph()) {
        let c = eigenvector_centrality(&g, Direction::In, PowerIterOptions::default());
        prop_assert_eq!(c.len(), g.node_count());
        for &v in &c {
            prop_assert!(v >= -1e-12, "negative centrality {v}");
        }
        let norm: f64 = c.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-6, "norm {norm}");
    }

    /// Quotient graphs never gain nodes or intra-class edges.
    #[test]
    fn quotient_shrinks(g in arb_graph(), k in 1usize..6) {
        let n = g.node_count();
        let labels: Vec<u32> = (0..n).map(|i| (i % k) as u32).collect();
        let q = quotient_graph(&g, &labels, k);
        prop_assert_eq!(q.graph.node_count(), k);
        prop_assert!(q.graph.edge_count() <= g.edge_count());
        let members: usize = q.members.iter().map(Vec::len).sum();
        prop_assert_eq!(members, n);
    }

    /// Induced subgraphs preserve exactly the internal edges.
    #[test]
    fn induced_subgraph_edge_exactness(g in arb_graph(), keep_bits in proptest::collection::vec(any::<bool>(), 40)) {
        let keep: Vec<NodeId> = g
            .nodes()
            .filter(|n| keep_bits.get(n.index()).copied().unwrap_or(false))
            .collect();
        let (sub, mapping) = g.induced_subgraph(&keep);
        // Every subgraph edge maps to a parent edge.
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(mapping[u.index()], mapping[v.index()]));
        }
        // Every parent edge between kept nodes appears.
        let expected = g
            .edges()
            .filter(|(u, v)| keep.contains(u) && keep.contains(v))
            .count();
        prop_assert_eq!(sub.edge_count(), expected);
    }

    /// Communities partition a preferential-attachment graph without
    /// losing large-community nodes.
    #[test]
    fn communities_cover_filtered_nodes(seed in 0u64..1000) {
        let g = preferential_attachment(60, 2, seed);
        let comms = communities(&g, 1, 3);
        let total: usize = comms.iter().map(Vec::len).sum();
        prop_assert!(total <= g.node_count());
        for c in &comms {
            prop_assert!(c.len() >= 3);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lexer-parser round trip accepts every assignment the statement
    /// generator can produce.
    #[test]
    fn parser_accepts_generated_assignments(
        a in "[a-z][a-z0-9_]{0,8}",
        b in "[a-z][a-z0-9_]{0,8}",
        c in 0.001f64..1000.0,
        op in prop::sample::select(vec!["+", "-", "*", "/"]),
    ) {
        let src = format!(
            "module m\ncontains\nsubroutine s({a}, {b})\n  real :: {a}, {b}\n  {a} = {b} {op} {c:.6}\nend subroutine s\nend module m\n"
        );
        let (file, errs) = fortran::parse_source("p.F90", &src);
        prop_assert!(errs.is_empty(), "{errs:?}");
        prop_assert_eq!(file.modules.len(), 1);
    }

    /// Interpreter determinism: same model + same config => bitwise equal
    /// history, regardless of sampling instrumentation.
    #[test]
    fn interpreter_deterministic_under_instrumentation(seed in 0u32..50) {
        let model = model::generate(&model::ModelConfig::test());
        let mut cfg = sim::RunConfig { steps: 2, ..Default::default() };
        cfg.prng_seed = seed;
        let a = sim::run_model(&model, &cfg, 0.0).unwrap();
        cfg.sample_step = Some(1);
        cfg.samples = vec![sim::SampleSpec {
            module: "micro_mg".into(),
            subprogram: None,
            name: "tlat".into(),
        }];
        let b = sim::run_model(&model, &cfg, 0.0).unwrap();
        for (name, series) in a.history_iter() {
            prop_assert_eq!(
                series.as_slice(),
                b.series(name.as_ref()).unwrap(),
                "{} altered by instrumentation",
                name
            );
        }
    }

    /// `RunView` materialization round-trips: for arbitrary perturbation
    /// seeds, member counts, and step counts, every member of a columnar
    /// `EnsembleRuns` store materializes bit-identically to a standalone
    /// compiled run, and the view's indexed reads agree with the
    /// materialized series.
    #[test]
    fn run_view_materialization_round_trips(
        seed in 0u64..1000,
        members in 1usize..4,
        steps in 2u32..5,
    ) {
        use std::sync::OnceLock;
        static PROGRAM: OnceLock<std::sync::Arc<sim::Program>> = OnceLock::new();
        let program = PROGRAM.get_or_init(|| {
            let model = model::generate(&model::ModelConfig::test());
            sim::compile_model(&model).expect("compile")
        });
        let cfg = sim::RunConfig { steps, ..Default::default() };
        let perts = sim::perturbations(members, 1e-13, seed | 1);
        let store = sim::EnsembleRuns::run(program, &cfg, &perts).expect("store");
        prop_assert_eq!(store.members(), members);
        for (i, &p) in perts.iter().enumerate() {
            let direct = sim::run_program(program, &cfg, p).expect("run");
            let view = store.view(i);
            let materialized = view.materialize();
            prop_assert_eq!(&materialized.output_names, &direct.output_names);
            prop_assert_eq!(materialized.history.len(), direct.history.len());
            for (o, series) in direct.history.iter().enumerate() {
                let id = metagraph::OutputId(o as u32);
                prop_assert_eq!(view.written_len(id), series.len());
                let via_view: Vec<u64> =
                    view.series_iter(id).map(f64::to_bits).collect();
                let direct_bits: Vec<u64> = series.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(&via_view, &direct_bits);
                let mat_bits: Vec<u64> =
                    materialized.history[o].iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(&mat_bits, &direct_bits);
            }
            prop_assert_eq!(&materialized.coverage, &direct.coverage);
        }
    }

    /// The workspace-wide symbol table round-trips every name in every
    /// namespace: intern → resolve → intern is the identity, ids are
    /// dense, and re-interning never mints a fresh id.
    #[test]
    fn symbol_table_interning_round_trips(
        names in proptest::collection::vec("[a-z][a-z0-9_]{0,12}", 1..40),
    ) {
        let mut t = metagraph::SymbolTable::new();
        let vars: Vec<_> = names.iter().map(|n| t.intern_var(n)).collect();
        let mods: Vec<_> = names.iter().map(|n| t.intern_module(n)).collect();
        let outs: Vec<_> = names.iter().map(|n| t.intern_output(n)).collect();
        for (((n, &v), &m), &o) in names.iter().zip(&vars).zip(&mods).zip(&outs) {
            // resolve
            prop_assert_eq!(t.var(v), n.as_str());
            prop_assert_eq!(t.module(m), n.as_str());
            prop_assert_eq!(t.output(o), n.as_str());
            // intern → resolve → intern identity
            prop_assert_eq!(t.intern_var(n), v);
            prop_assert_eq!(t.intern_module(n), m);
            prop_assert_eq!(t.intern_output(n), o);
            // lookup agrees with intern
            prop_assert_eq!(t.var_id(n), Some(v));
            prop_assert_eq!(t.module_id(n), Some(m));
            prop_assert_eq!(t.output_id(n), Some(o));
        }
        // Ids are dense: the id space is exactly the distinct-name count.
        let distinct = names
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        prop_assert_eq!(t.var_count(), distinct);
        prop_assert_eq!(t.module_count(), distinct);
        prop_assert_eq!(t.output_count(), distinct);
        prop_assert!(vars.iter().all(|v| v.index() < distinct));
    }
}
