//! Ensemble Consistency Testing — the UF-CAM-ECT substitute.
//!
//! The paper's pipeline "begins when CESM-ECT issues a Fail" (§2.1) and uses
//! the ultra-fast variant evaluated "at time step nine" \[24\]. Methodology
//! (Baker et al. 2015; Milroy et al. 2018): PCA of the standardized ensemble
//! output means; an experimental run fails a PC when its score falls outside
//! the ensemble's score distribution; the run fails the test when enough PCs
//! fail; the overall verdict aggregates a small set of experimental runs by
//! majority.

use crate::matrix::Matrix;
use crate::pca::Pca;
use serde::{Deserialize, Serialize};

/// ECT configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EctConfig {
    /// Number of leading principal components scored.
    pub n_pcs: usize,
    /// A PC fails when the experimental score deviates from the ensemble
    /// score mean by more than `sigma_factor` ensemble score σ.
    pub sigma_factor: f64,
    /// Minimum number of failing PCs for a run-level Fail.
    pub fail_threshold: usize,
    /// Run-set verdict: Fail when at least this many of the evaluated runs
    /// fail (pyCECT uses 2 of 3).
    pub majority: usize,
}

impl Default for EctConfig {
    fn default() -> Self {
        EctConfig {
            n_pcs: 20,
            sigma_factor: 2.0,
            fail_threshold: 3,
            majority: 2,
        }
    }
}

/// Verdict for a single experimental run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunVerdict {
    /// Indices of the PCs whose scores fell outside the ensemble bounds.
    pub failed_pcs: Vec<usize>,
    /// Whether the run fails (`failed_pcs.len() >= fail_threshold`).
    pub fail: bool,
}

/// The test's user-facing outcome (§1: "a user-friendly Pass or Fail").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Statistically consistent with the ensemble.
    Pass,
    /// Statistically distinguishable from the ensemble.
    Fail,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Pass => write!(f, "Pass"),
            Verdict::Fail => write!(f, "Fail"),
        }
    }
}

// Stable machine-readable form (campaign scorecards, exported diagnoses).
impl serde::Serialize for Verdict {
    fn to_json(&self) -> serde::Json {
        serde::Json::Str(
            match self {
                Verdict::Pass => "pass",
                Verdict::Fail => "fail",
            }
            .to_string(),
        )
    }
}

/// A fitted ensemble consistency test.
#[derive(Debug, Clone)]
pub struct Ect {
    pca: Pca,
    /// Ensemble PC-score means (≈ 0 by construction).
    score_means: Vec<f64>,
    /// Ensemble PC-score standard deviations.
    score_stds: Vec<f64>,
    config: EctConfig,
}

impl Ect {
    /// Fits the test to an ensemble matrix (`runs × variables` of global
    /// means at the evaluation time step).
    ///
    /// `n_pcs` is clamped to `min(vars, runs − 1)` — beyond that the
    /// ensemble provides no variance estimate.
    pub fn fit(ensemble: &Matrix, mut config: EctConfig) -> Ect {
        assert!(ensemble.rows() >= 3, "ensemble too small for ECT");
        config.n_pcs = config
            .n_pcs
            .min(ensemble.cols())
            .min(ensemble.rows().saturating_sub(1));
        let pca = Pca::fit(ensemble);
        let scores = pca.project_all(ensemble, config.n_pcs);
        let score_means = scores.col_means();
        let score_stds = scores.col_stds();
        Ect {
            pca,
            score_means,
            score_stds,
            config,
        }
    }

    /// The configuration in effect (after clamping).
    pub fn config(&self) -> &EctConfig {
        &self.config
    }

    /// Evaluates a single experimental run.
    pub fn evaluate_run(&self, run: &[f64]) -> RunVerdict {
        let scores = self.pca.project(run, self.config.n_pcs);
        let mut failed = Vec::new();
        for (k, &s) in scores.iter().enumerate() {
            let sd = self.score_stds[k];
            // A PC with (numerically) no ensemble variance fails on any
            // detectable deviation.
            let bound = if sd > 1e-12 {
                self.config.sigma_factor * sd
            } else {
                1e-9
            };
            if (s - self.score_means[k]).abs() > bound {
                failed.push(k);
            }
        }
        let fail = failed.len() >= self.config.fail_threshold;
        RunVerdict {
            failed_pcs: failed,
            fail,
        }
    }

    /// Evaluates a set of experimental runs and aggregates by majority
    /// (pyCECT evaluates 3 runs and fails on 2).
    pub fn evaluate(&self, runs: &Matrix) -> Verdict {
        let failing = (0..runs.rows())
            .filter(|&i| self.evaluate_run(runs.row(i)).fail)
            .count();
        if failing >= self.config.majority.min(runs.rows()) {
            Verdict::Fail
        } else {
            Verdict::Pass
        }
    }

    /// Failure rate over many independent run-sets of size `set_size`
    /// (paper Table 1 reports UF-CAM-ECT failure percentages).
    pub fn failure_rate(&self, runs: &Matrix, set_size: usize) -> f64 {
        let sets = runs.rows() / set_size;
        if sets == 0 {
            return 0.0;
        }
        let mut fails = 0usize;
        for s in 0..sets {
            let rows: Vec<Vec<f64>> = (0..set_size)
                .map(|i| runs.row(s * set_size + i).to_vec())
                .collect();
            if self.evaluate(&Matrix::from_row_slices(&rows)) == Verdict::Fail {
                fails += 1;
            }
        }
        fails as f64 / sets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic ensemble: `vars`-dimensional Gaussian-ish data via CLT of
    /// uniforms, deterministic.
    fn gaussian_matrix(rows: usize, vars: usize, seed: u64, shift: f64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            let mut s = 0.0;
            for _ in 0..12 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                s += (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            }
            s - 6.0 // ~N(0,1)
        };
        let mut out = Vec::new();
        for _ in 0..rows {
            out.push((0..vars).map(|_| next() + shift).collect());
        }
        Matrix::from_row_slices(&out)
    }

    #[test]
    fn consistent_runs_pass() {
        let ens = gaussian_matrix(120, 10, 11, 0.0);
        let ect = Ect::fit(&ens, EctConfig::default());
        let runs = gaussian_matrix(3, 10, 999, 0.0);
        assert_eq!(ect.evaluate(&runs), Verdict::Pass);
    }

    #[test]
    fn shifted_runs_fail() {
        let ens = gaussian_matrix(120, 10, 11, 0.0);
        let ect = Ect::fit(&ens, EctConfig::default());
        // Shift every variable by 5σ — unmistakably inconsistent.
        let runs = gaussian_matrix(3, 10, 999, 5.0);
        assert_eq!(ect.evaluate(&runs), Verdict::Fail);
    }

    #[test]
    fn single_run_verdict_details() {
        let ens = gaussian_matrix(120, 10, 11, 0.0);
        let ect = Ect::fit(&ens, EctConfig::default());
        let v = ect.evaluate_run(&[8.0; 10]);
        assert!(v.fail);
        assert!(v.failed_pcs.len() >= 3);
    }

    #[test]
    fn failure_rate_extremes() {
        let ens = gaussian_matrix(120, 8, 17, 0.0);
        let ect = Ect::fit(&ens, EctConfig::default());
        let good = gaussian_matrix(30, 8, 555, 0.0);
        let bad = gaussian_matrix(30, 8, 777, 6.0);
        assert!(
            ect.failure_rate(&good, 3) < 0.35,
            "false-positive rate too high"
        );
        assert!(ect.failure_rate(&bad, 3) > 0.9, "true failure missed");
    }

    #[test]
    fn n_pcs_clamped() {
        let ens = gaussian_matrix(10, 50, 3, 0.0);
        let ect = Ect::fit(
            &ens,
            EctConfig {
                n_pcs: 100,
                ..Default::default()
            },
        );
        assert_eq!(ect.config().n_pcs, 9, "min(vars=50, runs-1=9)");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_ensemble_rejected() {
        let ens = gaussian_matrix(2, 5, 3, 0.0);
        Ect::fit(&ens, EctConfig::default());
    }

    #[test]
    fn majority_rule() {
        let ens = gaussian_matrix(120, 10, 11, 0.0);
        let ect = Ect::fit(&ens, EctConfig::default());
        // 1 wild run among 3 sane ones: 1 < majority(2) => Pass.
        let mut rows: Vec<Vec<f64>> = (0..2)
            .map(|i| gaussian_matrix(1, 10, 1000 + i, 0.0).row(0).to_vec())
            .collect();
        rows.push(vec![9.0; 10]);
        assert_eq!(ect.evaluate(&Matrix::from_row_slices(&rows)), Verdict::Pass);
    }
}
