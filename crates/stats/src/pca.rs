//! Principal component analysis on standardized run×variable matrices.
//!
//! The CESM-ECT (paper refs [2, 24]) quantifies internal model variability
//! by PCA of an ensemble's standardized output means; experimental runs are
//! then scored in PC space. This module provides exactly that fit/project
//! pair, built on the Jacobi eigensolver.

use crate::eigen::jacobi_eigen;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Scale threshold below which a variable is treated as constant.
pub const SCALE_EPS: f64 = 1e-300;

/// A fitted PCA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Per-variable means used for standardization.
    pub means: Vec<f64>,
    /// Per-variable standard deviations used for standardization.
    pub stds: Vec<f64>,
    /// Loadings: `vars × components`, column `k` is the k-th PC direction.
    pub loadings: Matrix,
    /// Eigenvalues (variance explained per component), descending.
    pub eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits a PCA on `data` (`runs × vars`), standardizing every variable by
    /// its column mean/σ first (correlation PCA, as the ECT uses).
    pub fn fit(data: &Matrix) -> Pca {
        let means = data.col_means();
        let stds = data.col_stds();
        let mut z = data.clone();
        z.standardize_with(&means, &stds, SCALE_EPS);
        let cov = z.covariance();
        let eig = jacobi_eigen(&cov, 100, 1e-12);
        Pca {
            means,
            stds,
            loadings: eig.vectors,
            eigenvalues: eig.values,
        }
    }

    /// Number of variables this model was fitted on.
    pub fn n_vars(&self) -> usize {
        self.means.len()
    }

    /// Projects one run (raw, unstandardized) onto the first `k` PCs.
    pub fn project(&self, run: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(run.len(), self.n_vars(), "variable count mismatch");
        let z: Vec<f64> = run
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&x, (&m, &s))| {
                let c = x - m;
                if s > SCALE_EPS {
                    c / s
                } else {
                    c
                }
            })
            .collect();
        (0..k.min(self.n_vars()))
            .map(|c| {
                (0..self.n_vars())
                    .map(|v| self.loadings[(v, c)] * z[v])
                    .sum()
            })
            .collect()
    }

    /// Projects every row of `data` onto the first `k` PCs.
    pub fn project_all(&self, data: &Matrix, k: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..data.rows())
            .map(|i| self.project(data.row(i), k))
            .collect();
        Matrix::from_row_slices(&rows)
    }

    /// Fraction of total variance explained by the first `k` components.
    pub fn explained_variance_ratio(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|v| v.max(0.0)).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.eigenvalues
            .iter()
            .take(k)
            .map(|v| v.max(0.0))
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic data with one dominant direction: x2 = 2*x1 + noise.
    fn correlated_data(n: usize) -> Matrix {
        let mut rows = Vec::new();
        let mut state = 424242u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..n {
            let x = next();
            rows.push(vec![x, 2.0 * x + 0.01 * next(), next() * 0.1]);
        }
        Matrix::from_row_slices(&rows)
    }

    #[test]
    fn first_pc_captures_correlation() {
        let pca = Pca::fit(&correlated_data(200));
        // Standardized x1 and x2 are nearly identical: PC1 weights them
        // almost equally, PC3 (noise dir) explains almost nothing.
        let w1 = pca.loadings[(0, 0)];
        let w2 = pca.loadings[(1, 0)];
        assert!((w1.abs() - w2.abs()).abs() < 0.05, "w1={w1} w2={w2}");
        assert!(pca.explained_variance_ratio(1) > 0.6);
        assert!(pca.explained_variance_ratio(3) > 0.999);
    }

    #[test]
    fn projection_of_mean_is_zero() {
        let data = correlated_data(100);
        let pca = Pca::fit(&data);
        let scores = pca.project(&pca.means.clone(), 3);
        for s in scores {
            assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn ensemble_scores_have_eigenvalue_variance() {
        let data = correlated_data(300);
        let pca = Pca::fit(&data);
        let scores = pca.project_all(&data, 3);
        let vars = scores.col_stds();
        for (k, &std) in vars.iter().enumerate().take(3) {
            let expect = pca.eigenvalues[k].max(0.0).sqrt();
            assert!(
                (std - expect).abs() < 0.05 * expect.max(0.05),
                "pc{k}: std {std} vs sqrt(eig) {expect}"
            );
        }
    }

    #[test]
    fn constant_variable_does_not_poison() {
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(vec![i as f64, 7.0]);
        }
        let pca = Pca::fit(&Matrix::from_row_slices(&rows));
        assert!(pca.eigenvalues.iter().all(|v| v.is_finite()));
        let s = pca.project(&[25.0, 7.0], 2);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_width_projection_panics() {
        let pca = Pca::fit(&correlated_data(20));
        pca.project(&[1.0], 1);
    }
}
