//! L1-penalized (lasso) logistic regression for variable selection.
//!
//! Paper §3: "Our second method employs logistic regression with
//! regularization via a penalized L1-norm (known as the lasso). We generate
//! a set of experimental runs and use this in conjunction with our ensemble
//! set to identify the variables that best classify the members of each
//! set. We tune the regularization parameter to select about five
//! variables."
//!
//! Solver: proximal gradient (ISTA) with soft-thresholding, fixed step from
//! the Lipschitz bound `L = ‖X‖₂²/(4n)`, intercept unpenalized. A geometric
//! λ path from `λ_max` (all-zero solution) downward is searched for the
//! target sparsity.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted sparse logistic model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LassoModel {
    /// Coefficients per (standardized) variable; exact zeros mean
    /// "not selected".
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// The regularization strength used.
    pub lambda: f64,
    /// Standardization means (from the training matrix).
    pub means: Vec<f64>,
    /// Standardization scales.
    pub stds: Vec<f64>,
}

impl LassoModel {
    /// Indices of selected (nonzero-weight) variables, ordered by
    /// descending |weight|.
    pub fn selected(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = self
            .weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0.0)
            .map(|(i, _)| i)
            .collect();
        idx.sort_by(|&a, &b| {
            self.weights[b]
                .abs()
                .partial_cmp(&self.weights[a].abs())
                .unwrap()
                .then_with(|| a.cmp(&b))
        });
        idx
    }

    /// Predicted probability that `run` belongs to the experimental class.
    pub fn predict_proba(&self, run: &[f64]) -> f64 {
        assert_eq!(run.len(), self.weights.len());
        let mut z = self.intercept;
        for (i, &x) in run.iter().enumerate() {
            let s = if self.stds[i] > 1e-300 {
                self.stds[i]
            } else {
                1.0
            };
            z += self.weights[i] * (x - self.means[i]) / s;
        }
        1.0 / (1.0 + (-z).exp())
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Fits L1-penalized logistic regression at a fixed `lambda`.
///
/// `x` is `samples × vars` (standardized internally), `y` holds class
/// labels 0.0 (ensemble) / 1.0 (experiment).
pub fn fit_lasso_logistic(x: &Matrix, y: &[f64], lambda: f64, max_iter: usize) -> LassoModel {
    assert_eq!(x.rows(), y.len(), "label count mismatch");
    let n = x.rows();
    let p = x.cols();
    let means = x.col_means();
    let stds = x.col_stds();
    let mut z = x.clone();
    z.standardize_with(&means, &stds, 1e-300);

    // Lipschitz constant of the logistic gradient: σ_max(Z)² / (4n),
    // bounded via the Frobenius norm (cheap, safe overestimate).
    let fro2: f64 = (0..n)
        .map(|i| z.row(i).iter().map(|v| v * v).sum::<f64>())
        .sum();
    let step = if fro2 > 0.0 {
        4.0 * n as f64 / fro2
    } else {
        1.0
    };

    let mut w = vec![0.0; p];
    let mut b = 0.0;
    let mut margins = vec![0.0; n];
    for _ in 0..max_iter {
        // margins = Z w + b
        for (i, m) in margins.iter_mut().enumerate() {
            *m = b + z.row(i).iter().zip(&w).map(|(a, c)| a * c).sum::<f64>();
        }
        // grad = Z^T (σ(m) − y) / n
        let resid: Vec<f64> = margins
            .iter()
            .zip(y)
            .map(|(&m, &yy)| sigmoid(m) - yy)
            .collect();
        let gb: f64 = resid.iter().sum::<f64>() / n as f64;
        let mut gw = vec![0.0; p];
        for (i, &r) in resid.iter().enumerate() {
            for (g, &zz) in gw.iter_mut().zip(z.row(i)) {
                *g += r * zz;
            }
        }
        let mut delta: f64 = 0.0;
        for (wi, gi) in w.iter_mut().zip(&gw) {
            let new = soft_threshold(*wi - step * gi / n as f64, step * lambda);
            delta = delta.max((new - *wi).abs());
            *wi = new;
        }
        let new_b = b - step * gb;
        delta = delta.max((new_b - b).abs());
        b = new_b;
        if delta < 1e-8 {
            break;
        }
    }
    LassoModel {
        weights: w,
        intercept: b,
        lambda,
        means,
        stds,
    }
}

/// The smallest λ at which the all-zero solution is optimal:
/// `λ_max = ‖Z^T (y − ȳ)‖_∞ / n`.
pub fn lambda_max(x: &Matrix, y: &[f64]) -> f64 {
    let n = x.rows();
    let means = x.col_means();
    let stds = x.col_stds();
    let mut z = x.clone();
    z.standardize_with(&means, &stds, 1e-300);
    let ybar = y.iter().sum::<f64>() / n as f64;
    let mut best: f64 = 0.0;
    for j in 0..x.cols() {
        let g: f64 = (0..n).map(|i| z[(i, j)] * (y[i] - ybar)).sum();
        best = best.max(g.abs() / n as f64);
    }
    best
}

/// Tunes λ along a geometric path to select approximately
/// `target_selected` variables (paper: "about five"), returning the fitted
/// model whose support size is closest to the target (ties favor the
/// sparser model, mirroring the paper's preference for small subsets).
pub fn fit_lasso_path(
    x: &Matrix,
    y: &[f64],
    target_selected: usize,
    path_len: usize,
    max_iter: usize,
) -> LassoModel {
    let lmax = lambda_max(x, y).max(1e-12);
    let lmin = lmax * 1e-3;
    let ratio = (lmin / lmax).powf(1.0 / (path_len.max(2) as f64 - 1.0));
    let mut best: Option<LassoModel> = None;
    let mut best_gap = usize::MAX;
    let mut lambda = lmax;
    for _ in 0..path_len {
        let model = fit_lasso_logistic(x, y, lambda, max_iter);
        let k = model.selected().len();
        let gap = k.abs_diff(target_selected);
        if gap < best_gap
            || (gap == best_gap && k < best.as_ref().map_or(usize::MAX, |m| m.selected().len()))
        {
            best_gap = gap;
            best = Some(model);
        }
        if k >= target_selected && best_gap == 0 {
            break;
        }
        lambda *= ratio;
    }
    best.expect("path_len must be >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes separated on columns listed in `informative`; all other
    /// columns are pure noise.
    fn classification_data(
        n_per_class: usize,
        vars: usize,
        informative: &[usize],
        shift: f64,
        seed: u64,
    ) -> (Matrix, Vec<f64>) {
        let mut state = seed | 1;
        let mut next = move || {
            let mut s = 0.0;
            for _ in 0..12 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                s += (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            }
            s - 6.0
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..2 {
            for _ in 0..n_per_class {
                let mut row: Vec<f64> = (0..vars).map(|_| next()).collect();
                if class == 1 {
                    for &j in informative {
                        row[j] += shift;
                    }
                }
                rows.push(row);
                y.push(class as f64);
            }
        }
        (Matrix::from_row_slices(&rows), y)
    }

    #[test]
    fn lambda_max_kills_all_weights() {
        let (x, y) = classification_data(40, 8, &[2], 3.0, 42);
        let lmax = lambda_max(&x, &y);
        let model = fit_lasso_logistic(&x, &y, lmax * 1.01, 500);
        assert!(model.selected().is_empty(), "{:?}", model.weights);
    }

    #[test]
    fn informative_variables_selected() {
        let (x, y) = classification_data(60, 10, &[3, 7], 4.0, 7);
        let model = fit_lasso_path(&x, &y, 2, 30, 800);
        let sel = model.selected();
        assert_eq!(sel.len(), 2, "selected {sel:?}");
        assert!(sel.contains(&3) && sel.contains(&7), "selected {sel:?}");
    }

    #[test]
    fn target_five_like_paper() {
        let (x, y) = classification_data(80, 20, &[0, 4, 8, 12, 16], 3.0, 19);
        let model = fit_lasso_path(&x, &y, 5, 40, 800);
        let sel = model.selected();
        assert!(
            (3..=7).contains(&sel.len()),
            "≈5 variables expected, got {}",
            sel.len()
        );
        // The truly informative ones dominate the selection.
        let informative = [0usize, 4, 8, 12, 16];
        let hit = sel.iter().filter(|s| informative.contains(s)).count();
        assert!(hit >= 3, "selection {sel:?}");
    }

    #[test]
    fn prediction_separates_classes() {
        let (x, y) = classification_data(50, 6, &[1], 5.0, 3);
        let model = fit_lasso_path(&x, &y, 1, 30, 800);
        // Mean predicted probability of class-1 rows > class-0 rows.
        let n = x.rows();
        let mut p0 = 0.0;
        let mut p1 = 0.0;
        for (i, &label) in y.iter().enumerate().take(n) {
            let p = model.predict_proba(x.row(i));
            if label == 0.0 {
                p0 += p;
            } else {
                p1 += p;
            }
        }
        // Strong L1 shrinkage pulls probabilities toward 0.5; test
        // separation, not calibration.
        let (m0, m1) = (p0 / 50.0, p1 / 50.0);
        assert!(m1 > m0 + 0.15, "classes not separated: {m0} vs {m1}");
        // An unregularized-ish refit separates sharply.
        let sharp = fit_lasso_logistic(&x, &y, 1e-4, 2000);
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        for (i, &label) in y.iter().enumerate().take(n) {
            let p = sharp.predict_proba(x.row(i));
            if label == 0.0 {
                s0 += p;
            } else {
                s1 += p;
            }
        }
        assert!(s1 / 50.0 > 0.9, "class-1 mean prob {}", s1 / 50.0);
        assert!(s0 / 50.0 < 0.1, "class-0 mean prob {}", s0 / 50.0);
    }

    #[test]
    fn weights_ordered_by_magnitude() {
        let (x, y) = classification_data(60, 8, &[2, 5], 3.0, 23);
        let model = fit_lasso_path(&x, &y, 2, 30, 500);
        let sel = model.selected();
        for w in sel.windows(2) {
            assert!(model.weights[w[0]].abs() >= model.weights[w[1]].abs());
        }
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn label_mismatch_panics() {
        let (x, _) = classification_data(10, 3, &[0], 1.0, 1);
        fit_lasso_logistic(&x, &[0.0; 3], 0.1, 10);
    }
}
