//! # rca-stats — statistics substrate for climate-rca
//!
//! The paper's front end is statistical: a PCA-based **ensemble consistency
//! test** (UF-CAM-ECT, refs [2, 24]) decides whether an experimental run is
//! statistically distinguishable, and two **variable selection** methods
//! (standardized median distance with IQR filtering, and lasso logistic
//! regression tuned to ≈5 variables, §3) identify the output variables most
//! affected. The paper's KGen comparison step flags kernel variables whose
//! **normalized RMS** differs beyond 10⁻¹² (§6.4).
//!
//! Everything here is implemented from scratch on a small dense-matrix
//! layer:
//!
//! - [`matrix`]: row-major dense matrices, covariance, standardization.
//! - [`descriptive`][]: means/medians/quantiles/IQRs.
//! - [`eigen`]: cyclic Jacobi symmetric eigendecomposition.
//! - [`pca`]: correlation PCA (fit/project).
//! - [`ect`]: the ensemble consistency test with Pass/Fail verdicts and
//!   failure-rate estimation (paper Table 1 reports ECT failure rates).
//! - [`selection`]: median-distance/IQR variable ranking (§3, method 1).
//! - [`lasso`]: L1-penalized logistic regression with λ-path tuning
//!   (§3, method 2).
//! - [`mod@rms`]: normalized-RMS comparison (KGen's verification metric).
//! - [`kernels`]: chunked, branchless column kernels for outputs-wide
//!   plane ops (keep-refine, gather, publish) shared with the run store.

pub mod descriptive;
pub mod ect;
pub mod eigen;
pub mod kernels;
pub mod lasso;
pub mod matrix;
pub mod pca;
pub mod rms;
pub mod selection;

pub use descriptive::{iqr_bounds, iqr_overlap, mean, median, quantile, standardize, std_dev};
pub use ect::{Ect, EctConfig, RunVerdict, Verdict};
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use lasso::{fit_lasso_logistic, fit_lasso_path, lambda_max, LassoModel};
pub use matrix::Matrix;
pub use pca::Pca;
pub use rms::{
    compare, flag_variables, normalized_rms_diff, rms, RmsComparison, KGEN_RMS_THRESHOLD,
};
pub use selection::{direct_difference, median_distance_selection, SelectedVariable};
