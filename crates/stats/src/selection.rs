//! Variable selection: which output variables are most affected?
//!
//! Paper §3: after a UF-CAM-ECT failure, the pipeline identifies the CAM
//! output variables most affected by the discrepancy. Two methods:
//!
//! 1. **Median distance**: standardize each variable by its ensemble
//!    mean/σ, keep variables whose ensemble and experimental IQRs do not
//!    overlap, rank by descending distance between medians.
//! 2. **Lasso** (in [`crate::lasso`]): logistic regression with an L1
//!    penalty tuned to select ≈5 variables that best classify ensemble vs.
//!    experimental members.
//!
//! "The variables selected by the lasso (and their order) mostly coincide
//! with the order produced by computing the distance between standardized
//! medians."

use crate::descriptive::{iqr_bounds, median, standardize};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// One selected variable with its evidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectedVariable {
    /// Column index into the data matrices.
    pub index: usize,
    /// Distance between standardized ensemble and experimental medians.
    pub median_distance: f64,
    /// Whether the standardized IQRs were disjoint.
    pub iqr_disjoint: bool,
}

/// Ranks variables by the median-distance method.
///
/// `ensemble` and `experiment` are `runs × vars` matrices over the same
/// variable columns. Variables are standardized by **ensemble** statistics;
/// only variables with disjoint IQRs are returned unless
/// `require_disjoint_iqr` is false (then all variables are returned ranked,
/// useful for diagnostics). Result is sorted by descending median distance.
pub fn median_distance_selection(
    ensemble: &Matrix,
    experiment: &Matrix,
    require_disjoint_iqr: bool,
) -> Vec<SelectedVariable> {
    assert_eq!(
        ensemble.cols(),
        experiment.cols(),
        "variable sets must match"
    );
    let means = ensemble.col_means();
    let stds = ensemble.col_stds();
    let mut out = Vec::new();
    for j in 0..ensemble.cols() {
        let ecol = standardize(&ensemble.col(j), means[j], stds[j], 1e-300);
        let xcol = standardize(&experiment.col(j), means[j], stds[j], 1e-300);
        let dist = (median(&ecol) - median(&xcol)).abs();
        let (e1, e3) = iqr_bounds(&ecol);
        let (x1, x3) = iqr_bounds(&xcol);
        let disjoint = !(e1 <= x3 && x1 <= e3);
        if disjoint || !require_disjoint_iqr {
            out.push(SelectedVariable {
                index: j,
                median_distance: dist,
                iqr_disjoint: disjoint,
            });
        }
    }
    out.sort_by(|a, b| {
        b.median_distance
            .partial_cmp(&a.median_distance)
            .expect("NaN median distance")
            .then_with(|| a.index.cmp(&b.index))
    });
    out
}

/// First-step direct comparison (§3): normalized difference of two single
/// runs per variable; returns indices whose relative difference exceeds
/// `tol`. The paper recommends this first, noting it usually selects
/// everything ("most often ... all CAM output variables are different"),
/// in which case the distribution-based methods take over.
pub fn direct_difference(a: &[f64], b: &[f64], tol: f64) -> Vec<usize> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .enumerate()
        .filter(|(_, (&x, &y))| {
            let scale = x.abs().max(y.abs()).max(1e-300);
            ((x - y).abs() / scale) > tol
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ensemble ~ N(0,1) per var; experiment shifts selected columns.
    fn data(shifts: &[f64], n_ens: usize, n_exp: usize, seed: u64) -> (Matrix, Matrix) {
        let vars = shifts.len();
        let mut state = seed | 1;
        let mut next = move || {
            let mut s = 0.0;
            for _ in 0..12 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                s += (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            }
            s - 6.0
        };
        let ens: Vec<Vec<f64>> = (0..n_ens)
            .map(|_| (0..vars).map(|_| next()).collect())
            .collect();
        let exp: Vec<Vec<f64>> = (0..n_exp)
            .map(|_| shifts.iter().map(|&sh| next() + sh).collect())
            .collect();
        (Matrix::from_row_slices(&ens), Matrix::from_row_slices(&exp))
    }

    #[test]
    fn shifted_variable_ranked_first() {
        let (ens, exp) = data(&[0.0, 8.0, 0.0, 3.0], 80, 40, 77);
        let sel = median_distance_selection(&ens, &exp, true);
        assert!(!sel.is_empty());
        assert_eq!(sel[0].index, 1, "largest shift first: {sel:?}");
        assert!(sel.iter().all(|s| s.iqr_disjoint));
        // Unshifted variables must not appear with disjoint-IQR filtering.
        assert!(sel.iter().all(|s| s.index == 1 || s.index == 3));
    }

    #[test]
    fn wsub_style_dominance() {
        // WSUBBUG (§6.1): the affected variable's median distance is >1000×
        // the runner-up. Verify the ratio is computed faithfully.
        let (ens, exp) = data(&[0.0, 5000.0, 0.004, 0.0], 80, 40, 99);
        let sel = median_distance_selection(&ens, &exp, false);
        assert_eq!(sel[0].index, 1);
        assert!(
            sel[0].median_distance / sel[1].median_distance.max(1e-12) > 1000.0,
            "dominance ratio: {} / {}",
            sel[0].median_distance,
            sel[1].median_distance
        );
    }

    #[test]
    fn no_shift_selects_nothing() {
        let (ens, exp) = data(&[0.0, 0.0, 0.0], 80, 40, 13);
        let sel = median_distance_selection(&ens, &exp, true);
        assert!(
            sel.len() <= 1,
            "overlapping IQRs should filter nearly everything: {sel:?}"
        );
    }

    #[test]
    fn unfiltered_returns_all_ranked() {
        let (ens, exp) = data(&[0.0, 2.0], 50, 25, 5);
        let sel = median_distance_selection(&ens, &exp, false);
        assert_eq!(sel.len(), 2);
        assert!(sel[0].median_distance >= sel[1].median_distance);
    }

    #[test]
    fn direct_difference_thresholds() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.2, 3.0000001];
        let d = direct_difference(&a, &b, 1e-3);
        assert_eq!(d, vec![1]);
        let d0 = direct_difference(&a, &a, 0.0);
        assert!(d0.is_empty());
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_vars_panics() {
        let (ens, _) = data(&[0.0], 10, 5, 1);
        let (_, exp) = data(&[0.0, 0.0], 10, 5, 2);
        median_distance_selection(&ens, &exp, true);
    }
}
