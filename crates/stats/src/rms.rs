//! Normalized root-mean-square comparison (the KGen verification metric).
//!
//! Paper §6.4: "KGen flags 42 variables as exhibiting normalized RMS value
//! differences exceeding 10⁻¹²" between AVX2-enabled and AVX2-disabled
//! kernel executions. This module implements that comparator for the kernel
//! extractor in `rca-sim`.

use serde::{Deserialize, Serialize};

/// Default flagging threshold used by the paper's KGen runs.
pub const KGEN_RMS_THRESHOLD: f64 = 1e-12;

/// Result of comparing one variable across two runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsComparison {
    /// Normalized RMS of the difference.
    pub normalized_rms: f64,
    /// Whether the difference exceeds the threshold used.
    pub flagged: bool,
}

/// Root mean square of a slice (0 for empty input).
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Normalized RMS difference: `RMS(a − b) / RMS(a)`, with a zero-baseline
/// fallback to the un-normalized RMS (so a zero baseline with nonzero
/// comparison still flags).
///
/// # Panics
/// Panics if lengths differ.
pub fn normalized_rms_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let base = rms(a);
    let d = rms(&diff);
    if base > 0.0 {
        d / base
    } else {
        d
    }
}

/// Compares one variable across two runs against `threshold`.
pub fn compare(a: &[f64], b: &[f64], threshold: f64) -> RmsComparison {
    let nrms = normalized_rms_diff(a, b);
    RmsComparison {
        normalized_rms: nrms,
        flagged: nrms > threshold,
    }
}

/// Compares many named variables and returns the flagged names with their
/// normalized RMS, sorted descending (the "42 variables" list).
pub fn flag_variables<'a>(
    pairs: impl IntoIterator<Item = (&'a str, &'a [f64], &'a [f64])>,
    threshold: f64,
) -> Vec<(String, f64)> {
    let mut flagged: Vec<(String, f64)> = pairs
        .into_iter()
        .map(|(name, a, b)| (name.to_string(), normalized_rms_diff(a, b)))
        .filter(|&(_, v)| v > threshold)
        .collect();
    flagged.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    flagged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_known() {
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(rms(&[3.0, 4.0]), (12.5f64).sqrt());
    }

    #[test]
    fn identical_arrays_zero() {
        let a = [1.0, -2.0, 3.0];
        assert_eq!(normalized_rms_diff(&a, &a), 0.0);
        assert!(!compare(&a, &a, KGEN_RMS_THRESHOLD).flagged);
    }

    #[test]
    fn ulp_size_difference_detected() {
        // One-ULP perturbations (FMA-scale effects) sit around 1e-16
        // relative — below the 1e-12 threshold individually, but a
        // systematic 1e-10 relative bias is flagged.
        let a = [1.0f64; 100];
        let tiny: Vec<f64> = a.iter().map(|x| x + 1e-16).collect();
        let biased: Vec<f64> = a.iter().map(|x| x + 1e-10).collect();
        assert!(!compare(&a, &tiny, KGEN_RMS_THRESHOLD).flagged);
        assert!(compare(&a, &biased, KGEN_RMS_THRESHOLD).flagged);
    }

    #[test]
    fn zero_baseline_fallback() {
        let z = [0.0, 0.0];
        let b = [1e-6, 0.0];
        let n = normalized_rms_diff(&z, &b);
        assert!(n > 0.0 && n.is_finite());
    }

    #[test]
    fn flag_variables_sorted() {
        let a1 = [1.0, 1.0];
        let b1 = [1.0 + 1e-6, 1.0];
        let a2 = [2.0, 2.0];
        let b2 = [2.0 + 1e-3, 2.0];
        let a3 = [3.0, 3.0];
        let flagged = flag_variables(
            vec![
                ("small", &a1[..], &b1[..]),
                ("big", &a2[..], &b2[..]),
                ("same", &a3[..], &a3[..]),
            ],
            KGEN_RMS_THRESHOLD,
        );
        assert_eq!(flagged.len(), 2);
        assert_eq!(flagged[0].0, "big");
        assert_eq!(flagged[1].0, "small");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        normalized_rms_diff(&[1.0], &[1.0, 2.0]);
    }
}
