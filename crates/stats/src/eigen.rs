//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The ECT's principal components are eigenvectors of the ensemble
//! correlation matrix (dimension = number of output variables, ~10²), well
//! inside Jacobi's comfort zone. Jacobi is chosen for its unconditional
//! stability and simplicity: each sweep annihilates off-diagonal entries
//! with Givens rotations until the matrix is numerically diagonal.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, matching `values` order; each column
    /// has unit Euclidean norm.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of symmetric `a` with cyclic Jacobi sweeps.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is assumed (only the upper
/// triangle drives the rotations); feeding a non-symmetric matrix yields
/// the decomposition of its symmetric part.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize, tol: f64) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs()
                    <= f64::EPSILON * (m[(p, p)].abs() + m[(q, q)].abs()).max(f64::MIN_POSITIVE)
                {
                    continue;
                }
                // Rotation angle (Golub & Van Loan 8.4).
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p, q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        // Sign convention: largest-magnitude entry positive, so tests and
        // serialized PCs are deterministic.
        let col: Vec<f64> = (0..n).map(|r| v[(r, old_col)]).collect();
        let lead = col
            .iter()
            .copied()
            .max_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap())
            .unwrap_or(1.0);
        let sign = if lead < 0.0 { -1.0 } else { 1.0 };
        for r in 0..n {
            vectors[(r, new_col)] = sign * col[r];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, d: &EigenDecomposition) -> f64 {
        // max |A v - λ v|
        let n = a.rows();
        let mut worst: f64 = 0.0;
        for k in 0..n {
            let v: Vec<f64> = (0..n).map(|r| d.vectors[(r, k)]).collect();
            let av = a.matvec(&v);
            for i in 0..n {
                worst = worst.max((av[i] - d.values[k] * v[i]).abs());
            }
        }
        worst
    }

    #[test]
    fn diagonal_matrix() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let d = jacobi_eigen(&a, 50, 1e-12);
        assert_eq!(d.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(2, 2, vec![2., 1., 1., 2.]);
        let d = jacobi_eigen(&a, 50, 1e-14);
        assert!((d.values[0] - 3.0).abs() < 1e-12);
        assert!((d.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2.
        let inv_sqrt2 = 1.0 / 2f64.sqrt();
        assert!((d.vectors[(0, 0)].abs() - inv_sqrt2).abs() < 1e-10);
        assert!(residual(&a, &d) < 1e-10);
    }

    #[test]
    fn random_symmetric_residual_small() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut state = 9876543210u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let d = jacobi_eigen(&a, 100, 1e-13);
        assert!(residual(&a, &d) < 1e-9, "residual {}", residual(&a, &d));
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = d.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_rows(3, 3, vec![4., 1., 0., 1., 3., 1., 0., 1., 2.]);
        let d = jacobi_eigen(&a, 100, 1e-14);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|r| d.vectors[(r, i)] * d.vectors[(r, j)]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "({i},{j}) dot={dot}");
            }
        }
    }

    #[test]
    fn values_sorted_descending() {
        let a = Matrix::from_rows(3, 3, vec![1., 2., 0., 2., 1., 0., 0., 0., 5.]);
        let d = jacobi_eigen(&a, 100, 1e-14);
        for w in d.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!((d.values[0] - 5.0).abs() < 1e-10);
        assert!((d.values[2] + 1.0).abs() < 1e-10); // eigenvalue -1
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        jacobi_eigen(&Matrix::zeros(2, 3), 10, 1e-10);
    }
}
