//! Descriptive statistics: means, medians, quantiles, IQRs.
//!
//! The paper's first variable-selection method (§3) "measures distances
//! between the distribution medians of the ensemble and experimental runs"
//! after standardizing "by its ensemble mean and standard deviation", then
//! keeps variables "whose interquartile ranges (IQRs) of ensemble and
//! experimental distributions do not overlap".

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (ddof = 1); 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linear-interpolation quantile (type 7, NumPy default). `q` in `[0, 1]`.
///
/// # Panics
/// Panics on empty input or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be within [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Interquartile range as `(q1, q3)`.
pub fn iqr_bounds(xs: &[f64]) -> (f64, f64) {
    (quantile(xs, 0.25), quantile(xs, 0.75))
}

/// Whether two IQRs overlap. Touching endpoints count as overlapping.
pub fn iqr_overlap(a: &[f64], b: &[f64]) -> bool {
    let (a1, a3) = iqr_bounds(a);
    let (b1, b3) = iqr_bounds(b);
    a1 <= b3 && b1 <= a3
}

/// Standardizes `xs` by the given location/scale; scale below `eps` only
/// centers (mirrors the ECT treatment of constant variables).
pub fn standardize(xs: &[f64], loc: f64, scale: f64, eps: f64) -> Vec<f64> {
    xs.iter()
        .map(|&x| {
            let c = x - loc;
            if scale > eps {
                c / scale
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(median(&xs), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn iqr_overlap_detection() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let shifted: Vec<f64> = a.iter().map(|x| x + 100.0).collect();
        let near: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        assert!(!iqr_overlap(&a, &shifted), "distant distributions disjoint");
        assert!(iqr_overlap(&a, &near), "close distributions overlap");
        assert!(iqr_overlap(&a, &a));
    }

    #[test]
    fn standardize_handles_zero_scale() {
        let out = standardize(&[1.0, 2.0], 1.0, 0.0, 1e-12);
        assert_eq!(out, vec![0.0, 1.0]);
        let out = standardize(&[10.0, 20.0], 10.0, 10.0, 1e-12);
        assert_eq!(out, vec![0.0, 1.0]);
    }
}
