//! Chunked column kernels for outputs-wide plane operations.
//!
//! The hot tails of ensemble assembly — keep-set refinement over a step
//! plane, column gather into a matrix row, history publication — are
//! element-wise loops over contiguous `f64`/`u32`/`bool` columns. Written
//! as branchless fixed-width chunks (bitwise `&` on `bool`, no
//! short-circuit, no data-dependent branches) they autovectorize under
//! the workspace's safe-code constraint: no intrinsics, no `unsafe`, the
//! compiler picks the lanes.
//!
//! Every kernel is **bit-safe**: pure copies, comparisons, and boolean
//! algebra. No floating-point arithmetic is reassociated or fused here —
//! the engines' bit-identity contract (see `rca-sim`'s differential
//! suite) is untouched by routing a caller through these.

/// Lane width of the chunked loops. Eight 64-bit elements is one AVX-512
/// register or two AVX2 registers — wide enough that LLVM unrolls or
/// vectorizes the body, small enough that the scalar remainder is cheap.
const LANES: usize = 8;

/// Branchless keep-set refinement over one member's step plane:
/// `keep[i] &= written[i] > step && plane[i].is_finite()`, without the
/// short-circuits. Exactly the per-member loop of a finite-outputs scan;
/// call once per member, then harvest with [`keep_to_ids`].
///
/// # Panics
/// Panics if the three columns disagree in length.
pub fn keep_refine(keep: &mut [bool], written: &[u32], plane: &[f64], step: u32) {
    assert_eq!(keep.len(), written.len(), "column length mismatch");
    assert_eq!(keep.len(), plane.len(), "column length mismatch");
    let mut k = keep.chunks_exact_mut(LANES);
    let mut w = written.chunks_exact(LANES);
    let mut x = plane.chunks_exact(LANES);
    for ((kc, wc), xc) in (&mut k).zip(&mut w).zip(&mut x) {
        for i in 0..LANES {
            kc[i] = kc[i] & (wc[i] > step) & xc[i].is_finite();
        }
    }
    for ((kr, &wr), &xr) in k
        .into_remainder()
        .iter_mut()
        .zip(w.remainder())
        .zip(x.remainder())
    {
        *kr = *kr & (wr > step) & xr.is_finite();
    }
}

/// Dense ids (positions) of the set entries of a keep mask, in order —
/// the harvest step after [`keep_refine`] passes.
pub fn keep_to_ids(keep: &[bool]) -> Vec<u32> {
    keep.iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Column gather: appends `row[keep[..]]` to `dst`, in keep order — one
/// matrix row assembled from a full-width plane. The indexed loads are
/// independent, so the chunked body is free to overlap them.
///
/// # Panics
/// Panics (indexing) if any id in `keep` is out of bounds for `row`.
pub fn gather_into(dst: &mut Vec<f64>, row: &[f64], keep: &[u32]) {
    dst.reserve(keep.len());
    let mut ks = keep.chunks_exact(LANES);
    for kc in &mut ks {
        let mut lane = [0.0f64; LANES];
        for i in 0..LANES {
            lane[i] = row[kc[i] as usize];
        }
        dst.extend_from_slice(&lane);
    }
    dst.extend(ks.remainder().iter().map(|&k| row[k as usize]));
}

/// Publishes a run's history prefix into a store chunk: copies
/// `min(src.len(), dst.len())` leading elements (the store is NaN-filled
/// past the rows a run reached) and returns the count copied. A straight
/// `copy_from_slice` memcpy — the kernel exists so every publication
/// site shares the one clamped-prefix idiom.
pub fn publish(dst: &mut [f64], src: &[f64]) -> usize {
    let n = src.len().min(dst.len());
    dst[..n].copy_from_slice(&src[..n]);
    n
}

/// Fills a plane with NaN — quarantined-member chunks, reset buffers.
pub fn fill_nan(dst: &mut [f64]) {
    dst.fill(f64::NAN);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_refine_matches_scalar_loop() {
        // 19 elements: two full lanes plus a remainder.
        let n = 19;
        let written: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
        let plane: Vec<f64> = (0..n)
            .map(|i| match i % 5 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => i as f64,
            })
            .collect();
        for step in 0..8u32 {
            let mut fast = vec![true; n];
            fast[3] = false; // pre-cleared entries stay cleared
            let mut slow = fast.clone();
            keep_refine(&mut fast, &written, &plane, step);
            for i in 0..n {
                slow[i] = slow[i] && (written[i] > step) && plane[i].is_finite();
            }
            assert_eq!(fast, slow, "step {step}");
        }
    }

    #[test]
    fn gather_matches_indexing() {
        let row: Vec<f64> = (0..23).map(|i| i as f64 * 1.5).collect();
        let keep: Vec<u32> = vec![0, 2, 3, 5, 7, 11, 13, 17, 19, 22];
        let mut dst = vec![-1.0];
        gather_into(&mut dst, &row, &keep);
        let expect: Vec<f64> = std::iter::once(-1.0)
            .chain(keep.iter().map(|&k| row[k as usize]))
            .collect();
        assert_eq!(dst, expect);
    }

    #[test]
    fn publish_clamps_to_shorter_side() {
        let mut dst = vec![f64::NAN; 5];
        assert_eq!(publish(&mut dst, &[1.0, 2.0]), 2);
        assert_eq!(&dst[..2], &[1.0, 2.0]);
        assert!(dst[2..].iter().all(|x| x.is_nan()));
        let mut short = vec![0.0; 2];
        assert_eq!(publish(&mut short, &[7.0, 8.0, 9.0]), 2);
        assert_eq!(short, vec![7.0, 8.0]);
    }

    #[test]
    fn keep_ids_are_positions() {
        assert_eq!(
            keep_to_ids(&[true, false, true, true, false]),
            vec![0, 2, 3]
        );
        assert!(keep_to_ids(&[false; 4]).is_empty());
    }
}
