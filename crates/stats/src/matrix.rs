//! Dense row-major matrix with the operations the ECT/lasso stack needs.
//!
//! The statistics layer of the paper (CESM-ECT, lasso) runs on matrices of
//! `runs × variables` global means. Sizes are modest (≤ a few hundred each
//! way), so a straightforward dense implementation is appropriate; the hot
//! loops (matvec, Gram) are written cache-friendly over contiguous rows.

use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from a slice of row vectors (all must share a length).
    pub fn from_row_slices(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds element-wise from a generator — the zero-copy assembly path
    /// for ensemble/ECT matrices over dense per-run history buffers: the
    /// caller indexes straight into its columns (`f(run, col)`) and no
    /// intermediate row `Vec`s are allocated.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds from borrowed full-width row slices produced per row index —
    /// the memcpy assembly path over a columnar run store: each row is a
    /// contiguous step plane copied in one `extend_from_slice`, no
    /// per-element closure dispatch and no intermediate row vectors.
    ///
    /// # Panics
    /// Panics if any produced row's length differs from `cols`.
    pub fn from_rows_with<'a>(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize) -> &'a [f64],
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row = f(r);
            assert_eq!(row.len(), cols, "row width mismatch");
            data.extend_from_slice(row);
        }
        Matrix { rows, cols, data }
    }

    /// Column-gathering variant of [`Matrix::from_rows_with`]: keeps only
    /// the `keep` columns (by dense `u32` id, in order) of each borrowed
    /// row — the keep-set assembly path when a store's finite-output
    /// subset is a strict subset of its output table.
    pub fn gather_rows_with<'a>(
        rows: usize,
        keep: &[u32],
        mut f: impl FnMut(usize) -> &'a [f64],
    ) -> Self {
        let mut data = Vec::with_capacity(rows * keep.len());
        for r in 0..rows {
            crate::kernels::gather_into(&mut data, f(r), keep);
        }
        Matrix {
            rows,
            cols: keep.len(),
            data,
        }
    }

    /// Column-gather: a copy keeping only `keep` (by index, in order) —
    /// used when an experimental run set shares just a subset of the
    /// ensemble's outputs.
    pub fn gather_cols(&self, keep: &[usize]) -> Self {
        Matrix::from_fn(self.rows, keep.len(), |r, c| self[(r, keep[c])])
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (mj, &x) in m.iter_mut().zip(self.row(i)) {
                *mj += x;
            }
        }
        let n = self.rows.max(1) as f64;
        for mj in &mut m {
            *mj /= n;
        }
        m
    }

    /// Per-column sample standard deviations (ddof = 1).
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut s = vec![0.0; self.cols];
        for i in 0..self.rows {
            for ((sj, &mj), &x) in s.iter_mut().zip(&means).zip(self.row(i)) {
                let d = x - mj;
                *sj += d * d;
            }
        }
        let denom = (self.rows.max(2) - 1) as f64;
        for sj in &mut s {
            *sj = (*sj / denom).sqrt();
        }
        s
    }

    /// Standardizes columns in place using the supplied means and stds;
    /// columns with `std <= eps` are centered but not scaled (the ECT keeps
    /// constant variables from exploding to ±inf).
    pub fn standardize_with(&mut self, means: &[f64], stds: &[f64], eps: f64) {
        assert_eq!(means.len(), self.cols);
        assert_eq!(stds.len(), self.cols);
        for i in 0..self.rows {
            let cols = self.cols;
            let row = &mut self.data[i * cols..(i + 1) * cols];
            for ((x, &m), &s) in row.iter_mut().zip(means).zip(stds) {
                *x -= m;
                if s > eps {
                    *x /= s;
                }
            }
        }
    }

    /// Sample covariance matrix of the columns (`cols × cols`, ddof = 1).
    pub fn covariance(&self) -> Matrix {
        let means = self.col_means();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let di = row[i] - means[i];
                for j in i..self.cols {
                    cov[(i, j)] += di * (row[j] - means[j]);
                }
            }
        }
        let denom = (self.rows.max(2) - 1) as f64;
        for i in 0..self.cols {
            for j in i..self.cols {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        cov
    }

    /// Maximum absolute entry difference with `other` (for tests).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.col(1), vec![2., 5.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        Matrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_rows(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows(3, 2, vec![1., 10., 2., 20., 3., 30.]);
        assert_eq!(m.col_means(), vec![2.0, 20.0]);
        let s = m.col_stds();
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_centers_and_scales() {
        let mut m = Matrix::from_rows(3, 2, vec![1., 5., 2., 5., 3., 5.]);
        let means = m.col_means();
        let stds = m.col_stds();
        m.standardize_with(&means, &stds, 1e-12);
        assert!((m.col_means()[0]).abs() < 1e-12);
        assert!((m.col_stds()[0] - 1.0).abs() < 1e-12);
        // Constant column centered, not scaled.
        assert_eq!(m.col(1), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn covariance_known() {
        // Perfectly correlated columns.
        let m = Matrix::from_rows(3, 2, vec![1., 2., 2., 4., 3., 6.]);
        let c = m.covariance();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert_eq!(c[(0, 1)], c[(1, 0)]);
    }

    #[test]
    fn from_row_slices_builds() {
        let m = Matrix::from_row_slices(&[vec![1., 2.], vec![3., 4.]]);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn borrowed_row_constructors_match_from_fn() {
        let store: Vec<Vec<f64>> = vec![vec![1., 2., 3., 4.], vec![5., 6., 7., 8.]];
        let full = Matrix::from_rows_with(2, 4, |r| &store[r]);
        assert_eq!(full, Matrix::from_fn(2, 4, |r, c| store[r][c]));
        let keep = [3u32, 0];
        let gathered = Matrix::gather_rows_with(2, &keep, |r| &store[r]);
        assert_eq!(
            gathered,
            Matrix::from_fn(2, 2, |r, c| store[r][keep[c] as usize])
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn borrowed_rows_must_share_width() {
        let store: Vec<Vec<f64>> = vec![vec![1., 2.], vec![3.]];
        Matrix::from_rows_with(2, 2, |r| &store[r]);
    }
}
