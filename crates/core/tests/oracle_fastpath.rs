//! Fastpath-vs-full equivalence fences for the runtime oracle.
//!
//! The slice-specialized fast path (specialize + memoize + early exit,
//! `rca_sim::specialize` + `RuntimeSampler`) carries one contract:
//! **fast paths never change evidence**. These tests pit a fastpath-on
//! session against a fastpath-off session over the paper's experiments
//! and assert the oracle answers — and whole serialized diagnoses — are
//! identical, including the per-node memo replay on repeated queries and
//! scenarios whose run configs carry runtime fault plans (oracle runs
//! strip faults either way; a fault plan must not reintroduce
//! divergence).

use rca_core::{ExperimentSetup, OracleKind, RcaSession, Scenario};
use rca_model::{generate, Experiment, ModelConfig, ModelSource};
use rca_sim::FaultPlan;
use std::sync::Arc;

fn session(model: &ModelSource, fastpath: bool) -> RcaSession<'_> {
    RcaSession::builder(model)
        .setup(ExperimentSetup::quick())
        .oracle(OracleKind::Runtime)
        .oracle_fastpath(fastpath)
        .build()
        .expect("session")
}

/// Every paper experiment, every metagraph node, three query shapes:
/// specialized answers must equal full-program answers node for node.
/// Error-class experiments (RANDOMBUG's out-of-bounds write) are
/// included deliberately — when the full path absorbs a runtime error,
/// the fast path must converge to the same verdicts through its
/// poison-and-rerun fallback or by pruning the erroring statement out of
/// a slice it provably cannot influence.
#[test]
fn fastpath_verdicts_match_full_on_paper_experiments() {
    let model = generate(&ModelConfig::test());
    let on = session(&model, true);
    let off = session(&model, false);
    let mg = on.metagraph();
    let nodes: Vec<_> = mg.graph.nodes().collect();
    assert!(nodes.len() > 60, "metagraph too small: {}", nodes.len());

    for exp in [
        Experiment::WsubBug,
        Experiment::RandMt,
        Experiment::GoffGratch,
        Experiment::Avx2,
        Experiment::RandomBug,
        Experiment::Dyn3Bug,
    ] {
        let mut o_on = on.make_oracle(exp);
        let mut o_off = off.make_oracle(exp);
        // Three disjoint batches (refinement queries ~30 nodes a turn),
        // then a batch overlapping the first two (memo hits + misses).
        let batches = [
            &nodes[0..30],
            &nodes[30..60],
            &nodes[nodes.len() - 30..],
            &nodes[15..45],
        ];
        for (i, batch) in batches.iter().enumerate() {
            let a = o_on.differs(mg, batch);
            let b = o_off.differs(mg, batch);
            assert_eq!(a, b, "{} batch {i}: fastpath diverged", exp.name());
        }
        // Full replay of batch 0: all-hit memo path must reproduce the
        // executed answers exactly.
        assert_eq!(
            o_on.differs(mg, batches[0]),
            o_off.differs(mg, batches[0]),
            "{}: memo replay diverged",
            exp.name()
        );
    }
}

/// Whole-diagnosis equivalence: the serialized artifact (verdict,
/// refinement trace, suspects, sampling errors — everything but the
/// telemetry profile) is identical with the fast path on and off.
#[test]
fn diagnosis_artifacts_identical_on_and_off() {
    let model = generate(&ModelConfig::test());
    let on = session(&model, true);
    let off = session(&model, false);
    for exp in [
        Experiment::WsubBug,
        Experiment::GoffGratch,
        Experiment::RandMt,
    ] {
        let d_on = on.diagnose(exp).expect("diagnose on");
        let d_off = off.diagnose(exp).expect("diagnose off");
        let j_on = serde_json::to_string_pretty(&d_on).expect("serialize");
        let j_off = serde_json::to_string_pretty(&d_off).expect("serialize");
        assert_eq!(j_on, j_off, "{}: diagnosis artifact diverged", exp.name());
    }
}

/// Scenario fault plans must not leak into oracle evidence: the session
/// strips faults from oracle run configs (`without_faults`), so a
/// heavily faulted scenario diagnoses to the same artifact with the
/// fast path on and off — and to the same refinement evidence as the
/// fault-free scenario of the same mutant.
#[test]
fn fault_plans_never_reach_oracle_evidence() {
    let model = generate(&ModelConfig::test());
    let on = session(&model, true);
    let off = session(&model, false);

    let base = Arc::new(model.apply(Experiment::GoffGratch));
    let config = on.control_config();
    let mut faulted_config = config.clone();
    faulted_config.faults = FaultPlan::seeded(0xFA17, on.setup().n_experiment, config.steps, 2);
    assert!(!faulted_config.faults.is_empty(), "fault plan must be live");

    let faulted = Scenario::new("goffgratch-faulted", Arc::clone(&base), faulted_config);
    let clean = Scenario::new("goffgratch-faulted", base, config);

    let d_on = on.diagnose_scenario(&faulted).expect("diagnose on");
    let d_off = off.diagnose_scenario(&faulted).expect("diagnose off");
    assert_eq!(
        serde_json::to_string_pretty(&d_on).expect("serialize"),
        serde_json::to_string_pretty(&d_off).expect("serialize"),
        "faulted scenario: fastpath changed the artifact"
    );

    // The oracle's evidence (refinement + sampling errors) must match
    // the fault-free run of the same mutant — the statistics stage may
    // legitimately differ (experimental ensembles do run the faults),
    // so compare the oracle-owned pieces, not the whole artifact.
    let d_clean = on.diagnose_scenario(&clean).expect("diagnose clean");
    assert_eq!(
        d_on.sampling_errors.len(),
        d_clean.sampling_errors.len(),
        "fault plan leaked into sampling errors"
    );
    if let (Some(a), Some(b)) = (&d_on.refinement, &d_clean.refinement) {
        assert_eq!(a.final_nodes, b.final_nodes, "fault plan changed evidence");
        assert_eq!(a.all_sampled, b.all_sampled, "fault plan changed sampling");
    }
}
