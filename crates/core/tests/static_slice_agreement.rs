//! Slicer-agreement differential: the metagraph's `backward_slice` vs
//! the IR-level `DepGraph::static_slice` from `rca_analysis`.
//!
//! Two independent implementations of the paper's §4.2 backward slice —
//! one walking the textual AST metagraph, one walking the slot-indexed
//! compiled IR — must select the same `(module, subprogram, canonical)`
//! node set for the same criteria, on the pristine model and on every
//! paper experiment variant, both unrestricted and module-restricted.

use rca_core::{backward_slice_names, RcaPipeline, RcaSession};
use rca_model::{generate, Experiment, ModelConfig, ModelSource};
use rca_sim::compile_sources;

type Rendered = (String, Option<String>, String);

/// Renders a metagraph slice to sorted `(module, subprogram, canonical)`
/// triples — the same shape `DepGraph::static_slice` returns.
fn meta_slice(pipeline: &RcaPipeline, criteria: &[&str], restrict: Option<&str>) -> Vec<Rendered> {
    let names: Vec<String> = criteria.iter().map(|s| (*s).to_string()).collect();
    let mg = &pipeline.metagraph;
    let slice = backward_slice_names(mg, &names, |m| restrict.is_none_or(|r| m == r));
    let mut out: Vec<Rendered> = slice
        .meta_nodes()
        .iter()
        .map(|&n| {
            (
                mg.module_name_of(n).to_string(),
                mg.subprogram_of(n).map(str::to_string),
                mg.canonical_of(n).to_string(),
            )
        })
        .collect();
    out.sort();
    out
}

/// The IR slicer over the *same* coverage-filtered source universe the
/// pipeline compiled its metagraph from.
fn ir_slice(pipeline: &RcaPipeline, criteria: &[&str], restrict: Option<&str>) -> Vec<Rendered> {
    let prog = compile_sources(pipeline.filtered_sources()).expect("filtered sources compile");
    rca_analysis::DepGraph::build(&prog).static_slice(criteria, restrict)
}

fn assert_slices_agree(model: &ModelSource, label: &str) {
    let pipeline = RcaPipeline::build(model).expect("pipeline");
    // Criteria from the paper's Table-2 style output mapping plus a
    // deep internal temporary, so the closure spans modules.
    let internal = pipeline.outputs_to_internal(&["flds".into(), "taux".into()]);
    let mut criteria: Vec<&str> = internal.iter().map(String::as_str).collect();
    criteria.push("nctend");
    for restrict in [None, Some("micro_mg")] {
        let a = meta_slice(&pipeline, &criteria, restrict);
        let b = ir_slice(&pipeline, &criteria, restrict);
        let only_mg: Vec<_> = a.iter().filter(|n| !b.contains(n)).collect();
        let only_ir: Vec<_> = b.iter().filter(|n| !a.contains(n)).collect();
        assert!(
            only_mg.is_empty() && only_ir.is_empty(),
            "{label} (restrict={restrict:?}): slices differ\n  metagraph-only: {only_mg:?}\n  ir-only: {only_ir:?}"
        );
        assert!(!a.is_empty(), "{label}: slice is empty");
    }
}

#[test]
fn slicers_agree_on_pristine_model() {
    let model = generate(&ModelConfig::test());
    assert_slices_agree(&model, "pristine");
}

#[test]
fn slicers_agree_on_all_experiments() {
    let model = generate(&ModelConfig::test());
    for e in Experiment::ALL {
        assert_slices_agree(&model.apply(e), e.name());
    }
}

#[test]
fn session_analysis_mirrors_session_metagraph() {
    // `RcaSession::analyze` compiles the pipeline's coverage-filtered
    // sources; its dependence graph must cover exactly the metagraph's
    // node universe.
    let model = generate(&ModelConfig::test());
    let session = RcaSession::builder(&model).build().expect("session");
    let analysis = session.analyze().expect("analysis");
    let mg = session.metagraph();
    let mut mg_nodes: Vec<Rendered> = mg
        .graph
        .nodes()
        .map(|n| {
            (
                mg.module_name_of(n).to_string(),
                mg.subprogram_of(n).map(str::to_string),
                mg.canonical_of(n).to_string(),
            )
        })
        .collect();
    mg_nodes.sort();
    let dg_nodes = analysis.deps().rendered_nodes();
    assert_eq!(
        mg_nodes, dg_nodes,
        "session analysis/metagraph universes differ"
    );
}
