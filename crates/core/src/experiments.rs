//! High-level experiment harness: ensembles, ECT verdicts, variable
//! selection — the statistical front end of every paper experiment.

use crate::error::RcaError;
use rca_model::{Experiment, ModelConfig, ModelSource};
use rca_sim::{perturbations, Avx2Policy, EnsembleRuns, PrngKind, Program, RunConfig};
use rca_stats::{fit_lasso_path, median_distance_selection, Ect, EctConfig, Matrix, Verdict};
use std::sync::Arc;

/// Sizing and statistical parameters for an experiment campaign.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// Simulation steps (UF-CAM-ECT: nine).
    pub steps: u32,
    /// Ensemble size.
    pub n_ensemble: usize,
    /// Experimental-set size.
    pub n_experiment: usize,
    /// Initial-condition perturbation magnitude (CESM: O(10⁻¹⁴)).
    pub ic_magnitude: f64,
    /// FMA delta amplification for AVX2 runs (site-count bridging).
    pub fma_scale: f64,
    /// ECT configuration.
    pub ect: EctConfig,
    /// Lasso sparsity target (paper: "about five variables").
    pub lasso_target: usize,
    /// Ensemble/experiment perturbation seeds.
    pub seed: u64,
    /// Member retry/quarantine policy for run failures.
    pub retry: RetryPolicy,
    /// Per-run statement fuel budget (`None` = unlimited); applied to
    /// every control, experimental, and scenario run derived from this
    /// setup.
    pub fuel: Option<u64>,
    /// Which compiled [`rca_sim::Executor`] engine runs every run derived
    /// from this setup — the bytecode VM (default) or the slot-indexed
    /// tree walker. Bit-identical by contract; the CI engine cross-check
    /// gate compares whole-campaign scorecards across the two.
    pub engine: rca_sim::ExecEngine,
}

impl Default for ExperimentSetup {
    fn default() -> Self {
        ExperimentSetup {
            steps: 9,
            n_ensemble: 36,
            n_experiment: 12,
            ic_magnitude: 1e-14,
            fma_scale: 1.0,
            ect: EctConfig::default(),
            lasso_target: 5,
            seed: 0xC1,
            retry: RetryPolicy::default(),
            fuel: None,
            engine: rca_sim::ExecEngine::Vm,
        }
    }
}

/// Bounded retry and quarantine policy for failed ensemble members —
/// the graceful-degradation contract of the fault-tolerance plane.
///
/// A member whose run fails is retried with a derived perturbation up to
/// `max_retries` times, then quarantined; the ECT is fitted from the
/// surviving quorum as long as it meets the configured minimum, with a
/// `DegradedEnsemble` note recorded on the diagnosis. Below quorum the
/// pipeline errors (structured, not a panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts per failed member before quarantine.
    pub max_retries: u32,
    /// Minimum surviving control-ensemble members for an ECT fit;
    /// `0` = automatic (half the ensemble, at least 3).
    pub min_control_members: usize,
    /// Minimum surviving experimental runs for a verdict;
    /// `0` = automatic (a pyCECT run-set of 3, capped at the set size).
    pub min_experiment_members: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            min_control_members: 0,
            min_experiment_members: 0,
        }
    }
}

impl RetryPolicy {
    /// Effective control quorum for an ensemble of `total` members.
    pub fn control_quorum(&self, total: usize) -> usize {
        if self.min_control_members > 0 {
            self.min_control_members
        } else {
            (total / 2).max(3).min(total.max(1))
        }
    }

    /// Effective experimental quorum for a set of `total` runs.
    pub fn experiment_quorum(&self, total: usize) -> usize {
        if self.min_experiment_members > 0 {
            self.min_experiment_members
        } else {
            3.min(total).max(1)
        }
    }
}

/// Fill-health summary of one ensemble (control or experimental side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnsembleHealth {
    /// Members requested.
    pub total: u32,
    /// Members whose data entered the statistics.
    pub surviving: u32,
    /// Surviving members that needed at least one retry.
    pub recovered: u32,
    /// Members excluded after exhausting retries.
    pub quarantined: u32,
}

impl EnsembleHealth {
    fn of(store: &EnsembleRuns) -> EnsembleHealth {
        EnsembleHealth {
            total: store.members() as u32,
            surviving: store.surviving_count() as u32,
            recovered: store.recovered_count() as u32,
            quarantined: store.quarantined_count() as u32,
        }
    }

    /// Whether any member retried or was quarantined.
    pub fn degraded(&self) -> bool {
        self.recovered > 0 || self.quarantined > 0
    }
}

/// Note recorded on a [`crate::Diagnosis`] when statistics were computed
/// from a degraded ensemble (retried or quarantined members on either
/// side) instead of erroring out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedEnsemble {
    /// Control-ensemble fill health.
    pub control: EnsembleHealth,
    /// Experimental-set fill health.
    pub experimental: EnsembleHealth,
}

impl serde::Serialize for EnsembleHealth {
    fn to_json(&self) -> serde::Json {
        serde::Json::obj([
            ("total", serde::Json::Uint(u64::from(self.total))),
            ("surviving", serde::Json::Uint(u64::from(self.surviving))),
            ("recovered", serde::Json::Uint(u64::from(self.recovered))),
            (
                "quarantined",
                serde::Json::Uint(u64::from(self.quarantined)),
            ),
        ])
    }
}

impl serde::Serialize for DegradedEnsemble {
    fn to_json(&self) -> serde::Json {
        serde::Json::obj([
            ("control", self.control.to_json()),
            ("experimental", self.experimental.to_json()),
        ])
    }
}

impl std::fmt::Display for DegradedEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "control {}/{} surviving ({} recovered, {} quarantined); \
             experimental {}/{} surviving ({} recovered, {} quarantined)",
            self.control.surviving,
            self.control.total,
            self.control.recovered,
            self.control.quarantined,
            self.experimental.surviving,
            self.experimental.total,
            self.experimental.recovered,
            self.experimental.quarantined,
        )
    }
}

impl ExperimentSetup {
    /// A faster configuration for unit/integration tests.
    pub fn quick() -> Self {
        ExperimentSetup {
            steps: 5,
            n_ensemble: 24,
            n_experiment: 9,
            ect: EctConfig {
                n_pcs: 10,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// The control run configuration every experiment and scenario is
/// compared against: defaults at the setup's step count. Single source of
/// truth — the cached ensemble, the session, and the experimental configs
/// all derive from here.
pub fn control_config(setup: &ExperimentSetup) -> RunConfig {
    RunConfig {
        steps: setup.steps,
        fuel: setup.fuel,
        engine: setup.engine,
        ..Default::default()
    }
}

/// Run configurations for one experiment (control vs experimental).
pub fn experiment_configs(
    experiment: Experiment,
    setup: &ExperimentSetup,
) -> (RunConfig, RunConfig) {
    let control = control_config(setup);
    let mut exp = control.clone();
    if experiment.uses_mersenne_twister() {
        exp.prng = PrngKind::MersenneTwister;
    }
    if experiment.enables_avx2() {
        exp.avx2 = Avx2Policy::AllModules;
        exp.fma_scale = setup.fma_scale;
    }
    (control, exp)
}

/// Control-side statistics shared by every experiment and scenario over
/// one `(model, setup)` pair: the perturbed ensemble runs, their output
/// matrix, and the ECT fitted to it.
///
/// Computing this is the expensive half of the statistical front end
/// (`n_ensemble` interpreter runs); [`crate::RcaSession`] caches one per
/// session so a fault-injection campaign of N scenarios pays for the
/// ensemble once, not N times.
#[derive(Debug, Clone)]
pub struct EnsembleStats {
    /// Output names (sorted, finite in every ensemble run).
    pub names: Vec<String>,
    /// Ensemble output matrix at the evaluation step.
    pub matrix: Matrix,
    /// The ECT fitted to the full ensemble output set.
    pub(crate) ect: Ect,
    /// The base program's sorted output table (`OutputId` space).
    pub(crate) table: Arc<[Arc<str>]>,
    /// Kept column ids (indices into `table`): finite at the evaluation
    /// step in every surviving ensemble run.
    pub(crate) kept: Vec<u32>,
    /// Control-fill health (all-healthy on the zero-fault path).
    pub health: EnsembleHealth,
}

/// Runs the control ensemble and fits the ECT — everything on the
/// statistical front end that does not depend on the experiment. The
/// base model arrives pre-compiled; every member executes the shared
/// program **into one columnar [`EnsembleRuns`] block**, and the ensemble
/// matrix memcpy-gathers from the store's contiguous evaluation-step
/// planes — no per-run history vectors, no re-assembly.
pub(crate) fn collect_ensemble(
    base_program: &Arc<Program>,
    setup: &ExperimentSetup,
    profile: &mut rca_obs::PhaseProfile,
) -> Result<EnsembleStats, RcaError> {
    let perts = perturbations(setup.n_ensemble, setup.ic_magnitude, setup.seed);
    let store = profile.time("phase.ensemble_fill", || {
        EnsembleRuns::run_resilient(
            base_program,
            &control_config(setup),
            &perts,
            setup.retry.max_retries,
        )
    });
    let health = EnsembleHealth::of(&store);
    let quorum = setup.retry.control_quorum(setup.n_ensemble);
    if (health.surviving as usize) < quorum {
        let cause = store
            .first_failure()
            .map(|(m, e)| format!("; first failure: member {m}: {e}"))
            .unwrap_or_default();
        return Err(RcaError::Stats(format!(
            "control ensemble below quorum: {} of {} members survived (minimum {quorum}){cause}",
            health.surviving, setup.n_ensemble
        )));
    }
    let eval_step = setup.steps - 1;
    let kept = store.finite_outputs_at(eval_step);
    let table = Arc::clone(base_program.output_names());
    let names = kept
        .iter()
        .map(|&i| table[i as usize].to_string())
        .collect();
    let matrix = store.matrix_at(eval_step, &kept);
    let ect = profile.time("phase.ect_fit", || Ect::fit(&matrix, setup.ect));
    Ok(EnsembleStats {
        names,
        matrix,
        ect,
        table,
        kept,
        health,
    })
}

/// Statistical results for one experiment campaign.
#[derive(Debug, Clone)]
pub struct ExperimentData {
    /// ECT verdict over the first 3 experimental runs (pyCECT style).
    pub verdict: Verdict,
    /// Failure rate over all experimental run-sets of size 3.
    pub failure_rate: f64,
    /// Output names (sorted, shared by all matrices).
    pub output_names: Vec<String>,
    /// Outputs selected by the lasso, in |weight| order.
    pub lasso_selected: Vec<String>,
    /// Median-distance ranking `(output, standardized distance)`, best
    /// first (unfiltered, for ratio reporting).
    pub median_ranking: Vec<(String, f64)>,
    /// Ensemble output matrix at the evaluation step.
    pub ensemble: Matrix,
    /// Experimental output matrix at the evaluation step.
    pub experimental: Matrix,
    /// Set when either side's fill degraded (retries or quarantines);
    /// `None` on the zero-fault path.
    pub degraded: Option<DegradedEnsemble>,
}

/// Runs the experimental side of the statistical front end against a
/// prepared control ensemble: `n_experiment` runs of `exp_model` under
/// `exp_cfg`, the ECT verdict/failure rate, and affected-output selection
/// with both §3 methods.
///
/// This is the engine behind [`crate::RcaSession::statistics`] and
/// [`crate::RcaSession::diagnose_scenario`]: the same cached ensemble
/// serves every experiment and every injected-fault scenario.
pub(crate) fn evaluate_against_ensemble(
    ens: &EnsembleStats,
    exp_program: &Arc<Program>,
    exp_cfg: &RunConfig,
    setup: &ExperimentSetup,
) -> Result<ExperimentData, RcaError> {
    let exp_perts = perturbations(setup.n_experiment, setup.ic_magnitude, setup.seed ^ 0xDEAD);
    let exp_store =
        EnsembleRuns::run_resilient(exp_program, exp_cfg, &exp_perts, setup.retry.max_retries);
    let exp_health = EnsembleHealth::of(&exp_store);
    let quorum = setup.retry.experiment_quorum(setup.n_experiment);
    if (exp_health.surviving as usize) < quorum {
        let cause = exp_store
            .first_failure()
            .map(|(m, e)| format!("; first failure: member {m}: {e}"))
            .unwrap_or_default();
        return Err(RcaError::Stats(format!(
            "experimental runs below quorum: {} of {} survived (minimum {quorum}){cause}",
            exp_health.surviving, setup.n_experiment
        )));
    }
    let degraded = if ens.health.degraded() || exp_health.degraded() {
        Some(DegradedEnsemble {
            control: ens.health,
            experimental: exp_health,
        })
    } else {
        None
    };

    let eval_step = setup.steps - 1;
    let kept_b = exp_store.finite_outputs_at(eval_step);
    // The experimental program almost always shares the base program's
    // output table (mutations patch assignments, not `outfld` calls), so
    // column intersection is pure id arithmetic and the experimental
    // matrix memcpy-gathers straight from the store's contiguous
    // evaluation-step planes — zero hashing, no name resolution, no
    // per-run buffers. A variant with a different output set falls back
    // to intersecting by name.
    let same_table = *exp_store.output_names() == ens.table;
    let (names, ensemble, experimental, full_match) = if same_table {
        let mut in_b = vec![false; ens.table.len()];
        for &i in &kept_b {
            in_b[i as usize] = true;
        }
        let kept: Vec<u32> = ens
            .kept
            .iter()
            .copied()
            .filter(|&i| in_b[i as usize])
            .collect();
        let full_match = kept == ens.kept;
        let names: Vec<String> = kept
            .iter()
            .map(|&i| ens.table[i as usize].to_string())
            .collect();
        let ensemble = if full_match {
            ens.matrix.clone()
        } else {
            let mut pos_of = vec![usize::MAX; ens.table.len()];
            for (p, &i) in ens.kept.iter().enumerate() {
                pos_of[i as usize] = p;
            }
            let positions: Vec<usize> = kept.iter().map(|&i| pos_of[i as usize]).collect();
            ens.matrix.gather_cols(&positions)
        };
        let experimental = exp_store.matrix_at(eval_step, &kept);
        (names, ensemble, experimental, full_match)
    } else {
        let exp_table = Arc::clone(exp_store.output_names());
        let names_b: Vec<String> = kept_b
            .iter()
            .map(|&i| exp_table[i as usize].to_string())
            .collect();
        let names: Vec<String> = ens
            .names
            .iter()
            .filter(|n| names_b.contains(n))
            .cloned()
            .collect();
        let ens_pos: Vec<usize> = names
            .iter()
            .map(|n| ens.names.iter().position(|m| m == n).expect("intersected"))
            .collect();
        let ensemble = ens.matrix.gather_cols(&ens_pos);
        let exp_cols: Vec<u32> = names
            .iter()
            .map(|n| {
                let p = names_b.iter().position(|m| m == n).expect("intersected");
                kept_b[p]
            })
            .collect();
        let experimental = exp_store.matrix_at(eval_step, &exp_cols);
        // Foreign table: the prefit ECT's column space does not apply.
        (names, ensemble, experimental, false)
    };

    // ECT: verdict on the first 3 experimental runs, failure rate over all
    // 3-run sets. The prefit ECT is reusable whenever the output sets
    // match (the overwhelmingly common case); a mismatch refits on the
    // intersected ensemble columns, exactly as the one-shot path did.
    let refit;
    let ect = if full_match {
        &ens.ect
    } else {
        refit = Ect::fit(&ensemble, setup.ect);
        &refit
    };
    let head: Vec<Vec<f64>> = (0..3.min(experimental.rows()))
        .map(|i| experimental.row(i).to_vec())
        .collect();
    let verdict = ect.evaluate(&Matrix::from_row_slices(&head));
    let failure_rate = ect.failure_rate(&experimental, 3);

    // Variable selection (§3).
    let median_sel = median_distance_selection(&ensemble, &experimental, false);
    let median_ranking: Vec<(String, f64)> = median_sel
        .iter()
        .map(|s| (names[s.index].clone(), s.median_distance))
        .collect();

    let mut all_rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    for i in 0..ensemble.rows() {
        all_rows.push(ensemble.row(i).to_vec());
        labels.push(0.0);
    }
    for i in 0..experimental.rows() {
        all_rows.push(experimental.row(i).to_vec());
        labels.push(1.0);
    }
    let lasso = fit_lasso_path(
        &Matrix::from_row_slices(&all_rows),
        &labels,
        setup.lasso_target,
        30,
        500,
    );
    let lasso_selected: Vec<String> = lasso
        .selected()
        .into_iter()
        .map(|i| names[i].clone())
        .collect();

    Ok(ExperimentData {
        verdict,
        failure_rate,
        output_names: names,
        lasso_selected,
        median_ranking,
        ensemble,
        experimental,
        degraded,
    })
}

/// One-shot convenience over [`collect_ensemble`] +
/// [`evaluate_against_ensemble`] for a built-in experiment (tests and
/// callers without a session cache).
#[cfg(test)]
pub(crate) fn collect_statistics(
    base_model: &ModelSource,
    experiment: Experiment,
    setup: &ExperimentSetup,
) -> Result<ExperimentData, RcaError> {
    let base_program = rca_sim::compile_model(base_model)?;
    let ens = collect_ensemble(&base_program, setup, &mut rca_obs::PhaseProfile::new())?;
    let exp_model = base_model.apply(experiment);
    let exp_program = rca_sim::compile_model(&exp_model)?;
    let (_, exp_cfg) = experiment_configs(experiment, setup);
    evaluate_against_ensemble(&ens, &exp_program, &exp_cfg, setup)
}

impl ExperimentData {
    /// Picks the affected-output list for slicing: lasso selections first,
    /// topped up from the median-distance ranking. The paper notes the two
    /// methods "mostly coincide"; with perfectly separable classes the
    /// lasso saturates on very few variables, so the median ranking fills
    /// the rest.
    pub fn affected_outputs(&self, max_vars: usize) -> Vec<String> {
        let mut out: Vec<String> = self.lasso_selected.iter().take(max_vars).cloned().collect();
        for (name, _) in &self.median_ranking {
            if out.len() >= max_vars {
                break;
            }
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
        out
    }
}

/// Per-model-config campaign used by tests/benches to share setup.
pub fn default_model() -> ModelSource {
    rca_model::generate(&ModelConfig::test())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_defaults_scale_with_set_size() {
        let p = RetryPolicy::default();
        assert_eq!(p.control_quorum(36), 18);
        assert_eq!(p.control_quorum(24), 12);
        assert_eq!(p.control_quorum(4), 3, "floor of 3 control members");
        assert_eq!(p.control_quorum(2), 2, "floor capped at the set size");
        assert_eq!(p.experiment_quorum(12), 3, "one pyCECT run-set");
        assert_eq!(p.experiment_quorum(2), 2);
        let explicit = RetryPolicy {
            min_control_members: 5,
            min_experiment_members: 4,
            ..Default::default()
        };
        assert_eq!(explicit.control_quorum(36), 5);
        assert_eq!(explicit.experiment_quorum(12), 4);
    }

    #[test]
    fn zero_fault_statistics_report_no_degradation() {
        let model = default_model();
        let data =
            collect_statistics(&model, Experiment::Control, &ExperimentSetup::quick()).unwrap();
        assert_eq!(data.degraded, None, "healthy fills must not be flagged");
    }

    #[test]
    fn control_passes_ect() {
        let model = default_model();
        let data =
            collect_statistics(&model, Experiment::Control, &ExperimentSetup::quick()).unwrap();
        assert_eq!(data.verdict, Verdict::Pass, "control must be consistent");
        assert!(data.failure_rate < 0.5, "rate {}", data.failure_rate);
    }

    #[test]
    fn wsubbug_fails_ect_and_median_dominates() {
        let model = default_model();
        let data =
            collect_statistics(&model, Experiment::WsubBug, &ExperimentSetup::quick()).unwrap();
        assert_eq!(data.verdict, Verdict::Fail);
        // §6.1: "the distance between the experimental and ensemble
        // medians for this variable is more than 1,000 times greater than
        // for the variable ranked second."
        assert_eq!(data.median_ranking[0].0, "wsub");
        let ratio = data.median_ranking[0].1 / data.median_ranking[1].1.max(1e-300);
        assert!(ratio > 1000.0, "dominance ratio {ratio}");
    }

    #[test]
    fn goffgratch_fails_and_selects_cloud_outputs() {
        let model = default_model();
        let data =
            collect_statistics(&model, Experiment::GoffGratch, &ExperimentSetup::quick()).unwrap();
        assert_eq!(data.verdict, Verdict::Fail);
        let affected = data.affected_outputs(10);
        assert!(!affected.is_empty());
        // The selected set should overlap the paper's Table-2 outputs
        // (cloud/microphysics variables).
        let table2 = Experiment::GoffGratch.table2_outputs();
        let overlap = affected
            .iter()
            .filter(|o| table2.contains(&o.as_str()))
            .count();
        assert!(overlap >= 1, "affected {affected:?} vs table2 {table2:?}");
    }

    #[test]
    fn randmt_fails_ect() {
        let model = default_model();
        let data =
            collect_statistics(&model, Experiment::RandMt, &ExperimentSetup::quick()).unwrap();
        assert_eq!(data.verdict, Verdict::Fail);
        let affected = data.affected_outputs(5);
        // Longwave outputs must appear (flds/flns/qrl are directly
        // PRNG-driven).
        assert!(
            affected
                .iter()
                .any(|o| ["flds", "flns", "qrl", "fsds", "qrs"].contains(&o.as_str())),
            "{affected:?}"
        );
    }

    #[test]
    fn dyn3bug_selects_dynamics_outputs() {
        let model = default_model();
        let data =
            collect_statistics(&model, Experiment::Dyn3Bug, &ExperimentSetup::quick()).unwrap();
        assert_eq!(data.verdict, Verdict::Fail);
        let affected = data.affected_outputs(6);
        let dyn_outputs = ["vv", "omega", "z3", "uu", "omegat", "ps"];
        let overlap = affected
            .iter()
            .filter(|o| dyn_outputs.contains(&o.as_str()))
            .count();
        assert!(overlap >= 1, "{affected:?}");
    }
}
