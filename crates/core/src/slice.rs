//! Hybrid backward slicing on the metagraph (paper §5.1).
//!
//! "Given a set of output variables that are affected by a certain change,
//! we compute the shortest directed paths that terminate on these variables
//! with Breadth First Search. After finding these paths, we form the union
//! of the node sets of all such paths ... we induce a subgraph on CESM,
//! which yields the graph containing the causes of discrepancy."
//!
//! Slicing criteria are **canonical names** ("we do not search for paths
//! that end on CAM output `flds`, but on variables whose canonical names
//! are the internal name `flwds`"), and subgraphs are usually restricted to
//! CAM modules (§6), with Fig. 15 dropping the restriction.

use rca_graph::{bfs_multi, DiGraph, Direction, NodeId};
use rca_ident::{ModuleId, VarId};
use rca_metagraph::MetaGraph;

/// An induced suspect subgraph with its mapping back to metagraph nodes.
#[derive(Debug)]
pub struct Slice {
    /// The induced subgraph (dense ids).
    pub graph: DiGraph,
    /// `mapping[sub_id.index()]` = metagraph node id.
    pub mapping: Vec<NodeId>,
    /// The slicing criteria (metagraph node ids of the target variables).
    pub targets: Vec<NodeId>,
    /// Dense reverse map: `rev[meta.index()]` = subgraph id or `u32::MAX`
    /// — `to_sub` on the refinement hot loop is an array read.
    rev: Vec<u32>,
}

impl Slice {
    /// Assembles a slice from an induced subgraph, building the dense
    /// reverse map (`n_meta` = metagraph node count).
    fn assemble(
        graph: DiGraph,
        mapping: Vec<NodeId>,
        targets: Vec<NodeId>,
        n_meta: usize,
    ) -> Slice {
        let mut rev = vec![u32::MAX; n_meta];
        for (i, &m) in mapping.iter().enumerate() {
            rev[m.index()] = i as u32;
        }
        Slice {
            graph,
            mapping,
            targets,
            rev,
        }
    }

    /// Metagraph node id of a subgraph node.
    pub fn to_meta(&self, sub: NodeId) -> NodeId {
        self.mapping[sub.index()]
    }

    /// Subgraph node id of a metagraph node, if present (O(1) dense
    /// lookup).
    pub fn to_sub(&self, meta: NodeId) -> Option<NodeId> {
        match self.rev.get(meta.index()) {
            Some(&i) if i != u32::MAX => Some(NodeId(i)),
            _ => None,
        }
    }

    /// Nodes (metagraph ids) of the slice.
    pub fn meta_nodes(&self) -> &[NodeId] {
        &self.mapping
    }
}

/// Induces the suspect subgraph for a set of **internal** slicing criteria
/// given as interned [`VarId`]s — the id-keyed engine behind every
/// session diagnosis. `restrict` limits the slice to nodes whose
/// [`ModuleId`] satisfies the predicate (sessions pass a dense CAM-mask
/// lookup); no strings are touched.
pub fn backward_slice(
    mg: &MetaGraph,
    criteria: &[VarId],
    restrict: impl Fn(ModuleId) -> bool,
) -> Slice {
    // Slicing criteria: all nodes whose canonical name matches.
    let mut targets: Vec<NodeId> = Vec::new();
    for &var in criteria {
        targets.extend_from_slice(mg.nodes_with_var(var));
    }
    targets.sort();
    targets.dedup();

    // Union of all shortest backward paths = backward-reachable set.
    let back = bfs_multi(&mg.graph, &targets, Direction::In);
    let keep: Vec<NodeId> = back
        .reached_nodes()
        .into_iter()
        .filter(|&n| restrict(mg.meta_of(n).module))
        .collect();
    let (graph, mapping) = mg.graph.induced_subgraph(&keep);
    Slice::assemble(graph, mapping, targets, mg.node_count())
}

/// String-edge convenience over [`backward_slice`]: resolves internal
/// variable names and a module-name predicate through the graph's symbol
/// table once, then runs the id-keyed engine. For exploratory callers
/// (benches, tests); the session resolves ids up front instead.
pub fn backward_slice_names(
    mg: &MetaGraph,
    internal_names: &[String],
    restrict: impl Fn(&str) -> bool,
) -> Slice {
    let syms = mg.symbols();
    let criteria: Vec<VarId> = internal_names
        .iter()
        .filter_map(|n| syms.var_id(n))
        .collect();
    backward_slice(mg, &criteria, |m| restrict(syms.module(m)))
}

/// Re-induces a slice on a subset of its own nodes (Algorithm 5.4 steps
/// 8a/8b operate on the current subgraph `G`).
pub fn reinduce(mg: &MetaGraph, slice: &Slice, keep_meta: &[NodeId]) -> Slice {
    let (graph, mapping) = mg.graph.induced_subgraph(keep_meta);
    Slice::assemble(graph, mapping, slice.targets.clone(), mg.node_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;
    use rca_metagraph::build_metagraph;

    fn mg() -> MetaGraph {
        let src = r#"
module phys
  real :: a
  real :: b
  real :: flwds
  real :: unrelated
contains
  subroutine run(x)
    real :: x
    b = a * 2.0
    flwds = b + x
    unrelated = 7.0
  end subroutine run
end module phys
module lnd_soil
  use phys
  real :: soil
contains
  subroutine lrun()
    soil = flwds * 0.1
  end subroutine lrun
end module lnd_soil
"#;
        let (f, errs) = parse_source("t.F90", src);
        assert!(errs.is_empty(), "{errs:?}");
        build_metagraph(&[f])
    }

    #[test]
    fn slice_contains_ancestors_only() {
        let mg = mg();
        let slice = backward_slice_names(&mg, &["flwds".to_string()], |_| true);
        let names: Vec<String> = slice
            .meta_nodes()
            .iter()
            .map(|&n| mg.canonical_of(n).to_string())
            .collect();
        assert!(names.contains(&"flwds".to_string()));
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"b".to_string()));
        assert!(names.contains(&"x".to_string()));
        assert!(!names.contains(&"unrelated".to_string()));
        assert!(!names.contains(&"soil".to_string()), "downstream excluded");
    }

    #[test]
    fn restriction_drops_foreign_modules() {
        let mg = mg();
        // soil (in lnd_soil) is an ancestor of nothing here; add flwds as
        // criterion but restrict to lnd modules: only nodes in lnd_soil
        // survive — flwds itself is in phys, so the slice is empty.
        let slice = backward_slice_names(&mg, &["flwds".to_string()], |m| m.starts_with("lnd_"));
        assert!(
            slice.graph.node_count() == 0,
            "{}",
            slice.graph.node_count()
        );
    }

    #[test]
    fn slice_edges_preserved() {
        let mg = mg();
        let slice = backward_slice_names(&mg, &["flwds".to_string()], |_| true);
        // a -> b edge survives induction with renumbering.
        let find = |name: &str| {
            slice
                .meta_nodes()
                .iter()
                .position(|&n| mg.canonical_of(n) == name)
                .map(|i| NodeId(i as u32))
                .unwrap()
        };
        assert!(slice.graph.has_edge(find("a"), find("b")));
    }

    #[test]
    fn reinduce_narrows() {
        let mg = mg();
        let slice = backward_slice_names(&mg, &["flwds".to_string()], |_| true);
        let keep: Vec<NodeId> = slice
            .meta_nodes()
            .iter()
            .copied()
            .filter(|&n| mg.canonical_of(n) != "a")
            .collect();
        let smaller = reinduce(&mg, &slice, &keep);
        assert_eq!(smaller.graph.node_count(), slice.graph.node_count() - 1);
        assert_eq!(smaller.targets, slice.targets);
    }

    #[test]
    fn to_sub_round_trip() {
        let mg = mg();
        let slice = backward_slice_names(&mg, &["flwds".to_string()], |_| true);
        for sub in slice.graph.nodes() {
            let meta = slice.to_meta(sub);
            assert_eq!(slice.to_sub(meta), Some(sub));
        }
    }
}
