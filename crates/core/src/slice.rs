//! Hybrid backward slicing on the metagraph (paper §5.1).
//!
//! "Given a set of output variables that are affected by a certain change,
//! we compute the shortest directed paths that terminate on these variables
//! with Breadth First Search. After finding these paths, we form the union
//! of the node sets of all such paths ... we induce a subgraph on CESM,
//! which yields the graph containing the causes of discrepancy."
//!
//! Slicing criteria are **canonical names** ("we do not search for paths
//! that end on CAM output `flds`, but on variables whose canonical names
//! are the internal name `flwds`"), and subgraphs are usually restricted to
//! CAM modules (§6), with Fig. 15 dropping the restriction.

use rca_graph::{bfs_multi, DiGraph, Direction, NodeId};
use rca_metagraph::MetaGraph;

/// An induced suspect subgraph with its mapping back to metagraph nodes.
pub struct Slice {
    /// The induced subgraph (dense ids).
    pub graph: DiGraph,
    /// `mapping[sub_id.index()]` = metagraph node id.
    pub mapping: Vec<NodeId>,
    /// The slicing criteria (metagraph node ids of the target variables).
    pub targets: Vec<NodeId>,
}

impl Slice {
    /// Metagraph node id of a subgraph node.
    pub fn to_meta(&self, sub: NodeId) -> NodeId {
        self.mapping[sub.index()]
    }

    /// Subgraph node id of a metagraph node, if present.
    pub fn to_sub(&self, meta: NodeId) -> Option<NodeId> {
        self.mapping
            .iter()
            .position(|&m| m == meta)
            .map(|i| NodeId(i as u32))
    }

    /// Nodes (metagraph ids) of the slice.
    pub fn meta_nodes(&self) -> &[NodeId] {
        &self.mapping
    }
}

/// Induces the suspect subgraph for a set of affected **internal** variable
/// names.
///
/// `restrict` limits the slice to nodes whose module satisfies the
/// predicate (pass `|m| pipeline.is_cam(m)` for the paper's CAM
/// restriction, or `|_| true` for Fig. 15's unrestricted slice).
///
/// This is the granular building block; most callers want
/// [`crate::RcaSession::diagnose`] or the typed
/// [`crate::session::Statistics::slice`] stage, which derive the criteria
/// from the statistics and apply the session's scope.
pub fn backward_slice(
    mg: &MetaGraph,
    internal_names: &[String],
    restrict: impl Fn(&str) -> bool,
) -> Slice {
    // Slicing criteria: all nodes whose canonical name matches.
    let mut targets: Vec<NodeId> = Vec::new();
    for name in internal_names {
        targets.extend_from_slice(mg.nodes_with_canonical(name));
    }
    targets.sort();
    targets.dedup();

    // Union of all shortest backward paths = backward-reachable set.
    let back = bfs_multi(&mg.graph, &targets, Direction::In);
    let keep: Vec<NodeId> = back
        .reached_nodes()
        .into_iter()
        .filter(|&n| restrict(&mg.meta_of(n).module))
        .collect();
    let (graph, mapping) = mg.graph.induced_subgraph(&keep);
    Slice {
        graph,
        mapping,
        targets,
    }
}

/// Re-induces a slice on a subset of its own nodes (Algorithm 5.4 steps
/// 8a/8b operate on the current subgraph `G`).
pub fn reinduce(mg: &MetaGraph, slice: &Slice, keep_meta: &[NodeId]) -> Slice {
    let (graph, mapping) = mg.graph.induced_subgraph(keep_meta);
    Slice {
        graph,
        mapping,
        targets: slice.targets.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;
    use rca_metagraph::build_metagraph;

    fn mg() -> MetaGraph {
        let src = r#"
module phys
  real :: a
  real :: b
  real :: flwds
  real :: unrelated
contains
  subroutine run(x)
    real :: x
    b = a * 2.0
    flwds = b + x
    unrelated = 7.0
  end subroutine run
end module phys
module lnd_soil
  use phys
  real :: soil
contains
  subroutine lrun()
    soil = flwds * 0.1
  end subroutine lrun
end module lnd_soil
"#;
        let (f, errs) = parse_source("t.F90", src);
        assert!(errs.is_empty(), "{errs:?}");
        build_metagraph(&[f])
    }

    #[test]
    fn slice_contains_ancestors_only() {
        let mg = mg();
        let slice = backward_slice(&mg, &["flwds".to_string()], |_| true);
        let names: Vec<String> = slice
            .meta_nodes()
            .iter()
            .map(|&n| mg.meta_of(n).canonical.clone())
            .collect();
        assert!(names.contains(&"flwds".to_string()));
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"b".to_string()));
        assert!(names.contains(&"x".to_string()));
        assert!(!names.contains(&"unrelated".to_string()));
        assert!(!names.contains(&"soil".to_string()), "downstream excluded");
    }

    #[test]
    fn restriction_drops_foreign_modules() {
        let mg = mg();
        // soil (in lnd_soil) is an ancestor of nothing here; add flwds as
        // criterion but restrict to lnd modules: only nodes in lnd_soil
        // survive — flwds itself is in phys, so the slice is empty.
        let slice = backward_slice(&mg, &["flwds".to_string()], |m| m.starts_with("lnd_"));
        assert!(
            slice.graph.node_count() == 0,
            "{}",
            slice.graph.node_count()
        );
    }

    #[test]
    fn slice_edges_preserved() {
        let mg = mg();
        let slice = backward_slice(&mg, &["flwds".to_string()], |_| true);
        // a -> b edge survives induction with renumbering.
        let find = |name: &str| {
            slice
                .meta_nodes()
                .iter()
                .position(|&n| mg.meta_of(n).canonical == name)
                .map(|i| NodeId(i as u32))
                .unwrap()
        };
        assert!(slice.graph.has_edge(find("a"), find("b")));
    }

    #[test]
    fn reinduce_narrows() {
        let mg = mg();
        let slice = backward_slice(&mg, &["flwds".to_string()], |_| true);
        let keep: Vec<NodeId> = slice
            .meta_nodes()
            .iter()
            .copied()
            .filter(|&n| mg.meta_of(n).canonical != "a")
            .collect();
        let smaller = reinduce(&mg, &slice, &keep);
        assert_eq!(smaller.graph.node_count(), slice.graph.node_count() - 1);
        assert_eq!(smaller.targets, slice.targets);
    }

    #[test]
    fn to_sub_round_trip() {
        let mg = mg();
        let slice = backward_slice(&mg, &["flwds".to_string()], |_| true);
        for sub in slice.graph.nodes() {
            let meta = slice.to_meta(sub);
            assert_eq!(slice.to_sub(meta), Some(sub));
        }
    }
}
