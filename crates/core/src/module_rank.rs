//! Module-level centrality and selective AVX2 disablement (paper §6.5).
//!
//! "We compute the (in and out) centrality of the modules themselves ...
//! To calculate the centrality, we must collapse the graph of variables
//! into modules by considering the graph minor of CESM code formed by the
//! quotient graph of Fortran modules." Ranking modules by eigenvector
//! centrality and disabling AVX2 on the top 50 drops the UF-CAM-ECT
//! failure rate from 92% to 8% (Table 1); this module builds those
//! policies.

use rca_graph::{eigenvector_centrality, quotient_graph, Direction, PowerIterOptions, Quotient};
use rca_metagraph::MetaGraph;
use rca_sim::Avx2Policy;
use std::collections::HashSet;

/// The module quotient graph with its centrality ranking.
#[derive(Debug)]
pub struct ModuleRanking {
    /// Quotient (module) digraph.
    pub quotient: Quotient,
    /// Module names by class index.
    pub modules: Vec<String>,
    /// Combined (in + out) eigenvector centrality per module — §6.5
    /// computes both orientations to rank modules "by their potential to
    /// propagate FMA-caused differences".
    pub centrality: Vec<f64>,
}

impl ModuleRanking {
    /// Builds the quotient graph and ranks modules.
    pub fn build(mg: &MetaGraph) -> ModuleRanking {
        let (labels, count) = mg.module_classes();
        let quotient = quotient_graph(&mg.graph, &labels, count);
        let opts = PowerIterOptions::default();
        let cin = eigenvector_centrality(&quotient.graph, Direction::In, opts);
        let cout = eigenvector_centrality(&quotient.graph, Direction::Out, opts);
        let centrality = cin.iter().zip(&cout).map(|(a, b)| a + b).collect();
        ModuleRanking {
            quotient,
            modules: mg.modules.clone(),
            centrality,
        }
    }

    /// Module names ranked by descending centrality.
    pub fn ranked(&self) -> Vec<(&str, f64)> {
        let mut idx: Vec<usize> = (0..self.modules.len()).collect();
        idx.sort_by(|&a, &b| {
            self.centrality[b]
                .partial_cmp(&self.centrality[a])
                .unwrap()
                .then_with(|| self.modules[a].cmp(&self.modules[b]))
        });
        idx.into_iter()
            .map(|i| (self.modules[i].as_str(), self.centrality[i]))
            .collect()
    }

    /// The `k` most central module names.
    pub fn top_central(&self, k: usize) -> HashSet<String> {
        self.ranked()
            .into_iter()
            .take(k)
            .map(|(m, _)| m.to_string())
            .collect()
    }
}

/// The five Table-1 disablement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisablementPolicy {
    /// AVX2 enabled in every module.
    AllEnabled,
    /// AVX2 disabled in the `k` largest modules by lines of code.
    DisableLargest(usize),
    /// AVX2 disabled in `k` random modules (paper averages 10 samples).
    DisableRandom(usize, u64),
    /// AVX2 disabled in the `k` most central modules.
    DisableCentral(usize),
    /// AVX2 disabled everywhere (the ensemble baseline).
    AllDisabled,
}

/// Builds the per-module FMA policy for a Table-1 row.
pub fn avx2_policy(
    policy: DisablementPolicy,
    ranking: &ModuleRanking,
    loc: &[(String, usize)],
) -> Avx2Policy {
    match policy {
        DisablementPolicy::AllEnabled => Avx2Policy::AllModules,
        DisablementPolicy::AllDisabled => Avx2Policy::Disabled,
        DisablementPolicy::DisableCentral(k) => Avx2Policy::Except(ranking.top_central(k)),
        DisablementPolicy::DisableLargest(k) => {
            let mut by_loc: Vec<&(String, usize)> = loc.iter().collect();
            by_loc.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            Avx2Policy::Except(by_loc.into_iter().take(k).map(|(m, _)| m.clone()).collect())
        }
        DisablementPolicy::DisableRandom(k, seed) => {
            // Deterministic sample without replacement.
            let mut names: Vec<String> = loc.iter().map(|(m, _)| m.clone()).collect();
            names.sort();
            let mut state = seed | 1;
            let mut picked = HashSet::new();
            while picked.len() < k.min(names.len()) {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let i = (state.wrapping_mul(0x2545F4914F6CDD1D) % names.len() as u64) as usize;
                picked.insert(names[i].clone());
            }
            Avx2Policy::Except(picked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RcaPipeline;
    use rca_model::{generate, ModelConfig};

    fn ranking() -> (ModuleRanking, Vec<(String, usize)>) {
        let model = generate(&ModelConfig::test());
        let p = RcaPipeline::build(&model).unwrap();
        (ModuleRanking::build(&p.metagraph), model.loc_per_module())
    }

    #[test]
    fn quotient_is_module_sized() {
        let (r, loc) = ranking();
        assert_eq!(r.quotient.graph.node_count(), r.modules.len());
        assert!(r.modules.len() <= loc.len() + 2);
        assert!(r.quotient.graph.edge_count() > r.modules.len() / 2);
    }

    #[test]
    fn core_modules_rank_above_fillers() {
        let (r, _) = ranking();
        let ranked = r.ranked();
        let pos = |name: &str| ranked.iter().position(|(m, _)| *m == name).unwrap();
        // camstate (the state hub) and micro_mg must be in the top third.
        let third = ranked.len() / 3;
        assert!(pos("camstate") < third, "camstate rank {}", pos("camstate"));
        assert!(
            pos("micro_mg") < ranked.len() / 2,
            "micro_mg rank {}",
            pos("micro_mg")
        );
    }

    #[test]
    fn top_central_policy_disables_core() {
        let (r, loc) = ranking();
        let p = avx2_policy(DisablementPolicy::DisableCentral(8), &r, &loc);
        let Avx2Policy::Except(set) = &p else {
            panic!()
        };
        assert_eq!(set.len(), 8);
        assert!(!p.enabled_for("camstate") || !p.enabled_for("micro_mg"));
        assert!(p.enabled_for("this_module_does_not_exist"));
    }

    #[test]
    fn largest_policy_prefers_big_fillers() {
        let (r, loc) = ranking();
        let p = avx2_policy(DisablementPolicy::DisableLargest(5), &r, &loc);
        let Avx2Policy::Except(set) = &p else {
            panic!()
        };
        assert_eq!(set.len(), 5);
        // The driver (hundreds of use/call lines) plus large fillers
        // dominate LoC; micro_mg is an anchor but the giant fillers exist
        // at paper scale. Here we just assert determinism and size.
        let p2 = avx2_policy(DisablementPolicy::DisableLargest(5), &r, &loc);
        let Avx2Policy::Except(set2) = &p2 else {
            panic!()
        };
        assert_eq!(set, set2);
    }

    #[test]
    fn random_policy_deterministic_per_seed() {
        let (r, loc) = ranking();
        let a = avx2_policy(DisablementPolicy::DisableRandom(6, 1), &r, &loc);
        let b = avx2_policy(DisablementPolicy::DisableRandom(6, 1), &r, &loc);
        let c = avx2_policy(DisablementPolicy::DisableRandom(6, 2), &r, &loc);
        let (Avx2Policy::Except(sa), Avx2Policy::Except(sb), Avx2Policy::Except(sc)) = (&a, &b, &c)
        else {
            panic!()
        };
        assert_eq!(sa, sb);
        assert_ne!(sa, sc, "different seeds sample different modules");
    }

    #[test]
    fn extreme_policies() {
        let (r, loc) = ranking();
        let all = avx2_policy(DisablementPolicy::AllEnabled, &r, &loc);
        let none = avx2_policy(DisablementPolicy::AllDisabled, &r, &loc);
        assert!(all.enabled_for("micro_mg"));
        assert!(!none.enabled_for("micro_mg"));
    }
}
