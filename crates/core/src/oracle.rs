//! Sampling oracles: does an instrumented variable differ between the
//! ensemble and the experiment?
//!
//! The paper performs its sampling "currently in simulation" (§2.1): with
//! known bug locations, "we can deduce whether a difference can be
//! detected" from directed-path reachability (§5.2). That simulation is
//! [`ReachabilityOracle`]. [`RuntimeSampler`] is the real thing the paper
//! leaves as future work: it instruments the chosen variables in the
//! running interpreter and compares values between a control run and an
//! experimental run.
//!
//! # The `Oracle` contract
//!
//! [`Oracle`] is the single object-safe evidence interface of Algorithm
//! 5.4: [`crate::refine()`] (and the [`crate::RcaSession`] facade) accept
//! `&mut dyn Oracle`, so evidence sources are swappable — simulated
//! reachability, real instrumented runs, or anything a caller implements
//! (cached verdicts, a remote sampling service, ...). Implementations
//! must uphold:
//!
//! - `differs` returns exactly one boolean per queried node, in order.
//! - Queries are **monotone in evidence, not stateful in effect**: the
//!   refinement loop may query the same node in different iterations and
//!   expects consistent answers for an unchanged experiment.
//! - A node the oracle cannot instrument (intrinsics, removed code) must
//!   answer `false`, not panic — the paper's §5.4 issue 3: the oracle, not
//!   the graph, is authoritative about detection.
//! - Failures of the underlying evidence machinery should be recorded and
//!   surfaced via [`Oracle::take_errors`]; sampling proceeds best-effort.
//!
//! **Picking an oracle:** use [`ReachabilityOracle`] when ground-truth bug
//! sites are known (method evaluation, regression harnesses) — it is
//! O(paths) fast and deterministic. Use [`RuntimeSampler`] when the bug is
//! genuinely unknown: it pays two interpreter runs per refinement
//! iteration but measures the real model.

use rca_graph::{reaches_any, NodeId};
use rca_metagraph::{MetaGraph, NodeKind};
use rca_model::ModelSource;
use rca_sim::{compile_model, Executor, Program, RunConfig, RuntimeError, SampleSpec};
use std::sync::Arc;

/// Decides which sampled nodes take different values between ensemble and
/// experimental runs (Algorithm 5.4 step 7). See the module docs for the
/// full contract.
pub trait Oracle {
    /// Short stable identifier for reports ("reachability", "runtime").
    fn name(&self) -> &'static str {
        "oracle"
    }

    /// For each metagraph node, whether instrumentation would observe a
    /// difference.
    fn differs(&mut self, mg: &MetaGraph, nodes: &[NodeId]) -> Vec<bool>;

    /// Drains runtime failures encountered while sampling (best-effort
    /// oracles answer `false` for nodes they failed to instrument and
    /// report the cause here).
    fn take_errors(&mut self) -> Vec<RuntimeError> {
        Vec::new()
    }
}

/// The paper's simulated sampling: a difference is detectable at node `n`
/// iff a directed path exists from some bug source to `n`.
#[derive(Debug)]
pub struct ReachabilityOracle {
    /// Metagraph ids of the ground-truth bug locations.
    pub bug_nodes: Vec<NodeId>,
}

impl ReachabilityOracle {
    /// Builds the oracle from ground-truth bug sites.
    pub fn from_sites(mg: &MetaGraph, sites: &[rca_model::BugSite]) -> ReachabilityOracle {
        let mut bug_nodes = Vec::new();
        for site in sites {
            if let Some(n) = mg.node_by_key(&site.module, Some(&site.subprogram), &site.canonical) {
                bug_nodes.push(n);
            }
            // Module-level variables are also legal bug hosts.
            if let Some(n) = mg.node_by_key(&site.module, None, &site.canonical) {
                bug_nodes.push(n);
            }
        }
        bug_nodes.sort();
        bug_nodes.dedup();
        ReachabilityOracle { bug_nodes }
    }
}

impl Oracle for ReachabilityOracle {
    fn name(&self) -> &'static str {
        "reachability"
    }

    fn differs(&mut self, mg: &MetaGraph, nodes: &[NodeId]) -> Vec<bool> {
        nodes
            .iter()
            .map(|&n| {
                self.bug_nodes
                    .iter()
                    .any(|&b| reaches_any(&mg.graph, b, &[n]))
            })
            .collect()
    }
}

/// Real runtime sampling: run control and experimental models with the
/// node set instrumented and compare values.
///
/// Both models are **compiled once** at construction, and the sampler
/// holds one **pooled executor pair**: the first `differs` query builds
/// the executors, every later query resets them in place
/// ([`Executor::reset_with`] — arena restored by in-place copy, frames
/// pooled, PRNG reseeded) with the fresh instrumentation list. A query
/// thus pays two executions and materializes nothing: sample buffers are
/// compared positionally straight off the executor state (views, not
/// owned `RunOutput`s). Refinement loops issue one query per iteration,
/// so this is the oracle's hot path.
#[derive(Debug)]
pub struct RuntimeSampler {
    /// Compiled control/experimental programs (or the compile failure,
    /// re-reported per query — sampling proceeds best-effort).
    programs: Result<(Arc<Program>, Arc<Program>), RuntimeError>,
    /// Pooled (control, experimental) executors, built on first query and
    /// reset-with-reused on every later one.
    execs: Option<(Executor, Executor)>,
    /// Control run configuration.
    pub control_config: RunConfig,
    /// Experimental run configuration (PRNG/AVX2 changes live here).
    pub experiment_config: RunConfig,
    /// Time step at which values are captured (the paper samples as early
    /// as possible; default: the final step).
    pub sample_step: u32,
    /// Relative tolerance above which values are "different".
    pub tolerance: f64,
    /// Runtime failures encountered (sampling proceeds best-effort).
    pub errors: Vec<RuntimeError>,
}

impl RuntimeSampler {
    /// Creates a sampler with the given models/configs, sampling at the
    /// last step with 1e-12 relative tolerance. The models are compiled
    /// here, once.
    pub fn new(
        control_model: ModelSource,
        experiment_model: ModelSource,
        control_config: RunConfig,
        experiment_config: RunConfig,
    ) -> RuntimeSampler {
        let programs = compile_model(&control_model)
            .and_then(|c| compile_model(&experiment_model).map(|e| (c, e)));
        Self::from_parts(programs, control_config, experiment_config)
    }

    /// Creates a sampler over pre-compiled programs (e.g. from a session's
    /// program cache) — no parsing or compilation at all.
    pub fn from_programs(
        control: Arc<Program>,
        experiment: Arc<Program>,
        control_config: RunConfig,
        experiment_config: RunConfig,
    ) -> RuntimeSampler {
        Self::from_parts(Ok((control, experiment)), control_config, experiment_config)
    }

    fn from_parts(
        programs: Result<(Arc<Program>, Arc<Program>), RuntimeError>,
        control_config: RunConfig,
        experiment_config: RunConfig,
    ) -> RuntimeSampler {
        let sample_step = control_config.steps.saturating_sub(1);
        RuntimeSampler {
            programs,
            execs: None,
            control_config,
            experiment_config,
            sample_step,
            tolerance: 1e-12,
            errors: Vec::new(),
        }
    }

    fn spec_for(mg: &MetaGraph, node: NodeId) -> Option<SampleSpec> {
        let meta = mg.meta_of(node);
        if meta.kind != NodeKind::Variable {
            return None; // localized intrinsic call sites are not variables
        }
        // Interned names: building a spec is three refcount bumps, no
        // string copies, no hashing.
        let syms = mg.symbols();
        Some(SampleSpec {
            module: syms.module_arc(meta.module),
            subprogram: meta.subprogram.map(|s| syms.var_arc(s)),
            name: syms.var_arc(meta.canonical),
        })
    }
}

impl Oracle for RuntimeSampler {
    fn name(&self) -> &'static str {
        "runtime"
    }

    fn take_errors(&mut self) -> Vec<RuntimeError> {
        std::mem::take(&mut self.errors)
    }

    fn differs(&mut self, mg: &MetaGraph, nodes: &[NodeId]) -> Vec<bool> {
        let (ctl_program, exp_program) = match &self.programs {
            Ok((c, e)) => (Arc::clone(c), Arc::clone(e)),
            Err(e) => {
                self.errors.push(e.clone());
                return vec![false; nodes.len()];
            }
        };
        let specs: Vec<Option<SampleSpec>> = nodes.iter().map(|&n| Self::spec_for(mg, n)).collect();
        let live: Vec<SampleSpec> = specs.iter().flatten().cloned().collect();

        let mut ctl = self.control_config.clone();
        ctl.sample_step = Some(self.sample_step);
        ctl.samples = live.clone();
        let mut exp = self.experiment_config.clone();
        exp.sample_step = Some(self.sample_step);
        exp.samples = live;

        // Lease the pooled executor pair: built once, reset in place with
        // this query's instrumentation list on every later query.
        match &mut self.execs {
            Some((c, e)) => {
                c.reset_with(&ctl);
                e.reset_with(&exp);
            }
            slot @ None => {
                *slot = Some((
                    Executor::new(ctl_program, &ctl),
                    Executor::new(exp_program, &exp),
                ));
            }
        }
        let (ctl_ex, exp_ex) = self.execs.as_mut().expect("executors just leased");
        if let Err(e) = ctl_ex.drive(0.0) {
            self.errors.push(e);
            return vec![false; nodes.len()];
        }
        if let Err(e) = exp_ex.drive(0.0) {
            self.errors.push(e);
            return vec![false; nodes.len()];
        }

        // Captures are positional over the instrumented spec list: the
        // i-th live spec is the i-th sample buffer in both runs — the
        // per-iteration comparison reads the executor state in place,
        // hashes nothing, and allocates no keys.
        let tolerance = self.tolerance;
        let mut live_idx = 0usize;
        specs
            .iter()
            .map(|spec| {
                if spec.is_none() {
                    return false;
                }
                let i = live_idx;
                live_idx += 1;
                let (Some(a), Some(b)) = (ctl_ex.samples[i].as_ref(), exp_ex.samples[i].as_ref())
                else {
                    return false;
                };
                if a.len() != b.len() {
                    return true;
                }
                a.iter().zip(b).any(|(&x, &y)| {
                    let scale = x.abs().max(y.abs()).max(1e-300);
                    ((x - y).abs() / scale) > tolerance
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_model::{generate, Experiment, ModelConfig};
    use rca_sim::Avx2Policy;

    fn pipeline() -> (ModelSource, MetaGraph) {
        let model = generate(&ModelConfig::test());
        let p = crate::pipeline::RcaPipeline::build(&model).unwrap();
        (model, p.metagraph)
    }

    #[test]
    fn reachability_oracle_respects_direction() {
        let (_, mg) = pipeline();
        let sites = Experiment::GoffGratch.bug_sites();
        let mut oracle = ReachabilityOracle::from_sites(&mg, &sites);
        assert!(!oracle.bug_nodes.is_empty());
        // cld (downstream of qsat) must be detectable; the bug's own
        // upstream (tboil) must not.
        let cld = mg.nodes_with_canonical("cld")[0];
        let tboil = mg.nodes_with_canonical("tboil")[0];
        let r = oracle.differs(&mg, &[cld, tboil]);
        assert_eq!(r, vec![true, false]);
    }

    #[test]
    fn runtime_sampler_detects_goffgratch_downstream() {
        let (model, mg) = pipeline();
        let bugged = model.apply(Experiment::GoffGratch);
        let cfg = RunConfig {
            steps: 3,
            ..Default::default()
        };
        let mut sampler = RuntimeSampler::new(model.clone(), bugged, cfg.clone(), cfg.clone());
        let cld = mg.nodes_with_canonical("cld")[0];
        let wsub = mg.nodes_with_canonical("wsub")[0];
        let r = sampler.differs(&mg, &[cld, wsub]);
        assert!(sampler.errors.is_empty(), "{:?}", sampler.errors);
        assert_eq!(
            r,
            vec![true, false],
            "cld is downstream of qsat; wsub is isolated"
        );
    }

    #[test]
    fn runtime_sampler_agrees_with_reachability_on_wsubbug() {
        let (model, mg) = pipeline();
        let bugged = model.apply(Experiment::WsubBug);
        let cfg = RunConfig {
            steps: 3,
            ..Default::default()
        };
        let mut runtime = RuntimeSampler::new(model.clone(), bugged, cfg.clone(), cfg.clone());
        let mut reach = ReachabilityOracle::from_sites(&mg, &Experiment::WsubBug.bug_sites());
        let wsub = mg.nodes_with_canonical("wsub")[0];
        let flwds = mg.nodes_with_canonical("flwds")[0];
        let nodes = [wsub, flwds];
        assert_eq!(
            runtime.differs(&mg, &nodes),
            reach.differs(&mg, &nodes),
            "the two oracles must agree on the isolated wsub bug"
        );
    }

    #[test]
    fn runtime_sampler_detects_avx2_in_kernel() {
        let (model, mg) = pipeline();
        let ctl = RunConfig {
            steps: 3,
            ..Default::default()
        };
        let exp = RunConfig {
            steps: 3,
            avx2: Avx2Policy::AllModules,
            ..Default::default()
        };
        let mut sampler = RuntimeSampler::new(model.clone(), model.clone(), ctl, exp);
        sampler.tolerance = 1e-16;
        let tlat = mg.node_by_key("micro_mg", None, "tlat").unwrap();
        let r = sampler.differs(&mg, &[tlat]);
        assert_eq!(r, vec![true], "FMA must perturb MG tendencies");
    }

    #[test]
    fn intrinsic_nodes_are_never_sampled() {
        let (model, mg) = pipeline();
        let cfg = RunConfig {
            steps: 2,
            ..Default::default()
        };
        let mut sampler = RuntimeSampler::new(
            model.clone(),
            model.apply(Experiment::GoffGratch),
            cfg.clone(),
            cfg,
        );
        let intrinsic = mg
            .meta
            .iter()
            .position(|m| m.kind == NodeKind::Intrinsic)
            .map(|i| NodeId(i as u32))
            .expect("model has intrinsic nodes");
        let r = sampler.differs(&mg, &[intrinsic]);
        assert_eq!(r, vec![false]);
    }
}
