//! Sampling oracles: does an instrumented variable differ between the
//! ensemble and the experiment?
//!
//! The paper performs its sampling "currently in simulation" (§2.1): with
//! known bug locations, "we can deduce whether a difference can be
//! detected" from directed-path reachability (§5.2). That simulation is
//! [`ReachabilityOracle`]. [`RuntimeSampler`] is the real thing the paper
//! leaves as future work: it instruments the chosen variables in the
//! running interpreter and compares values between a control run and an
//! experimental run.
//!
//! # The `Oracle` contract
//!
//! [`Oracle`] is the single object-safe evidence interface of Algorithm
//! 5.4: [`crate::refine()`] (and the [`crate::RcaSession`] facade) accept
//! `&mut dyn Oracle`, so evidence sources are swappable — simulated
//! reachability, real instrumented runs, or anything a caller implements
//! (cached verdicts, a remote sampling service, ...). Implementations
//! must uphold:
//!
//! - `differs` returns exactly one boolean per queried node, in order.
//! - Queries are **monotone in evidence, not stateful in effect**: the
//!   refinement loop may query the same node in different iterations and
//!   expects consistent answers for an unchanged experiment.
//! - A node the oracle cannot instrument (intrinsics, removed code) must
//!   answer `false`, not panic — the paper's §5.4 issue 3: the oracle, not
//!   the graph, is authoritative about detection.
//! - Failures of the underlying evidence machinery should be recorded and
//!   surfaced via [`Oracle::take_errors`]; sampling proceeds best-effort.
//!
//! **Picking an oracle:** use [`ReachabilityOracle`] when ground-truth bug
//! sites are known (method evaluation, regression harnesses) — it is
//! O(paths) fast and deterministic. Use [`RuntimeSampler`] when the bug is
//! genuinely unknown: it pays two instrumented runs per refinement
//! iteration but measures the real model.
//!
//! # The runtime-sampler fast path
//!
//! [`RuntimeSampler`] answers most queries far below the cost of two full
//! model executions, through three stacked mechanisms behind the
//! unchanged [`Oracle`] surface (see the workspace `rca` crate docs for
//! the architecture picture):
//!
//! 1. **slice-specialized programs** — [`rca_sim::specialize_for_samples`]
//!    prunes each compiled program down to the backward slice of the
//!    query's capture set; the pruned bytecode runs on the stock VM and
//!    is cached per spec-set key (the sampler holds exactly one
//!    program pair, so the program content hash is implicit in the
//!    cache's identity);
//! 2. **per-node memoization** — configs and programs are fixed for the
//!    sampler's lifetime and runs are deterministic, so each node's
//!    verdict is computed once and replayed across refinement
//!    iterations; a query executes only for cache-miss nodes;
//! 3. **early exit** — specialized runs truncate at
//!    [`RuntimeSampler::sample_step`] (captures snapshot right after
//!    that step's `cam_run_step`), skipping the trailing steps the
//!    query never observes.
//!
//! **Fast paths never change evidence**: specialized answers are
//! bit-identical to full-program answers (the closed-set slice contract
//! of [`rca_sim::specialize`]), and any specialized-run failure is
//! discarded, the sampler permanently poisoned, and the query re-run
//! through the generic full-program path — which owns all error
//! semantics, mirroring the bytecode tier's kernel-fallback rule. The
//! escape hatch (`RcaSessionBuilder::oracle_fastpath(false)`,
//! `rca-campaign --oracle-fastpath off`) disables all three mechanisms;
//! a fixed-seed campaign scorecard is byte-identical either way (CI
//! gate). Mutating [`RuntimeSampler::tolerance`] or
//! [`RuntimeSampler::sample_step`] after queries ran invalidates the
//! memo — call [`RuntimeSampler::clear_memo`].

use rca_graph::{bfs_multi, BfsResult, Direction, NodeId};
use rca_metagraph::{MetaGraph, NodeKind};
use rca_model::ModelSource;
use rca_sim::{
    compile_model, specialize_with, Executor, Program, RunConfig, RuntimeError, SampleSpec,
    SpecIndex,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A compiled (control, experimental) program pair.
type ProgramPair = (Arc<Program>, Arc<Program>);

/// Decides which sampled nodes take different values between ensemble and
/// experimental runs (Algorithm 5.4 step 7). See the module docs for the
/// full contract.
pub trait Oracle {
    /// Short stable identifier for reports ("reachability", "runtime").
    fn name(&self) -> &'static str {
        "oracle"
    }

    /// For each metagraph node, whether instrumentation would observe a
    /// difference.
    fn differs(&mut self, mg: &MetaGraph, nodes: &[NodeId]) -> Vec<bool>;

    /// Drains runtime failures encountered while sampling (best-effort
    /// oracles answer `false` for nodes they failed to instrument and
    /// report the cause here).
    fn take_errors(&mut self) -> Vec<RuntimeError> {
        Vec::new()
    }
}

/// The paper's simulated sampling: a difference is detectable at node `n`
/// iff a directed path exists from some bug source to `n`.
///
/// One multi-source forward BFS from the bug nodes is computed lazily on
/// the first query and reused for every later one: membership in the
/// reached mask answers each node in O(1) instead of a fresh traversal
/// per (bug, node) pair.
#[derive(Debug)]
pub struct ReachabilityOracle {
    /// Metagraph ids of the ground-truth bug locations.
    pub bug_nodes: Vec<NodeId>,
    /// Forward-reachable mask from `bug_nodes` (sources included, exactly
    /// as per-pair `reaches_any` treats a node reaching itself); rebuilt
    /// if queried against a graph of a different size.
    reached: Option<BfsResult>,
}

impl ReachabilityOracle {
    /// An oracle answering reachability from the given ground-truth
    /// metagraph nodes.
    pub fn new(bug_nodes: Vec<NodeId>) -> ReachabilityOracle {
        ReachabilityOracle {
            bug_nodes,
            reached: None,
        }
    }

    /// Builds the oracle from ground-truth bug sites.
    pub fn from_sites(mg: &MetaGraph, sites: &[rca_model::BugSite]) -> ReachabilityOracle {
        let mut bug_nodes = Vec::new();
        for site in sites {
            if let Some(n) = mg.node_by_key(&site.module, Some(&site.subprogram), &site.canonical) {
                bug_nodes.push(n);
            }
            // Module-level variables are also legal bug hosts.
            if let Some(n) = mg.node_by_key(&site.module, None, &site.canonical) {
                bug_nodes.push(n);
            }
        }
        bug_nodes.sort();
        bug_nodes.dedup();
        ReachabilityOracle::new(bug_nodes)
    }
}

impl Oracle for ReachabilityOracle {
    fn name(&self) -> &'static str {
        "reachability"
    }

    fn differs(&mut self, mg: &MetaGraph, nodes: &[NodeId]) -> Vec<bool> {
        let stale = self
            .reached
            .as_ref()
            .is_none_or(|m| m.dist.len() != mg.graph.node_count());
        if stale {
            self.reached = Some(bfs_multi(&mg.graph, &self.bug_nodes, Direction::Out));
        }
        let mask = self.reached.as_ref().expect("mask just built");
        nodes.iter().map(|&n| mask.reached(n)).collect()
    }
}

/// Real runtime sampling: run control and experimental models with the
/// node set instrumented and compare values.
///
/// Both models are **compiled once** at construction, and the sampler
/// holds one **pooled executor pair** for the generic path: the first
/// full-program query builds the executors, every later one resets them
/// in place ([`Executor::reset_with`] — arena restored by in-place copy,
/// frames pooled, PRNG reseeded) with the fresh instrumentation list.
/// Sample buffers are compared positionally straight off the executor
/// state (views, not owned `RunOutput`s).
///
/// With [`RuntimeSampler::fastpath`] on (the default), a query first
/// consults the per-node memo, then runs only the cache-miss nodes
/// through a slice-specialized program pair truncated at the sample step
/// — see the module docs. The generic path remains the sole owner of
/// error semantics: compile failures, unseparable spec sets, and any
/// specialized-run failure all route through it.
#[derive(Debug)]
pub struct RuntimeSampler {
    /// Compiled control/experimental programs (or the compile failure,
    /// re-reported per query — sampling proceeds best-effort).
    programs: Result<(Arc<Program>, Arc<Program>), RuntimeError>,
    /// Pooled (control, experimental) executors, built on first query and
    /// reset-with-reused on every later one.
    execs: Option<(Executor, Executor)>,
    /// Control run configuration.
    pub control_config: RunConfig,
    /// Experimental run configuration (PRNG/AVX2 changes live here).
    pub experiment_config: RunConfig,
    /// Time step at which values are captured (the paper samples as early
    /// as possible; default: the final step).
    pub sample_step: u32,
    /// Relative tolerance above which values are "different".
    pub tolerance: f64,
    /// Runtime failures encountered (sampling proceeds best-effort).
    pub errors: Vec<RuntimeError>,
    /// Enables the specialize + memoize + early-exit fast path (default
    /// `true`). Off, every query is two full pooled executions — the
    /// pre-fastpath behavior, bit for bit.
    pub fastpath: bool,
    /// Program-dependent specialization state (effect summaries, call
    /// graph), built once on the first cache-miss query and reused for
    /// every spec set after that.
    spec_index: Option<(SpecIndex, SpecIndex)>,
    /// Specialized (control, experimental) program pair per spec-set key;
    /// `None` records a set the specializer proved unseparable, so those
    /// queries go straight to the generic path.
    spec_cache: HashMap<String, Option<ProgramPair>>,
    /// Per-node verdicts from clean runs (configs are fixed and runs
    /// deterministic, so a verdict never goes stale).
    node_memo: HashMap<NodeId, bool>,
    /// Set when a specialized run ever failed: the fast path stands down
    /// permanently and the generic path owns everything from then on.
    poisoned: bool,
}

impl RuntimeSampler {
    /// Creates a sampler with the given models/configs, sampling at the
    /// last step with 1e-12 relative tolerance. The models are compiled
    /// here, once.
    pub fn new(
        control_model: ModelSource,
        experiment_model: ModelSource,
        control_config: RunConfig,
        experiment_config: RunConfig,
    ) -> RuntimeSampler {
        let programs = compile_model(&control_model)
            .and_then(|c| compile_model(&experiment_model).map(|e| (c, e)));
        Self::from_parts(programs, control_config, experiment_config)
    }

    /// Creates a sampler over pre-compiled programs (e.g. from a session's
    /// program cache) — no parsing or compilation at all.
    pub fn from_programs(
        control: Arc<Program>,
        experiment: Arc<Program>,
        control_config: RunConfig,
        experiment_config: RunConfig,
    ) -> RuntimeSampler {
        Self::from_parts(Ok((control, experiment)), control_config, experiment_config)
    }

    fn from_parts(
        programs: Result<(Arc<Program>, Arc<Program>), RuntimeError>,
        control_config: RunConfig,
        experiment_config: RunConfig,
    ) -> RuntimeSampler {
        let sample_step = control_config.steps.saturating_sub(1);
        RuntimeSampler {
            programs,
            execs: None,
            control_config,
            experiment_config,
            sample_step,
            tolerance: 1e-12,
            errors: Vec::new(),
            fastpath: true,
            spec_index: None,
            spec_cache: HashMap::new(),
            node_memo: HashMap::new(),
            poisoned: false,
        }
    }

    /// Forgets all memoized per-node verdicts and specialized programs.
    /// Call after mutating [`RuntimeSampler::tolerance`] or
    /// [`RuntimeSampler::sample_step`] once queries have run (benchmarks
    /// re-measuring cold queries want this too). The program-dependent
    /// [`SpecIndex`] survives — the programs themselves cannot change.
    pub fn clear_memo(&mut self) {
        self.spec_cache.clear();
        self.node_memo.clear();
    }

    fn spec_for(mg: &MetaGraph, node: NodeId) -> Option<SampleSpec> {
        let meta = mg.meta_of(node);
        if meta.kind != NodeKind::Variable {
            return None; // localized intrinsic call sites are not variables
        }
        // Interned names: building a spec is three refcount bumps, no
        // string copies, no hashing.
        let syms = mg.symbols();
        Some(SampleSpec {
            module: syms.module_arc(meta.module),
            subprogram: meta.subprogram.map(|s| syms.var_arc(s)),
            name: syms.var_arc(meta.canonical),
        })
    }

    /// Positional verdict for one spec's capture pair (the paper's
    /// relative-tolerance comparison; missing buffers answer `false`,
    /// shape changes answer `true`).
    fn capture_differs(tolerance: f64, a: Option<&Vec<f64>>, b: Option<&Vec<f64>>) -> bool {
        let (Some(a), Some(b)) = (a, b) else {
            return false;
        };
        if a.len() != b.len() {
            return true;
        }
        a.iter().zip(b).any(|(&x, &y)| {
            let scale = x.abs().max(y.abs()).max(1e-300);
            ((x - y).abs() / scale) > tolerance
        })
    }

    /// The generic full-program query path — sole owner of all error
    /// semantics (compile failures and run failures are recorded here and
    /// answered `false`, exactly the pre-fastpath behavior). Returns the
    /// per-node answers and whether the query completed cleanly (clean
    /// answers are safe to memoize: configs are fixed and runs
    /// deterministic, so a rerun would reproduce them).
    fn differs_full(&mut self, mg: &MetaGraph, nodes: &[NodeId]) -> (Vec<bool>, bool) {
        let (ctl_program, exp_program) = match &self.programs {
            Ok((c, e)) => (Arc::clone(c), Arc::clone(e)),
            Err(e) => {
                self.errors.push(e.clone());
                return (vec![false; nodes.len()], false);
            }
        };
        let specs: Vec<Option<SampleSpec>> = nodes.iter().map(|&n| Self::spec_for(mg, n)).collect();
        let live: Vec<SampleSpec> = specs.iter().flatten().cloned().collect();

        let mut ctl = self.control_config.clone();
        ctl.sample_step = Some(self.sample_step);
        ctl.samples = live.clone();
        let mut exp = self.experiment_config.clone();
        exp.sample_step = Some(self.sample_step);
        exp.samples = live;

        // Lease the pooled executor pair: built once, reset in place with
        // this query's instrumentation list on every later query.
        match &mut self.execs {
            Some((c, e)) => {
                c.reset_with(&ctl);
                e.reset_with(&exp);
            }
            slot @ None => {
                *slot = Some((
                    Executor::new(ctl_program, &ctl),
                    Executor::new(exp_program, &exp),
                ));
            }
        }
        let (ctl_ex, exp_ex) = self.execs.as_mut().expect("executors just leased");
        if let Err(e) = ctl_ex.drive(0.0) {
            self.errors.push(e);
            return (vec![false; nodes.len()], false);
        }
        if let Err(e) = exp_ex.drive(0.0) {
            self.errors.push(e);
            return (vec![false; nodes.len()], false);
        }

        // Captures are positional over the instrumented spec list: the
        // i-th live spec is the i-th sample buffer in both runs — the
        // per-iteration comparison reads the executor state in place,
        // hashes nothing, and allocates no keys.
        let tolerance = self.tolerance;
        let mut live_idx = 0usize;
        let answers = specs
            .iter()
            .map(|spec| {
                if spec.is_none() {
                    return false;
                }
                let i = live_idx;
                live_idx += 1;
                Self::capture_differs(
                    tolerance,
                    ctl_ex.samples[i].as_ref(),
                    exp_ex.samples[i].as_ref(),
                )
            })
            .collect();
        (answers, true)
    }

    /// Reads a fully-memoized answer vector (unsampleable nodes answer
    /// `false`, like the generic path).
    fn assemble(&self, nodes: &[NodeId], specs: &[Option<SampleSpec>]) -> Vec<bool> {
        nodes
            .iter()
            .zip(specs)
            .map(|(&n, s)| s.is_some() && self.node_memo.get(&n).copied().unwrap_or(false))
            .collect()
    }

    /// Stores clean per-node verdicts for replay in later iterations.
    fn memoize(&mut self, nodes: &[NodeId], specs: &[Option<SampleSpec>], answers: &[bool]) {
        for ((&n, s), &a) in nodes.iter().zip(specs).zip(answers) {
            if s.is_some() {
                self.node_memo.insert(n, a);
            }
        }
    }
}

impl Oracle for RuntimeSampler {
    fn name(&self) -> &'static str {
        "runtime"
    }

    fn take_errors(&mut self) -> Vec<RuntimeError> {
        std::mem::take(&mut self.errors)
    }

    fn differs(&mut self, mg: &MetaGraph, nodes: &[NodeId]) -> Vec<bool> {
        if !self.fastpath || self.poisoned || self.programs.is_err() {
            return self.differs_full(mg, nodes).0;
        }
        let specs: Vec<Option<SampleSpec>> = nodes.iter().map(|&n| Self::spec_for(mg, n)).collect();

        // Split memo hits from misses; only misses execute.
        let mut miss_nodes: Vec<NodeId> = Vec::new();
        let mut miss_specs: Vec<SampleSpec> = Vec::new();
        for (&n, spec) in nodes.iter().zip(&specs) {
            if let Some(sp) = spec {
                if !self.node_memo.contains_key(&n) && !miss_nodes.contains(&n) {
                    miss_nodes.push(n);
                    miss_specs.push(sp.clone());
                }
            }
        }
        if miss_nodes.is_empty() {
            rca_obs::counter_inc!("oracle.memo_answers", nodes.len() as u64);
            return self.assemble(nodes, &specs);
        }

        // Specialized program pair for this miss set, from the spec-set
        // cache (the sampler's program pair is fixed, so the program
        // content hash is implicit in the cache identity).
        let (ctl_program, exp_program) = match &self.programs {
            Ok((c, e)) => (Arc::clone(c), Arc::clone(e)),
            Err(_) => unreachable!("checked above"),
        };
        let mut key = String::new();
        for s in &miss_specs {
            key.push_str(&s.key());
            key.push('\n');
        }
        let pair = match self.spec_cache.get(&key) {
            Some(pair) => pair.clone(),
            None => {
                let (ctl_ix, exp_ix) = self.spec_index.get_or_insert_with(|| {
                    (
                        SpecIndex::build(&ctl_program),
                        SpecIndex::build(&exp_program),
                    )
                });
                let pair = (|| {
                    let c = specialize_with(ctl_ix, &ctl_program, &miss_specs)?;
                    let e = specialize_with(exp_ix, &exp_program, &miss_specs)?;
                    Some((c.program, e.program))
                })();
                self.spec_cache.insert(key, pair.clone());
                pair
            }
        };
        let Some((ctl_sp, exp_sp)) = pair else {
            // Unseparable spec set: the generic path answers the query.
            rca_obs::counter_inc!("oracle.fastpath_fallbacks", 1);
            let (answers, clean) = self.differs_full(mg, nodes);
            if clean {
                self.memoize(nodes, &specs, &answers);
            }
            return answers;
        };

        // Early exit: `drive` captures right after `cam_run_step` at the
        // sample step, so the trailing steps cannot affect the query.
        let horizon = self.sample_step.saturating_add(1);
        let mut ctl = self.control_config.clone();
        ctl.sample_step = Some(self.sample_step);
        ctl.samples = miss_specs.clone();
        ctl.steps = ctl.steps.min(horizon);
        let mut exp = self.experiment_config.clone();
        exp.sample_step = Some(self.sample_step);
        exp.samples = miss_specs;
        exp.steps = exp.steps.min(horizon);

        let mut ctl_ex = Executor::new(ctl_sp, &ctl);
        let mut exp_ex = Executor::new(exp_sp, &exp);
        if ctl_ex.drive(0.0).is_err() || exp_ex.drive(0.0).is_err() {
            // The generic path owns all error semantics: discard the
            // specialized failure, stand down permanently, re-run.
            self.poisoned = true;
            rca_obs::counter_inc!("oracle.fastpath_poisoned", 1);
            return self.differs_full(mg, nodes).0;
        }
        rca_obs::counter_inc!("oracle.specialized_queries", 1);
        let tolerance = self.tolerance;
        for (i, &n) in miss_nodes.iter().enumerate() {
            let verdict = Self::capture_differs(
                tolerance,
                ctl_ex.samples[i].as_ref(),
                exp_ex.samples[i].as_ref(),
            );
            self.node_memo.insert(n, verdict);
        }
        self.assemble(nodes, &specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_model::{generate, Experiment, ModelConfig};
    use rca_sim::Avx2Policy;

    fn pipeline() -> (ModelSource, MetaGraph) {
        let model = generate(&ModelConfig::test());
        let p = crate::pipeline::RcaPipeline::build(&model).unwrap();
        (model, p.metagraph)
    }

    #[test]
    fn reachability_oracle_respects_direction() {
        let (_, mg) = pipeline();
        let sites = Experiment::GoffGratch.bug_sites();
        let mut oracle = ReachabilityOracle::from_sites(&mg, &sites);
        assert!(!oracle.bug_nodes.is_empty());
        // cld (downstream of qsat) must be detectable; the bug's own
        // upstream (tboil) must not.
        let cld = mg.nodes_with_canonical("cld")[0];
        let tboil = mg.nodes_with_canonical("tboil")[0];
        let r = oracle.differs(&mg, &[cld, tboil]);
        assert_eq!(r, vec![true, false]);
    }

    #[test]
    fn runtime_sampler_detects_goffgratch_downstream() {
        let (model, mg) = pipeline();
        let bugged = model.apply(Experiment::GoffGratch);
        let cfg = RunConfig {
            steps: 3,
            ..Default::default()
        };
        let mut sampler = RuntimeSampler::new(model.clone(), bugged, cfg.clone(), cfg.clone());
        let cld = mg.nodes_with_canonical("cld")[0];
        let wsub = mg.nodes_with_canonical("wsub")[0];
        let r = sampler.differs(&mg, &[cld, wsub]);
        assert!(sampler.errors.is_empty(), "{:?}", sampler.errors);
        assert_eq!(
            r,
            vec![true, false],
            "cld is downstream of qsat; wsub is isolated"
        );
    }

    #[test]
    fn runtime_sampler_agrees_with_reachability_on_wsubbug() {
        let (model, mg) = pipeline();
        let bugged = model.apply(Experiment::WsubBug);
        let cfg = RunConfig {
            steps: 3,
            ..Default::default()
        };
        let mut runtime = RuntimeSampler::new(model.clone(), bugged, cfg.clone(), cfg.clone());
        let mut reach = ReachabilityOracle::from_sites(&mg, &Experiment::WsubBug.bug_sites());
        let wsub = mg.nodes_with_canonical("wsub")[0];
        let flwds = mg.nodes_with_canonical("flwds")[0];
        let nodes = [wsub, flwds];
        assert_eq!(
            runtime.differs(&mg, &nodes),
            reach.differs(&mg, &nodes),
            "the two oracles must agree on the isolated wsub bug"
        );
    }

    #[test]
    fn runtime_sampler_detects_avx2_in_kernel() {
        let (model, mg) = pipeline();
        let ctl = RunConfig {
            steps: 3,
            ..Default::default()
        };
        let exp = RunConfig {
            steps: 3,
            avx2: Avx2Policy::AllModules,
            ..Default::default()
        };
        let mut sampler = RuntimeSampler::new(model.clone(), model.clone(), ctl, exp);
        sampler.tolerance = 1e-16;
        let tlat = mg.node_by_key("micro_mg", None, "tlat").unwrap();
        let r = sampler.differs(&mg, &[tlat]);
        assert_eq!(r, vec![true], "FMA must perturb MG tendencies");
    }

    #[test]
    fn intrinsic_nodes_are_never_sampled() {
        let (model, mg) = pipeline();
        let cfg = RunConfig {
            steps: 2,
            ..Default::default()
        };
        let mut sampler = RuntimeSampler::new(
            model.clone(),
            model.apply(Experiment::GoffGratch),
            cfg.clone(),
            cfg,
        );
        let intrinsic = mg
            .meta
            .iter()
            .position(|m| m.kind == NodeKind::Intrinsic)
            .map(|i| NodeId(i as u32))
            .expect("model has intrinsic nodes");
        let r = sampler.differs(&mg, &[intrinsic]);
        assert_eq!(r, vec![false]);
    }
}
