//! The `RcaSession` facade: one entry point for the paper's workflow.
//!
//! The pipeline of Milroy et al. (HPDC 2019, Fig. 1) is a fixed staged
//! sequence — statistics → graph compilation → slicing → Algorithm 5.4
//! refinement — and this module packages it behind a builder-configured
//! session:
//!
//! ```no_run
//! use rca_core::{ExperimentSetup, OracleKind, RcaSession};
//! use rca_model::{generate, Experiment, ModelConfig};
//!
//! let model = generate(&ModelConfig::test());
//! let session = RcaSession::builder(&model)
//!     .setup(ExperimentSetup::quick())
//!     .oracle(OracleKind::Runtime)
//!     .build()?;
//! let diagnosis = session.diagnose(Experiment::GoffGratch)?;
//! println!("{}", diagnosis.render());
//! # Ok::<(), rca_core::RcaError>(())
//! ```
//!
//! Callers that need the granular control of the old free functions use
//! the **typed stage handles** instead: [`RcaSession::statistics`] returns
//! a [`Statistics`] stage, whose [`Statistics::slice`] consumes it into a
//! [`Sliced`] stage, whose [`Sliced::refine`]/[`Sliced::refine_with`]
//! consume it into [`Refined`]. Because each stage is only constructible
//! from its predecessor, the pipeline cannot be run out of order at
//! compile time — there is no way to refine before slicing or slice
//! before the statistics exist.
//!
//! # Beyond the six paper experiments: scenarios
//!
//! [`RcaSession::diagnose_scenario`] runs the identical pipeline against a
//! caller-supplied [`Scenario`] — any experimental model variant plus run
//! configuration, with optional ground truth. This is the substrate of the
//! `rca-campaign` fault-injection engine: the session's expensive
//! experiment-independent state (parse, coverage, metagraph, **and the
//! control ensemble + fitted ECT**) is computed once and shared by every
//! scenario, so N-scenario campaigns scale with the per-scenario work
//! only. Sessions are `Sync`; scenarios can be diagnosed from parallel
//! threads against one shared session.

use crate::error::RcaError;
use crate::experiments::{
    collect_ensemble, evaluate_against_ensemble, experiment_configs, DegradedEnsemble,
    EnsembleStats, ExperimentData, ExperimentSetup,
};
use crate::oracle::{Oracle, ReachabilityOracle, RuntimeSampler};
use crate::pipeline::{PipelineOptions, RcaPipeline};
use crate::refine::{refine, RefineOptions, RefinementReport, StopReason};
use crate::report::refinement_trace;
use crate::slice::{backward_slice, Slice};
use rca_graph::NodeId;
use rca_ident::{ModuleId, OutputId, SymbolTable, VarId};
use rca_metagraph::MetaGraph;
use rca_model::{BugSite, Experiment, ModelSource};
use rca_sim::{Program, RunConfig, RuntimeError};
use rca_stats::Verdict;
use serde::Json;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Which built-in evidence source Algorithm 5.4 consults.
///
/// See the [`crate::oracle`] module docs for the trade-off; in short:
/// `Reachability` for method evaluation with known ground truth,
/// `Runtime` for real investigations (two interpreter runs per
/// refinement iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Simulated sampling via directed-path reachability from the
    /// experiment's ground-truth bug sites (§5.2).
    Reachability,
    /// Real instrumented control + experimental interpreter runs.
    Runtime,
}

/// Which modules the backward slice may include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceScope {
    /// Restrict to CAM modules (the paper's §6 default).
    Cam,
    /// No restriction (the paper's Fig. 15 full-model slice).
    AllComponents,
}

/// A caller-defined experimental condition: one model variant plus run
/// configuration, diagnosed through the same session pipeline as the
/// paper's built-in experiments.
///
/// The model is `Arc`-shared so fault-injection campaigns can fan hundreds
/// of scenarios out across threads without cloning source trees. Ground
/// truth is optional: leave both `bug_sites` and `bug_modules` empty for a
/// genuinely unknown defect (the refinement loop then cannot stop on
/// `BugInstrumented`, exactly as a real investigation).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario identifier for reports (e.g. `"017-opswap-phys_aux_003"`).
    pub name: String,
    /// The experimental model (source mutations already applied).
    pub model: Arc<ModelSource>,
    /// The experimental run configuration (PRNG/AVX2 changes live here).
    pub config: RunConfig,
    /// Ground-truth bug sites, if known (variable-level).
    pub bug_sites: Vec<BugSite>,
    /// Ground-truth modules, if known (module-level: every metagraph node
    /// of these modules counts as a bug node).
    pub bug_modules: Vec<String>,
}

impl Scenario {
    /// A scenario with no ground truth: `model` under `config`.
    pub fn new(name: impl Into<String>, model: Arc<ModelSource>, config: RunConfig) -> Scenario {
        Scenario {
            name: name.into(),
            model,
            config,
            bug_sites: Vec::new(),
            bug_modules: Vec::new(),
        }
    }
}

/// What one pipeline run is diagnosing: a built-in experiment or a custom
/// scenario, resolved to the data every stage needs.
#[derive(Debug, Clone)]
pub(crate) struct Subject {
    name: String,
    experiment: Option<Experiment>,
    /// `None` for built-in experiments (patched lazily from the base
    /// model); always `Some` for scenarios.
    exp_model: Option<Arc<ModelSource>>,
    exp_config: RunConfig,
    bug_sites: Vec<BugSite>,
    /// Ground-truth modules resolved to ids once at subject construction
    /// (a module the session's graph never interned cannot host a bug
    /// node, so unresolvable names simply drop out here).
    bug_module_ids: Vec<ModuleId>,
}

/// Configures and builds an [`RcaSession`].
#[derive(Debug)]
pub struct RcaSessionBuilder<'m> {
    model: &'m ModelSource,
    setup: ExperimentSetup,
    oracle: OracleKind,
    oracle_fastpath: bool,
    pipeline_opts: PipelineOptions,
    refine_opts: RefineOptions,
    max_outputs: usize,
    scope: SliceScope,
    wall_budget: Option<Duration>,
}

impl<'m> RcaSessionBuilder<'m> {
    /// Statistical campaign parameters (default: [`ExperimentSetup::default`]).
    pub fn setup(mut self, setup: ExperimentSetup) -> Self {
        self.setup = setup;
        self
    }

    /// Evidence source for refinement (default: reachability).
    pub fn oracle(mut self, oracle: OracleKind) -> Self {
        self.oracle = oracle;
        self
    }

    /// Escape hatch for the runtime-oracle fast path (default: on).
    /// With `false`, every [`OracleKind::Runtime`] query executes the
    /// full program pair — the pre-specialization behavior. Evidence is
    /// identical either way ("fast paths never change evidence"); the
    /// switch exists so that property can be audited end to end.
    pub fn oracle_fastpath(mut self, on: bool) -> Self {
        self.oracle_fastpath = on;
        self
    }

    /// Graph-compilation options (coverage steps, skip-coverage).
    pub fn pipeline_options(mut self, opts: PipelineOptions) -> Self {
        self.pipeline_opts = opts;
        self
    }

    /// Algorithm 5.4 tuning knobs.
    pub fn refine_options(mut self, opts: RefineOptions) -> Self {
        self.refine_opts = opts;
        self
    }

    /// Cap on affected outputs carried into slicing (default: 10, the
    /// paper's lasso+median selection size).
    pub fn max_outputs(mut self, n: usize) -> Self {
        self.max_outputs = n;
        self
    }

    /// Slice restriction scope (default: CAM modules).
    pub fn scope(mut self, scope: SliceScope) -> Self {
        self.scope = scope;
        self
    }

    /// Wall-clock budget per diagnosis (default: unlimited). Checked
    /// between pipeline stages; exceeding it surfaces as the retryable
    /// [`RcaError::Budget`] instead of an open-ended hang.
    pub fn wall_budget(mut self, budget: Duration) -> Self {
        self.wall_budget = Some(budget);
        self
    }

    /// Parses and compiles the model, runs the coverage calibration, and
    /// compiles the variable digraph — everything experiment-independent.
    /// The compiled base program is the first entry of the session's
    /// program cache.
    pub fn build(self) -> Result<RcaSession<'m>, RcaError> {
        if self.max_outputs == 0 {
            return Err(RcaError::Config(
                "max_outputs must be at least 1 (nothing would be sliced)".into(),
            ));
        }
        if self.setup.steps < 2 {
            return Err(RcaError::Config(
                "setup.steps must be at least 2 (the ECT needs an evaluation step)".into(),
            ));
        }
        // Session-level phase costs live in the telemetry channel only;
        // `compile_model` and the pipeline build emit their own spans and
        // global phase records, so accumulate locally here.
        let mut profile = rca_obs::PhaseProfile::new();
        let base_program =
            profile.time_local("phase.compile", || rca_sim::compile_model(self.model))?;
        let pipeline =
            RcaPipeline::build_with_program(self.model, &base_program, &self.pipeline_opts)?;
        profile.merge(pipeline.build_profile());
        let mut programs = HashMap::new();
        programs.insert(self.model.content_hash(), base_program);
        Ok(RcaSession {
            model: self.model,
            pipeline,
            setup: self.setup,
            oracle: self.oracle,
            oracle_fastpath: self.oracle_fastpath,
            refine_opts: self.refine_opts,
            max_outputs: self.max_outputs,
            scope: self.scope,
            wall_budget: self.wall_budget,
            ensemble: OnceLock::new(),
            analysis: OnceLock::new(),
            programs: Mutex::new(programs),
            profile: Mutex::new(profile),
        })
    }
}

/// A configured root-cause-analysis session over one model.
///
/// Building the session performs the experiment-independent work (parse,
/// coverage calibration, metagraph compilation) once; each
/// [`RcaSession::diagnose`] / [`RcaSession::diagnose_scenario`] call then
/// runs the per-experiment pipeline. The control ensemble and its fitted
/// ECT are computed lazily on first use and cached for the session's
/// lifetime — the cache is thread-safe, so one session can serve parallel
/// scenario fan-outs.
#[derive(Debug)]
pub struct RcaSession<'m> {
    model: &'m ModelSource,
    pipeline: RcaPipeline,
    setup: ExperimentSetup,
    oracle: OracleKind,
    /// Whether runtime-oracle queries may take the slice-specialized
    /// fast path (see [`crate::oracle`] module docs).
    oracle_fastpath: bool,
    refine_opts: RefineOptions,
    max_outputs: usize,
    scope: SliceScope,
    /// Per-diagnosis wall-clock budget (`None` = unlimited).
    wall_budget: Option<Duration>,
    ensemble: OnceLock<Result<EnsembleStats, RcaError>>,
    /// Static analysis over the coverage-filtered sources, computed
    /// lazily on first use (dependence mirror, dataflow, lint catalog).
    analysis: OnceLock<Result<rca_analysis::ModelAnalysis, RcaError>>,
    /// Compiled programs keyed by `ModelSource::content_hash` — the base
    /// model plus every experimental/scenario variant this session has
    /// diagnosed. Thread-safe: parallel campaign workers share it.
    programs: Mutex<HashMap<u64, Arc<Program>>>,
    /// Session-level phase costs (compile, parse, coverage, metagraph,
    /// ensemble fill, ECT fit, analysis) — telemetry only, cloned into
    /// every diagnosis profile so each report is self-contained.
    profile: Mutex<rca_obs::PhaseProfile>,
}

impl<'m> RcaSession<'m> {
    /// Starts configuring a session for `model`.
    pub fn builder(model: &'m ModelSource) -> RcaSessionBuilder<'m> {
        RcaSessionBuilder {
            model,
            setup: ExperimentSetup::default(),
            oracle: OracleKind::Reachability,
            oracle_fastpath: true,
            pipeline_opts: PipelineOptions::default(),
            refine_opts: RefineOptions::default(),
            max_outputs: 10,
            scope: SliceScope::Cam,
            wall_budget: None,
        }
    }

    /// The model under analysis.
    pub fn model(&self) -> &'m ModelSource {
        self.model
    }

    /// The compiled pipeline (metagraph, coverage, filter statistics).
    pub fn pipeline(&self) -> &RcaPipeline {
        &self.pipeline
    }

    /// The compiled variable digraph.
    pub fn metagraph(&self) -> &MetaGraph {
        &self.pipeline.metagraph
    }

    /// The session's workspace-wide symbol table: seeded from the base
    /// program's interner, extended by the metagraph build, shared by
    /// every stage. Strings resolve to dense ids exactly once, here.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        self.pipeline.metagraph.symbols()
    }

    /// The statistical campaign parameters.
    pub fn setup(&self) -> &ExperimentSetup {
        &self.setup
    }

    /// The configured evidence source.
    pub fn oracle_kind(&self) -> OracleKind {
        self.oracle
    }

    /// The control-side statistics (perturbed ensemble runs + fitted ECT),
    /// computed on first use and cached for the session's lifetime.
    ///
    /// Batch drivers fanning scenarios across threads should call this
    /// once up front so the ensemble cost is paid before the fan-out.
    pub fn ensemble(&self) -> Result<&EnsembleStats, RcaError> {
        self.ensemble
            .get_or_init(|| {
                let program = self.program_for(self.model)?;
                let mut prof = rca_obs::PhaseProfile::new();
                let res = collect_ensemble(&program, &self.setup, &mut prof);
                self.profile.lock().expect("profile lock").merge(&prof);
                res
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The session-level phase profile so far (build, ensemble, analysis
    /// costs) — telemetry channel only, never part of an artifact.
    pub fn profile(&self) -> rca_obs::PhaseProfile {
        self.profile.lock().expect("profile lock").clone()
    }

    /// The compiled program for a model variant, from the session's
    /// content-addressed cache. Each distinct source (keyed by
    /// [`ModelSource::content_hash`]) is parsed and compiled exactly once
    /// per session, no matter how many ensemble members, scenarios, or
    /// oracle queries execute it; variants differing only in run
    /// configuration (RAND-MT, AVX2) share one entry.
    pub fn program_for(&self, model: &ModelSource) -> Result<Arc<Program>, RcaError> {
        let hash = model.content_hash();
        if let Some(p) = self.programs.lock().expect("program cache lock").get(&hash) {
            return Ok(Arc::clone(p));
        }
        // Compile outside the lock: mutants compile concurrently and a
        // poisoned cache is impossible.
        let program = rca_sim::compile_model(model)?;
        let mut cache = self.programs.lock().expect("program cache lock");
        Ok(Arc::clone(cache.entry(hash).or_insert(program)))
    }

    /// Number of distinct compiled programs this session holds.
    pub fn compiled_programs(&self) -> usize {
        self.programs.lock().expect("program cache lock").len()
    }

    /// The static analysis plane over this session's **coverage-filtered**
    /// source universe — the same files the metagraph was compiled from,
    /// so the IR dependence mirror and the metagraph agree node-for-node
    /// and the static observability pre-filter matches the metagraph
    /// filter on every campaign site. Computed lazily on first use and
    /// cached for the session's lifetime.
    pub fn analyze(&self) -> Result<&rca_analysis::ModelAnalysis, RcaError> {
        self.analysis
            .get_or_init(|| {
                let mut prof = rca_obs::PhaseProfile::new();
                let res = prof.time_local(
                    "phase.analysis",
                    || -> Result<rca_analysis::ModelAnalysis, RcaError> {
                        let program =
                            Arc::new(rca_sim::compile_sources(self.pipeline.filtered_sources())?);
                        Ok(rca_analysis::ModelAnalysis::build(program))
                    },
                );
                self.profile.lock().expect("profile lock").merge(&prof);
                res
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The control run configuration every subject is compared against.
    pub fn control_config(&self) -> RunConfig {
        crate::experiments::control_config(&self.setup)
    }

    /// Metagraph nodes of the experiment's ground-truth bug sites (empty
    /// for experiments without injected bugs, e.g. `Control`).
    pub fn bug_nodes(&self, experiment: Experiment) -> Vec<NodeId> {
        self.bug_nodes_for(&self.subject_of(experiment))
    }

    /// Metagraph nodes of a scenario's ground truth: its `bug_sites` plus
    /// every node of its `bug_modules`.
    pub fn scenario_bug_nodes(&self, scenario: &Scenario) -> Vec<NodeId> {
        self.bug_nodes_for(&self.subject_of_scenario(scenario))
    }

    /// All metagraph nodes belonging to `module` — the module-level
    /// ground-truth helper for campaign scoring ("is the injected module
    /// in the final slice?").
    pub fn module_nodes(&self, module: &str) -> Vec<NodeId> {
        match self.symbols().module_id(module) {
            Some(id) => self.pipeline.metagraph.nodes_in_module_ids(&[id]),
            None => Vec::new(),
        }
    }

    fn subject_of(&self, experiment: Experiment) -> Subject {
        let (_, exp_config) = experiment_configs(experiment, &self.setup);
        Subject {
            name: experiment.name().to_string(),
            experiment: Some(experiment),
            exp_model: None,
            exp_config,
            bug_sites: experiment.bug_sites(),
            bug_module_ids: Vec::new(),
        }
    }

    fn subject_of_scenario(&self, scenario: &Scenario) -> Subject {
        let syms = self.symbols();
        Subject {
            name: scenario.name.clone(),
            experiment: None,
            exp_model: Some(scenario.model.clone()),
            exp_config: scenario.config.clone(),
            bug_sites: scenario.bug_sites.clone(),
            bug_module_ids: scenario
                .bug_modules
                .iter()
                .filter_map(|m| syms.module_id(m))
                .collect(),
        }
    }

    fn exp_model_of(&self, subject: &Subject) -> Arc<ModelSource> {
        match (&subject.exp_model, subject.experiment) {
            (Some(m), _) => m.clone(),
            (None, Some(e)) => Arc::new(self.model.apply(e)),
            (None, None) => unreachable!("subject carries a model or an experiment"),
        }
    }

    fn bug_nodes_for(&self, subject: &Subject) -> Vec<NodeId> {
        let mg = &self.pipeline.metagraph;
        let mut nodes = ReachabilityOracle::from_sites(mg, &subject.bug_sites).bug_nodes;
        if !subject.bug_module_ids.is_empty() {
            nodes.extend(mg.nodes_in_module_ids(&subject.bug_module_ids));
        }
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Instantiates the session's configured oracle for one experiment.
    ///
    /// Exposed so callers can drive [`crate::refine()`] (or
    /// [`Sliced::refine_with`]) with a built-in oracle while owning its
    /// lifecycle — e.g. to interleave queries across experiments.
    pub fn make_oracle(&self, experiment: Experiment) -> Box<dyn Oracle> {
        self.make_oracle_for(&self.subject_of(experiment))
    }

    /// Instantiates the session's configured oracle for one scenario.
    pub fn scenario_oracle(&self, scenario: &Scenario) -> Box<dyn Oracle> {
        self.make_oracle_for(&self.subject_of_scenario(scenario))
    }

    fn make_oracle_for(&self, subject: &Subject) -> Box<dyn Oracle> {
        match self.oracle {
            OracleKind::Reachability => {
                Box::new(ReachabilityOracle::new(self.bug_nodes_for(subject)))
            }
            OracleKind::Runtime => {
                let exp_model = self.exp_model_of(subject);
                // Oracle queries run fault-free: evidence must reflect
                // what the *program* computes, not the injected runtime
                // environment of the scenario under diagnosis (budgets
                // stay — a runaway variant should still be killed).
                let exp_config = subject.exp_config.without_faults();
                // Both programs come from the session cache: the control
                // program is shared with the ensemble, the experimental
                // one with this subject's statistics stage.
                let mut sampler = match (self.program_for(self.model), self.program_for(&exp_model))
                {
                    (Ok(ctl), Ok(exp)) => {
                        RuntimeSampler::from_programs(ctl, exp, self.control_config(), exp_config)
                    }
                    // A variant that fails to compile still yields a
                    // best-effort sampler that reports the failure per
                    // query instead of panicking here.
                    _ => RuntimeSampler::new(
                        self.model.clone(),
                        (*exp_model).clone(),
                        self.control_config(),
                        exp_config,
                    ),
                };
                // Sample as early as the discrepancy can be observed (the
                // paper instruments early steps); stay within the run.
                sampler.sample_step = self.setup.steps.saturating_sub(1).min(2);
                sampler.fastpath = self.oracle_fastpath;
                Box::new(sampler)
            }
        }
    }

    /// Stage 1 — the statistical front end (§3): ensemble + experimental
    /// runs, UF-ECT verdict, affected-output selection.
    pub fn statistics(&self, experiment: Experiment) -> Result<Statistics<'_, 'm>, RcaError> {
        self.statistics_for(self.subject_of(experiment))
    }

    /// Stage 1 for a custom scenario; the cached control ensemble is
    /// shared with every other statistics call on this session.
    pub fn statistics_scenario(&self, scenario: &Scenario) -> Result<Statistics<'_, 'm>, RcaError> {
        self.statistics_for(self.subject_of_scenario(scenario))
    }

    fn statistics_for(&self, subject: Subject) -> Result<Statistics<'_, 'm>, RcaError> {
        // The ensemble is a session-level cost: pay (and profile) it
        // before the per-subject statistics phase starts.
        let ens = self.ensemble()?;
        let mut profile = self.profile();
        let exp_model = self.exp_model_of(&subject);
        let data = profile.time("phase.statistics", || -> Result<_, RcaError> {
            let exp_program = self.program_for(&exp_model)?;
            evaluate_against_ensemble(ens, &exp_program, &subject.exp_config, &self.setup)
        })?;
        if data.output_names.is_empty() {
            return Err(RcaError::Stats(
                "ensemble and experimental runs share no output variables".into(),
            ));
        }
        let affected = data.affected_outputs(self.max_outputs);
        Ok(Statistics {
            session: self,
            subject,
            data,
            affected,
            profile,
        })
    }

    /// Runs the full pipeline for one experiment: statistics → slicing →
    /// Algorithm 5.4, consolidated into a [`Diagnosis`].
    ///
    /// A passing ECT verdict short-circuits: the model is statistically
    /// consistent with the ensemble, so there is no discrepancy to chase
    /// and the diagnosis carries no refinement.
    pub fn diagnose(&self, experiment: Experiment) -> Result<Diagnosis, RcaError> {
        self.diagnose_for(self.subject_of(experiment))
    }

    /// Runs the full pipeline for a custom [`Scenario`] — the entry point
    /// of fault-injection campaigns.
    pub fn diagnose_scenario(&self, scenario: &Scenario) -> Result<Diagnosis, RcaError> {
        self.diagnose_for(self.subject_of_scenario(scenario))
    }

    fn diagnose_for(&self, subject: Subject) -> Result<Diagnosis, RcaError> {
        let _span = rca_obs::span_with("diagnose", &[("subject", subject.name.as_str().into())]);
        let deadline = self.wall_budget.map(|b| Instant::now() + b);
        let stats = self.statistics_for(subject)?;
        self.check_deadline(deadline, "statistics")?;
        if stats.data.verdict == Verdict::Pass {
            let subject = stats.subject;
            return Ok(Diagnosis {
                bug_nodes: self.bug_nodes_for(&subject),
                subject: subject.name,
                experiment: subject.experiment,
                verdict: Verdict::Pass,
                failure_rate: stats.data.failure_rate,
                affected_outputs: stats.affected,
                slicing_criteria: Vec::new(),
                slice_nodes: 0,
                slice_edges: 0,
                oracle: oracle_label(self.oracle),
                refinement: None,
                suspects: Vec::new(),
                suspect_modules: Vec::new(),
                suspect_module_ids: Vec::new(),
                sampling_errors: Vec::new(),
                degraded: stats.data.degraded,
                trace: String::new(),
                profile: stats.profile,
            });
        }
        let sliced = stats.slice()?;
        self.check_deadline(deadline, "slice")?;
        Ok(sliced.refine().into_diagnosis())
    }

    /// Surfaces an exceeded per-diagnosis wall budget as the retryable
    /// budget taxonomy. Checked between stages — a stage in flight is
    /// never interrupted, so the overshoot is bounded by one stage.
    fn check_deadline(&self, deadline: Option<Instant>, stage: &str) -> Result<(), RcaError> {
        let Some(deadline) = deadline else {
            return Ok(());
        };
        if Instant::now() <= deadline {
            return Ok(());
        }
        rca_obs::counter_inc!("run.budget_exhausted", 1);
        Err(RcaError::Budget {
            kind: crate::error::BudgetKind::Wall,
            detail: format!(
                "session wall budget of {:?} exceeded after the {stage} stage",
                self.wall_budget.unwrap_or_default()
            ),
        })
    }

    fn in_scope(&self, module: ModuleId) -> bool {
        match self.scope {
            SliceScope::Cam => self.pipeline.is_cam_id(module),
            SliceScope::AllComponents => true,
        }
    }
}

fn oracle_label(kind: OracleKind) -> &'static str {
    match kind {
        OracleKind::Reachability => "reachability",
        OracleKind::Runtime => "runtime",
    }
}

/// Fixed bucket bounds for the slice-size histogram (nodes).
const SLICE_SIZE_BOUNDS: &[f64] = &[10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0];

/// Typed stage handle: statistics have run. Produced by
/// [`RcaSession::statistics`] / [`RcaSession::statistics_scenario`];
/// consumed by [`Statistics::slice`].
#[derive(Debug)]
pub struct Statistics<'s, 'm> {
    session: &'s RcaSession<'m>,
    pub(crate) subject: Subject,
    /// Full statistical results (verdict, rankings, matrices).
    pub data: ExperimentData,
    /// Affected outputs selected for slicing (lasso first, topped up by
    /// median distance). Mutable before [`Statistics::slice`] for callers
    /// that want to override the selection.
    pub affected: Vec<String>,
    /// Per-diagnosis phase profile (session-level phases plus this
    /// subject's statistics so far) — telemetry only.
    profile: rca_obs::PhaseProfile,
}

impl<'s, 'm> Statistics<'s, 'm> {
    /// Name of the subject under diagnosis (experiment or scenario).
    pub fn subject(&self) -> &str {
        &self.subject.name
    }

    /// The built-in experiment under diagnosis, if this is not a scenario.
    pub fn experiment(&self) -> Option<Experiment> {
        self.subject.experiment
    }

    /// The UF-ECT verdict.
    pub fn verdict(&self) -> Verdict {
        self.data.verdict
    }

    /// Stage 2 — §5.1 hybrid slicing: map affected outputs to internal
    /// canonical names and induce the suspect subgraph. This is where
    /// strings leave the pipeline: the affected output names resolve
    /// through the session's symbol table once, and everything downstream
    /// (criteria, slice restriction, refinement, oracle queries) runs on
    /// dense ids.
    pub fn slice(mut self) -> Result<Sliced<'s, 'm>, RcaError> {
        let mut profile = std::mem::take(&mut self.profile);
        let sliced = profile.time("phase.slice", || -> Result<_, RcaError> {
            let mg = &self.session.pipeline.metagraph;
            let syms = mg.symbols();
            let output_ids: Vec<OutputId> = self
                .affected
                .iter()
                .filter_map(|n| syms.output_id(&n.to_lowercase()))
                .collect();
            let criteria = mg.outputs_to_internal_ids(&output_ids);
            if criteria.is_empty() {
                return Err(RcaError::UnknownOutputs(self.affected.clone()));
            }
            let slice = backward_slice(mg, &criteria, |module| self.session.in_scope(module));
            if slice.graph.node_count() == 0 {
                let names = criteria.iter().map(|&v| syms.var(v).to_string()).collect();
                return Err(RcaError::EmptySlice(names));
            }
            Ok((criteria, slice))
        });
        let (criteria, slice) = sliced?;
        rca_obs::histogram("slice.nodes", SLICE_SIZE_BOUNDS)
            .observe(slice.graph.node_count() as f64);
        Ok(Sliced {
            session: self.session,
            subject: self.subject,
            data: self.data,
            affected: self.affected,
            criteria,
            slice,
            profile,
        })
    }
}

/// Typed stage handle: the suspect subgraph exists. Produced by
/// [`Statistics::slice`]; consumed by [`Sliced::refine`] or
/// [`Sliced::refine_with`].
#[derive(Debug)]
pub struct Sliced<'s, 'm> {
    session: &'s RcaSession<'m>,
    pub(crate) subject: Subject,
    /// Statistical results carried forward.
    pub data: ExperimentData,
    /// Affected outputs that produced the criteria.
    pub affected: Vec<String>,
    /// Internal canonical slicing criteria (§5.1 / Table 2), as interned
    /// ids — resolve with [`Sliced::criteria_names`] at the edge.
    pub criteria: Vec<VarId>,
    /// The induced suspect subgraph.
    pub slice: Slice,
    /// Per-diagnosis phase profile carried forward (telemetry only).
    profile: rca_obs::PhaseProfile,
}

impl<'s, 'm> Sliced<'s, 'm> {
    /// Name of the subject under diagnosis (experiment or scenario).
    pub fn subject(&self) -> &str {
        &self.subject.name
    }

    /// Slicing criteria as display strings (rendering edge).
    pub fn criteria_names(&self) -> Vec<String> {
        let syms = self.session.symbols();
        self.criteria
            .iter()
            .map(|&v| syms.var(v).to_string())
            .collect()
    }

    /// The built-in experiment under diagnosis, if this is not a scenario.
    pub fn experiment(&self) -> Option<Experiment> {
        self.subject.experiment
    }

    /// Stage 3 — Algorithm 5.4 with the session's configured oracle.
    pub fn refine(self) -> Refined<'s, 'm> {
        let mut oracle = self.session.make_oracle_for(&self.subject);
        self.refine_with(oracle.as_mut())
    }

    /// Stage 3 with a caller-supplied evidence source — any
    /// [`Oracle`] implementation, including ones outside this crate.
    pub fn refine_with(mut self, oracle: &mut dyn Oracle) -> Refined<'s, 'm> {
        let mut profile = std::mem::take(&mut self.profile);
        let bug_nodes = self.session.bug_nodes_for(&self.subject);
        let report = profile.time("phase.refine", || {
            refine(
                &self.session.pipeline.metagraph,
                &self.slice,
                oracle,
                &bug_nodes,
                &self.session.refine_opts,
            )
        });
        Refined {
            session: self.session,
            subject: self.subject,
            data: self.data,
            affected: self.affected,
            criteria: self.criteria,
            slice_nodes: self.slice.graph.node_count(),
            slice_edges: self.slice.graph.edge_count(),
            report,
            oracle_name: oracle.name(),
            sampling_errors: oracle.take_errors(),
            bug_nodes,
            profile,
        }
    }
}

/// Typed stage handle: refinement has run. Produced by
/// [`Sliced::refine`]/[`Sliced::refine_with`]; finished by
/// [`Refined::into_diagnosis`].
#[derive(Debug)]
pub struct Refined<'s, 'm> {
    session: &'s RcaSession<'m>,
    pub(crate) subject: Subject,
    /// Statistical results carried forward.
    pub data: ExperimentData,
    /// Affected outputs carried forward.
    pub affected: Vec<String>,
    /// Slicing criteria carried forward (interned ids).
    pub criteria: Vec<VarId>,
    /// Suspect subgraph size entering refinement.
    pub slice_nodes: usize,
    /// Suspect subgraph edges entering refinement.
    pub slice_edges: usize,
    /// The Algorithm 5.4 outcome.
    pub report: RefinementReport,
    /// Which oracle produced the evidence.
    pub oracle_name: &'static str,
    /// Runtime failures the oracle absorbed while sampling.
    pub sampling_errors: Vec<RuntimeError>,
    bug_nodes: Vec<NodeId>,
    profile: rca_obs::PhaseProfile,
}

impl Refined<'_, '_> {
    /// Name of the subject under diagnosis (experiment or scenario).
    pub fn subject(&self) -> &str {
        &self.subject.name
    }

    /// The built-in experiment under diagnosis, if this is not a scenario.
    pub fn experiment(&self) -> Option<Experiment> {
        self.subject.experiment
    }

    /// Consolidates everything into the final [`Diagnosis`] — the string
    /// edge: every id carried through the pipeline resolves to its display
    /// name exactly once, here.
    pub fn into_diagnosis(self) -> Diagnosis {
        let mg = &self.session.pipeline.metagraph;
        let syms = mg.symbols();
        let suspects: Vec<String> = self
            .report
            .final_nodes
            .iter()
            .map(|&n| mg.display(n))
            .collect();
        let mut suspect_module_ids: Vec<ModuleId> = self
            .report
            .final_nodes
            .iter()
            .map(|&n| mg.meta_of(n).module)
            .collect();
        suspect_module_ids.sort();
        suspect_module_ids.dedup();
        // Rendered module list stays name-sorted (stable report/JSON
        // shape); the id list next to it is what campaigns match on.
        let mut suspect_modules: Vec<String> = suspect_module_ids
            .iter()
            .map(|&m| syms.module(m).to_string())
            .collect();
        suspect_modules.sort();
        let slicing_criteria = self
            .criteria
            .iter()
            .map(|&v| syms.var(v).to_string())
            .collect();
        let trace = refinement_trace(mg, &self.report);
        Diagnosis {
            subject: self.subject.name,
            experiment: self.subject.experiment,
            verdict: self.data.verdict,
            failure_rate: self.data.failure_rate,
            affected_outputs: self.affected,
            slicing_criteria,
            slice_nodes: self.slice_nodes,
            slice_edges: self.slice_edges,
            oracle: self.oracle_name,
            refinement: Some(self.report),
            bug_nodes: self.bug_nodes,
            suspects,
            suspect_modules,
            suspect_module_ids,
            sampling_errors: self.sampling_errors,
            degraded: self.data.degraded,
            trace,
            profile: self.profile,
        }
    }
}

/// The consolidated result of one [`RcaSession::diagnose`] /
/// [`RcaSession::diagnose_scenario`] run: verdict, selected outputs, slice
/// statistics, refinement trace, and stop reason.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Name of what was diagnosed (experiment name or scenario name).
    pub subject: String,
    /// The built-in experiment, when the subject was one (`None` for
    /// custom scenarios).
    pub experiment: Option<Experiment>,
    /// UF-ECT verdict (a `Pass` carries no refinement).
    pub verdict: Verdict,
    /// ECT failure rate over all experimental run-sets.
    pub failure_rate: f64,
    /// Affected outputs selected by the statistics.
    pub affected_outputs: Vec<String>,
    /// Internal canonical names sliced on.
    pub slicing_criteria: Vec<String>,
    /// Suspect subgraph size entering refinement.
    pub slice_nodes: usize,
    /// Suspect subgraph edges entering refinement.
    pub slice_edges: usize,
    /// Which oracle produced the evidence.
    pub oracle: &'static str,
    /// The Algorithm 5.4 outcome (`None` when the verdict passed).
    pub refinement: Option<RefinementReport>,
    /// Ground-truth bug nodes (empty when unknown/not injected).
    pub bug_nodes: Vec<NodeId>,
    /// Display names of the final suspect set.
    pub suspects: Vec<String>,
    /// Modules of the final suspect set (sorted, deduplicated) — the
    /// module-level localization check campaigns score against.
    pub suspect_modules: Vec<String>,
    /// The same module set as interned ids (id-sorted) — campaign
    /// scorecard matching runs on these, not on strings. Not serialized
    /// (ids are session-local).
    pub suspect_module_ids: Vec<ModuleId>,
    /// Runtime failures the oracle absorbed while sampling.
    pub sampling_errors: Vec<RuntimeError>,
    /// Set when the statistics were computed from a degraded ensemble
    /// (retried or quarantined members on either side) — the diagnosis
    /// stands, but on fewer runs than configured. `None` on healthy
    /// fills, and then absent from the serialized artifact too.
    pub degraded: Option<DegradedEnsemble>,
    trace: String,
    /// Per-phase wall/alloc/count profile of this diagnosis (plus the
    /// session-level build phases it depended on). Telemetry channel
    /// only — deliberately absent from `render()` and `Serialize`, so
    /// the diagnosis artifact stays byte-identical run to run.
    profile: rca_obs::PhaseProfile,
}

impl Diagnosis {
    /// Why refinement stopped, if it ran.
    pub fn stop(&self) -> Option<StopReason> {
        self.refinement.as_ref().map(|r| r.stop)
    }

    /// The per-phase wall-time/alloc/count profile: session-level phases
    /// (compile, parse, coverage, metagraph, ensemble fill, ECT fit)
    /// plus this diagnosis' statistics/slice/refine. Render with
    /// [`rca_obs::PhaseProfile::render`] (text) or `to_json` — it is
    /// never part of the serialized diagnosis.
    pub fn profile(&self) -> &rca_obs::PhaseProfile {
        &self.profile
    }

    /// Refinement iterations performed.
    pub fn iterations(&self) -> usize {
        self.refinement.as_ref().map_or(0, |r| r.iterations.len())
    }

    /// Whether a ground-truth bug node was instrumented during sampling.
    pub fn instrumented(&self) -> bool {
        self.refinement
            .as_ref()
            .is_some_and(|r| r.instrumented(&self.bug_nodes))
    }

    /// Whether a ground-truth bug node sits in the final suspect set.
    pub fn localized(&self) -> bool {
        self.refinement
            .as_ref()
            .is_some_and(|r| r.localized(&self.bug_nodes))
    }

    /// Whether the procedure found the bug (instrumented or localized) —
    /// meaningful only when ground truth exists.
    pub fn located(&self) -> bool {
        self.instrumented() || self.localized()
    }

    /// Whether `module` is among the final suspect modules.
    pub fn suspects_module(&self, module: &str) -> bool {
        self.suspect_modules.iter().any(|m| m == module)
    }

    /// Id-keyed variant of [`Diagnosis::suspects_module`] (binary search
    /// over the id-sorted list — the campaign scoring path).
    pub fn suspects_module_id(&self, module: ModuleId) -> bool {
        self.suspect_module_ids.binary_search(&module).is_ok()
    }

    /// Renders the full human-readable report: verdict, selections, the
    /// per-iteration refinement trace, stop reason, and suspect list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== RCA diagnosis: {} ==", self.subject);
        let _ = writeln!(
            out,
            "UF-ECT verdict: {} (failure rate {:.0}%, oracle: {})",
            self.verdict,
            self.failure_rate * 100.0,
            self.oracle
        );
        if let Some(d) = &self.degraded {
            let _ = writeln!(out, "DEGRADED ensemble: {d}");
        }
        if self.verdict == Verdict::Pass {
            let _ = writeln!(
                out,
                "output is statistically consistent with the ensemble; nothing to diagnose"
            );
            return out;
        }
        let _ = writeln!(out, "affected outputs: {:?}", self.affected_outputs);
        let _ = writeln!(out, "slicing criteria: {:?}", self.slicing_criteria);
        let _ = writeln!(
            out,
            "induced subgraph: {} nodes, {} edges",
            self.slice_nodes, self.slice_edges
        );
        out.push_str(&self.trace);
        if let Some(stop) = self.stop() {
            let _ = writeln!(out, "stop reason: {stop}");
        }
        let _ = writeln!(out, "final suspects ({}):", self.suspects.len());
        const SHOWN: usize = 12;
        for s in self.suspects.iter().take(SHOWN) {
            let _ = writeln!(out, "  {s}");
        }
        if self.suspects.len() > SHOWN {
            let _ = writeln!(out, "  ... and {} more", self.suspects.len() - SHOWN);
        }
        if !self.sampling_errors.is_empty() {
            let _ = writeln!(
                out,
                "sampling errors absorbed: {} (first: {})",
                self.sampling_errors.len(),
                self.sampling_errors[0]
            );
        }
        if !self.bug_nodes.is_empty() {
            let _ = writeln!(
                out,
                "ground-truth bug: {}",
                if self.instrumented() {
                    "LOCATED (instrumented during sampling)"
                } else if self.localized() {
                    "LOCATED (inside the final suspect set)"
                } else {
                    "NOT located"
                }
            );
        }
        out
    }
}

// Machine-readable diagnosis export: a stable, deterministic JSON shape
// for campaign scorecards and external tooling (no `render()` scraping).
impl serde::Serialize for Diagnosis {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("subject", self.subject.to_json()),
            (
                "experiment",
                self.experiment.map(|e| e.name().to_string()).to_json(),
            ),
            ("verdict", self.verdict.to_json()),
            ("failure_rate", self.failure_rate.to_json()),
            ("affected_outputs", self.affected_outputs.to_json()),
            ("slicing_criteria", self.slicing_criteria.to_json()),
            ("slice_nodes", self.slice_nodes.to_json()),
            ("slice_edges", self.slice_edges.to_json()),
            ("oracle", self.oracle.to_json()),
            ("iterations", self.iterations().to_json()),
            ("stop", self.stop().to_json()),
            ("located", self.located().to_json()),
            ("instrumented", self.instrumented().to_json()),
            ("localized", self.localized().to_json()),
            (
                "bug_nodes",
                Json::Arr(
                    self.bug_nodes
                        .iter()
                        .map(|n| Json::Num(n.index() as f64))
                        .collect(),
                ),
            ),
            ("suspects", self.suspects.to_json()),
            ("suspect_modules", self.suspect_modules.to_json()),
            (
                "sampling_errors",
                Json::Arr(
                    self.sampling_errors
                        .iter()
                        .map(|e| Json::Str(e.to_string()))
                        .collect(),
                ),
            ),
        ];
        // Conditional key: a healthy (zero-fault) diagnosis serializes
        // without it, keeping legacy artifacts byte-identical — "degrade,
        // never diverge".
        if let Some(d) = &self.degraded {
            fields.push(("degraded", d.to_json()));
        }
        fields.push(("refinement", self.refinement.to_json()));
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_model::{generate, ModelConfig};

    fn model() -> ModelSource {
        generate(&ModelConfig::test())
    }

    #[test]
    fn builder_validates_configuration() {
        let m = model();
        let err = RcaSession::builder(&m)
            .max_outputs(0)
            .build()
            .expect_err("must fail");
        assert!(matches!(err, RcaError::Config(_)), "{err}");
        let err = RcaSession::builder(&m)
            .setup(ExperimentSetup {
                steps: 1,
                ..ExperimentSetup::quick()
            })
            .build()
            .expect_err("must fail");
        assert!(matches!(err, RcaError::Config(_)), "{err}");
    }

    #[test]
    fn builder_defaults_and_accessors() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        assert_eq!(session.oracle_kind(), OracleKind::Reachability);
        assert!(session.metagraph().node_count() > 300);
        assert!(session.pipeline().filter_stats.subprograms_after > 0);
        assert_eq!(session.setup().steps, 5);
    }

    #[test]
    fn wsub_diagnose_end_to_end_and_renders() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let d = session.diagnose(Experiment::WsubBug).expect("diagnosis");
        assert_eq!(d.verdict, Verdict::Fail);
        assert_eq!(d.experiment, Some(Experiment::WsubBug));
        assert!(d.slice_nodes > 0);
        assert!(
            d.located(),
            "wsub bug must be located (stop {:?})",
            d.stop()
        );
        assert!(
            d.suspects_module("microp_aero"),
            "module-level check: {:?}",
            d.suspect_modules
        );
        let report = d.render();
        assert!(report.contains("WSUBBUG") || report.contains(&d.subject));
        assert!(report.contains("stop reason:"));
        assert!(report.contains("final suspects"));
    }

    #[test]
    fn typed_stages_expose_granular_control() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let stats = session.statistics(Experiment::WsubBug).expect("stage 1");
        assert_eq!(stats.verdict(), Verdict::Fail);
        assert_eq!(stats.subject(), "WSUBBUG");
        assert_eq!(stats.experiment(), Some(Experiment::WsubBug));
        let sliced = stats.slice().expect("stage 2");
        assert!(sliced.slice.graph.node_count() > 0);
        assert!(!sliced.criteria.is_empty());
        // Caller-supplied oracle through the object-safe interface.
        let mut oracle = session.make_oracle(Experiment::WsubBug);
        let refined = sliced.refine_with(oracle.as_mut());
        assert_eq!(refined.oracle_name, "reachability");
        let d = refined.into_diagnosis();
        assert!(d.located());
    }

    #[test]
    fn control_short_circuits_on_pass() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let d = session.diagnose(Experiment::Control).expect("diagnosis");
        assert_eq!(d.verdict, Verdict::Pass);
        assert!(d.refinement.is_none());
        assert_eq!(d.iterations(), 0);
        assert!(!d.located());
        assert!(d.render().contains("consistent"));
    }

    #[test]
    fn ensemble_is_cached_across_diagnoses() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let a = session.ensemble().expect("ensemble") as *const EnsembleStats;
        let _ = session.diagnose(Experiment::Control).expect("diagnosis");
        let b = session.ensemble().expect("ensemble") as *const EnsembleStats;
        assert_eq!(a, b, "the control ensemble must be computed once");
    }

    #[test]
    fn clean_scenario_passes_like_control() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let scenario = Scenario::new("clean", Arc::new(m.clone()), session.control_config());
        let d = session.diagnose_scenario(&scenario).expect("diagnosis");
        assert_eq!(d.verdict, Verdict::Pass);
        assert_eq!(d.subject, "clean");
        assert_eq!(d.experiment, None);
    }

    #[test]
    fn scenario_with_injected_wsub_bug_is_located() {
        // Recreate WSUBBUG as a *scenario* (patched model + ground truth)
        // and require the custom-scenario path to localize it exactly like
        // the built-in experiment path does.
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let scenario = Scenario {
            name: "wsub-as-scenario".into(),
            model: Arc::new(m.apply(Experiment::WsubBug)),
            config: session.control_config(),
            bug_sites: Experiment::WsubBug.bug_sites(),
            bug_modules: Vec::new(),
        };
        assert!(!session.scenario_bug_nodes(&scenario).is_empty());
        let d = session.diagnose_scenario(&scenario).expect("diagnosis");
        assert_eq!(d.verdict, Verdict::Fail);
        assert!(d.located(), "stop {:?}", d.stop());
        assert!(d.suspects_module("microp_aero"));
    }

    #[test]
    fn module_level_ground_truth_counts_whole_module() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let by_module = session.module_nodes("microp_aero");
        assert!(!by_module.is_empty());
        let scenario = Scenario {
            name: "module-truth".into(),
            model: Arc::new(m.apply(Experiment::WsubBug)),
            config: session.control_config(),
            bug_sites: Vec::new(),
            bug_modules: vec!["microp_aero".into()],
        };
        let nodes = session.scenario_bug_nodes(&scenario);
        assert_eq!(nodes, by_module);
    }

    #[test]
    fn program_cache_compiles_each_variant_once() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        // The base model was compiled during build.
        assert_eq!(session.compiled_programs(), 1);
        let base = session.program_for(&m).expect("base program");
        assert!(
            Arc::ptr_eq(&base, &session.program_for(&m).expect("again")),
            "same content hash must return the same Arc"
        );
        // Config-only experiments (Control, RandMt, Avx2) share the base
        // program: diagnosing them adds no cache entries.
        let _ = session.diagnose(Experiment::Control).expect("control");
        let _ = session.diagnose(Experiment::RandMt).expect("randmt");
        assert_eq!(session.compiled_programs(), 1);
        // A source patch is a new variant — exactly one more entry, even
        // if diagnosed twice.
        let _ = session.diagnose(Experiment::WsubBug).expect("wsub");
        assert_eq!(session.compiled_programs(), 2);
        let _ = session.diagnose(Experiment::WsubBug).expect("wsub again");
        assert_eq!(session.compiled_programs(), 2);
    }

    #[test]
    fn diagnosis_serializes_deterministically() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let d = session.diagnose(Experiment::WsubBug).expect("diagnosis");
        let a = serde_json::to_string(&d).expect("serialize");
        let b = serde_json::to_string(&d).expect("serialize");
        assert_eq!(a, b);
        let v = serde_json::from_str(&a).expect("round-trip");
        assert_eq!(v["subject"].as_str(), Some("WSUBBUG"));
        assert_eq!(v["verdict"].as_str(), Some("fail"));
        assert_eq!(v["located"], serde_json::Value::Bool(true));
        assert!(v["refinement"]["iterations"].as_array().is_some());
    }
}
