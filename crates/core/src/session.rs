//! The `RcaSession` facade: one entry point for the paper's workflow.
//!
//! The pipeline of Milroy et al. (HPDC 2019, Fig. 1) is a fixed staged
//! sequence — statistics → graph compilation → slicing → Algorithm 5.4
//! refinement — and this module packages it behind a builder-configured
//! session:
//!
//! ```no_run
//! use rca_core::{ExperimentSetup, OracleKind, RcaSession};
//! use rca_model::{generate, Experiment, ModelConfig};
//!
//! let model = generate(&ModelConfig::test());
//! let session = RcaSession::builder(&model)
//!     .setup(ExperimentSetup::quick())
//!     .oracle(OracleKind::Runtime)
//!     .build()?;
//! let diagnosis = session.diagnose(Experiment::GoffGratch)?;
//! println!("{}", diagnosis.render());
//! # Ok::<(), rca_core::RcaError>(())
//! ```
//!
//! Callers that need the granular control of the old free functions use
//! the **typed stage handles** instead: [`RcaSession::statistics`] returns
//! a [`Statistics`] stage, whose [`Statistics::slice`] consumes it into a
//! [`Sliced`] stage, whose [`Sliced::refine`]/[`Sliced::refine_with`]
//! consume it into [`Refined`]. Because each stage is only constructible
//! from its predecessor, the pipeline cannot be run out of order at
//! compile time — there is no way to refine before slicing or slice
//! before the statistics exist.

use crate::error::RcaError;
use crate::experiments::{collect_statistics, experiment_configs, ExperimentData, ExperimentSetup};
use crate::oracle::{Oracle, ReachabilityOracle, RuntimeSampler};
use crate::pipeline::{PipelineOptions, RcaPipeline};
use crate::refine::{refine, RefineOptions, RefinementReport, StopReason};
use crate::report::refinement_trace;
use crate::slice::{backward_slice, Slice};
use rca_graph::NodeId;
use rca_metagraph::MetaGraph;
use rca_model::{Experiment, ModelSource};
use rca_sim::RuntimeError;
use rca_stats::Verdict;
use std::fmt::Write as _;

/// Which built-in evidence source Algorithm 5.4 consults.
///
/// See the [`crate::oracle`] module docs for the trade-off; in short:
/// `Reachability` for method evaluation with known ground truth,
/// `Runtime` for real investigations (two interpreter runs per
/// refinement iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Simulated sampling via directed-path reachability from the
    /// experiment's ground-truth bug sites (§5.2).
    Reachability,
    /// Real instrumented control + experimental interpreter runs.
    Runtime,
}

/// Which modules the backward slice may include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceScope {
    /// Restrict to CAM modules (the paper's §6 default).
    Cam,
    /// No restriction (the paper's Fig. 15 full-model slice).
    AllComponents,
}

/// Configures and builds an [`RcaSession`].
pub struct RcaSessionBuilder<'m> {
    model: &'m ModelSource,
    setup: ExperimentSetup,
    oracle: OracleKind,
    pipeline_opts: PipelineOptions,
    refine_opts: RefineOptions,
    max_outputs: usize,
    scope: SliceScope,
}

impl<'m> RcaSessionBuilder<'m> {
    /// Statistical campaign parameters (default: [`ExperimentSetup::default`]).
    pub fn setup(mut self, setup: ExperimentSetup) -> Self {
        self.setup = setup;
        self
    }

    /// Evidence source for refinement (default: reachability).
    pub fn oracle(mut self, oracle: OracleKind) -> Self {
        self.oracle = oracle;
        self
    }

    /// Graph-compilation options (coverage steps, skip-coverage).
    pub fn pipeline_options(mut self, opts: PipelineOptions) -> Self {
        self.pipeline_opts = opts;
        self
    }

    /// Algorithm 5.4 tuning knobs.
    pub fn refine_options(mut self, opts: RefineOptions) -> Self {
        self.refine_opts = opts;
        self
    }

    /// Cap on affected outputs carried into slicing (default: 10, the
    /// paper's lasso+median selection size).
    pub fn max_outputs(mut self, n: usize) -> Self {
        self.max_outputs = n;
        self
    }

    /// Slice restriction scope (default: CAM modules).
    pub fn scope(mut self, scope: SliceScope) -> Self {
        self.scope = scope;
        self
    }

    /// Parses the model, runs the coverage calibration, and compiles the
    /// variable digraph — everything experiment-independent.
    pub fn build(self) -> Result<RcaSession<'m>, RcaError> {
        if self.max_outputs == 0 {
            return Err(RcaError::Config(
                "max_outputs must be at least 1 (nothing would be sliced)".into(),
            ));
        }
        if self.setup.steps < 2 {
            return Err(RcaError::Config(
                "setup.steps must be at least 2 (the ECT needs an evaluation step)".into(),
            ));
        }
        let pipeline = RcaPipeline::build_with(self.model, &self.pipeline_opts)?;
        Ok(RcaSession {
            model: self.model,
            pipeline,
            setup: self.setup,
            oracle: self.oracle,
            refine_opts: self.refine_opts,
            max_outputs: self.max_outputs,
            scope: self.scope,
        })
    }
}

/// A configured root-cause-analysis session over one model.
///
/// Building the session performs the experiment-independent work (parse,
/// coverage calibration, metagraph compilation) once; each
/// [`RcaSession::diagnose`] call then runs the per-experiment pipeline.
pub struct RcaSession<'m> {
    model: &'m ModelSource,
    pipeline: RcaPipeline,
    setup: ExperimentSetup,
    oracle: OracleKind,
    refine_opts: RefineOptions,
    max_outputs: usize,
    scope: SliceScope,
}

impl<'m> RcaSession<'m> {
    /// Starts configuring a session for `model`.
    pub fn builder(model: &'m ModelSource) -> RcaSessionBuilder<'m> {
        RcaSessionBuilder {
            model,
            setup: ExperimentSetup::default(),
            oracle: OracleKind::Reachability,
            pipeline_opts: PipelineOptions::default(),
            refine_opts: RefineOptions::default(),
            max_outputs: 10,
            scope: SliceScope::Cam,
        }
    }

    /// The model under analysis.
    pub fn model(&self) -> &'m ModelSource {
        self.model
    }

    /// The compiled pipeline (metagraph, coverage, filter statistics).
    pub fn pipeline(&self) -> &RcaPipeline {
        &self.pipeline
    }

    /// The compiled variable digraph.
    pub fn metagraph(&self) -> &MetaGraph {
        &self.pipeline.metagraph
    }

    /// The statistical campaign parameters.
    pub fn setup(&self) -> &ExperimentSetup {
        &self.setup
    }

    /// The configured evidence source.
    pub fn oracle_kind(&self) -> OracleKind {
        self.oracle
    }

    /// Metagraph nodes of the experiment's ground-truth bug sites (empty
    /// for experiments without injected bugs, e.g. `Control`).
    pub fn bug_nodes(&self, experiment: Experiment) -> Vec<NodeId> {
        ReachabilityOracle::from_sites(&self.pipeline.metagraph, &experiment.bug_sites()).bug_nodes
    }

    /// Instantiates the session's configured oracle for one experiment.
    ///
    /// Exposed so callers can drive [`crate::refine`] (or
    /// [`Sliced::refine_with`]) with a built-in oracle while owning its
    /// lifecycle — e.g. to interleave queries across experiments.
    pub fn make_oracle(&self, experiment: Experiment) -> Box<dyn Oracle> {
        match self.oracle {
            OracleKind::Reachability => Box::new(ReachabilityOracle::from_sites(
                &self.pipeline.metagraph,
                &experiment.bug_sites(),
            )),
            OracleKind::Runtime => {
                let (ctl_cfg, exp_cfg) = experiment_configs(experiment, &self.setup);
                let mut sampler = RuntimeSampler::new(
                    self.model.clone(),
                    self.model.apply(experiment),
                    ctl_cfg,
                    exp_cfg,
                );
                // Sample as early as the discrepancy can be observed (the
                // paper instruments early steps); stay within the run.
                sampler.sample_step = self.setup.steps.saturating_sub(1).min(2);
                Box::new(sampler)
            }
        }
    }

    /// Stage 1 — the statistical front end (§3): ensemble + experimental
    /// runs, UF-ECT verdict, affected-output selection.
    pub fn statistics(&self, experiment: Experiment) -> Result<Statistics<'_, 'm>, RcaError> {
        let data = collect_statistics(self.model, experiment, &self.setup)?;
        if data.output_names.is_empty() {
            return Err(RcaError::Stats(
                "ensemble and experimental runs share no output variables".into(),
            ));
        }
        let affected = data.affected_outputs(self.max_outputs);
        Ok(Statistics {
            session: self,
            experiment,
            data,
            affected,
        })
    }

    /// Runs the full pipeline for one experiment: statistics → slicing →
    /// Algorithm 5.4, consolidated into a [`Diagnosis`].
    ///
    /// A passing ECT verdict short-circuits: the model is statistically
    /// consistent with the ensemble, so there is no discrepancy to chase
    /// and the diagnosis carries no refinement.
    pub fn diagnose(&self, experiment: Experiment) -> Result<Diagnosis, RcaError> {
        let stats = self.statistics(experiment)?;
        if stats.data.verdict == Verdict::Pass {
            return Ok(Diagnosis {
                experiment,
                verdict: Verdict::Pass,
                failure_rate: stats.data.failure_rate,
                affected_outputs: stats.affected,
                slicing_criteria: Vec::new(),
                slice_nodes: 0,
                slice_edges: 0,
                oracle: oracle_label(self.oracle),
                refinement: None,
                bug_nodes: self.bug_nodes(experiment),
                suspects: Vec::new(),
                sampling_errors: Vec::new(),
                trace: String::new(),
            });
        }
        Ok(stats.slice()?.refine().into_diagnosis())
    }

    fn in_scope(&self, module: &str) -> bool {
        match self.scope {
            SliceScope::Cam => self.pipeline.is_cam(module),
            SliceScope::AllComponents => true,
        }
    }
}

fn oracle_label(kind: OracleKind) -> &'static str {
    match kind {
        OracleKind::Reachability => "reachability",
        OracleKind::Runtime => "runtime",
    }
}

/// Typed stage handle: statistics have run. Produced by
/// [`RcaSession::statistics`]; consumed by [`Statistics::slice`].
pub struct Statistics<'s, 'm> {
    session: &'s RcaSession<'m>,
    /// The experiment under diagnosis.
    pub experiment: Experiment,
    /// Full statistical results (verdict, rankings, matrices).
    pub data: ExperimentData,
    /// Affected outputs selected for slicing (lasso first, topped up by
    /// median distance). Mutable before [`Statistics::slice`] for callers
    /// that want to override the selection.
    pub affected: Vec<String>,
}

impl<'s, 'm> Statistics<'s, 'm> {
    /// The UF-ECT verdict.
    pub fn verdict(&self) -> Verdict {
        self.data.verdict
    }

    /// Stage 2 — §5.1 hybrid slicing: map affected outputs to internal
    /// canonical names and induce the suspect subgraph.
    pub fn slice(self) -> Result<Sliced<'s, 'm>, RcaError> {
        let criteria = self.session.pipeline.outputs_to_internal(&self.affected);
        if criteria.is_empty() {
            return Err(RcaError::UnknownOutputs(self.affected));
        }
        let slice = backward_slice(&self.session.pipeline.metagraph, &criteria, |module| {
            self.session.in_scope(module)
        });
        if slice.graph.node_count() == 0 {
            return Err(RcaError::EmptySlice(criteria));
        }
        Ok(Sliced {
            session: self.session,
            experiment: self.experiment,
            data: self.data,
            affected: self.affected,
            criteria,
            slice,
        })
    }
}

/// Typed stage handle: the suspect subgraph exists. Produced by
/// [`Statistics::slice`]; consumed by [`Sliced::refine`] or
/// [`Sliced::refine_with`].
pub struct Sliced<'s, 'm> {
    session: &'s RcaSession<'m>,
    /// The experiment under diagnosis.
    pub experiment: Experiment,
    /// Statistical results carried forward.
    pub data: ExperimentData,
    /// Affected outputs that produced the criteria.
    pub affected: Vec<String>,
    /// Internal canonical slicing criteria (§5.1 / Table 2).
    pub criteria: Vec<String>,
    /// The induced suspect subgraph.
    pub slice: Slice,
}

impl<'s, 'm> Sliced<'s, 'm> {
    /// Stage 3 — Algorithm 5.4 with the session's configured oracle.
    pub fn refine(self) -> Refined<'s, 'm> {
        let mut oracle = self.session.make_oracle(self.experiment);
        self.refine_with(oracle.as_mut())
    }

    /// Stage 3 with a caller-supplied evidence source — any
    /// [`Oracle`] implementation, including ones outside this crate.
    pub fn refine_with(self, oracle: &mut dyn Oracle) -> Refined<'s, 'm> {
        let bug_nodes = self.session.bug_nodes(self.experiment);
        let report = refine(
            &self.session.pipeline.metagraph,
            &self.slice,
            oracle,
            &bug_nodes,
            &self.session.refine_opts,
        );
        Refined {
            session: self.session,
            experiment: self.experiment,
            data: self.data,
            affected: self.affected,
            criteria: self.criteria,
            slice_nodes: self.slice.graph.node_count(),
            slice_edges: self.slice.graph.edge_count(),
            report,
            oracle_name: oracle.name(),
            sampling_errors: oracle.take_errors(),
            bug_nodes,
        }
    }
}

/// Typed stage handle: refinement has run. Produced by
/// [`Sliced::refine`]/[`Sliced::refine_with`]; finished by
/// [`Refined::into_diagnosis`].
pub struct Refined<'s, 'm> {
    session: &'s RcaSession<'m>,
    /// The experiment under diagnosis.
    pub experiment: Experiment,
    /// Statistical results carried forward.
    pub data: ExperimentData,
    /// Affected outputs carried forward.
    pub affected: Vec<String>,
    /// Slicing criteria carried forward.
    pub criteria: Vec<String>,
    /// Suspect subgraph size entering refinement.
    pub slice_nodes: usize,
    /// Suspect subgraph edges entering refinement.
    pub slice_edges: usize,
    /// The Algorithm 5.4 outcome.
    pub report: RefinementReport,
    /// Which oracle produced the evidence.
    pub oracle_name: &'static str,
    /// Runtime failures the oracle absorbed while sampling.
    pub sampling_errors: Vec<RuntimeError>,
    bug_nodes: Vec<NodeId>,
}

impl Refined<'_, '_> {
    /// Consolidates everything into the final [`Diagnosis`].
    pub fn into_diagnosis(self) -> Diagnosis {
        let mg = &self.session.pipeline.metagraph;
        let suspects: Vec<String> = self
            .report
            .final_nodes
            .iter()
            .map(|&n| mg.display(n))
            .collect();
        let trace = refinement_trace(mg, &self.report);
        Diagnosis {
            experiment: self.experiment,
            verdict: self.data.verdict,
            failure_rate: self.data.failure_rate,
            affected_outputs: self.affected,
            slicing_criteria: self.criteria,
            slice_nodes: self.slice_nodes,
            slice_edges: self.slice_edges,
            oracle: self.oracle_name,
            refinement: Some(self.report),
            bug_nodes: self.bug_nodes,
            suspects,
            sampling_errors: self.sampling_errors,
            trace,
        }
    }
}

/// The consolidated result of one [`RcaSession::diagnose`] run: verdict,
/// selected outputs, slice statistics, refinement trace, and stop reason.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The experiment that was diagnosed.
    pub experiment: Experiment,
    /// UF-ECT verdict (a `Pass` carries no refinement).
    pub verdict: Verdict,
    /// ECT failure rate over all experimental run-sets.
    pub failure_rate: f64,
    /// Affected outputs selected by the statistics.
    pub affected_outputs: Vec<String>,
    /// Internal canonical names sliced on.
    pub slicing_criteria: Vec<String>,
    /// Suspect subgraph size entering refinement.
    pub slice_nodes: usize,
    /// Suspect subgraph edges entering refinement.
    pub slice_edges: usize,
    /// Which oracle produced the evidence.
    pub oracle: &'static str,
    /// The Algorithm 5.4 outcome (`None` when the verdict passed).
    pub refinement: Option<RefinementReport>,
    /// Ground-truth bug nodes (empty when unknown/not injected).
    pub bug_nodes: Vec<NodeId>,
    /// Display names of the final suspect set.
    pub suspects: Vec<String>,
    /// Runtime failures the oracle absorbed while sampling.
    pub sampling_errors: Vec<RuntimeError>,
    trace: String,
}

impl Diagnosis {
    /// Why refinement stopped, if it ran.
    pub fn stop(&self) -> Option<StopReason> {
        self.refinement.as_ref().map(|r| r.stop)
    }

    /// Refinement iterations performed.
    pub fn iterations(&self) -> usize {
        self.refinement.as_ref().map_or(0, |r| r.iterations.len())
    }

    /// Whether a ground-truth bug node was instrumented during sampling.
    pub fn instrumented(&self) -> bool {
        self.refinement
            .as_ref()
            .is_some_and(|r| r.instrumented(&self.bug_nodes))
    }

    /// Whether a ground-truth bug node sits in the final suspect set.
    pub fn localized(&self) -> bool {
        self.refinement
            .as_ref()
            .is_some_and(|r| r.localized(&self.bug_nodes))
    }

    /// Whether the procedure found the bug (instrumented or localized) —
    /// meaningful only when ground truth exists.
    pub fn located(&self) -> bool {
        self.instrumented() || self.localized()
    }

    /// Renders the full human-readable report: verdict, selections, the
    /// per-iteration refinement trace, stop reason, and suspect list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== RCA diagnosis: {} ==", self.experiment.name());
        let _ = writeln!(
            out,
            "UF-ECT verdict: {} (failure rate {:.0}%, oracle: {})",
            self.verdict,
            self.failure_rate * 100.0,
            self.oracle
        );
        if self.verdict == Verdict::Pass {
            let _ = writeln!(
                out,
                "output is statistically consistent with the ensemble; nothing to diagnose"
            );
            return out;
        }
        let _ = writeln!(out, "affected outputs: {:?}", self.affected_outputs);
        let _ = writeln!(out, "slicing criteria: {:?}", self.slicing_criteria);
        let _ = writeln!(
            out,
            "induced subgraph: {} nodes, {} edges",
            self.slice_nodes, self.slice_edges
        );
        out.push_str(&self.trace);
        if let Some(stop) = self.stop() {
            let _ = writeln!(out, "stop reason: {stop}");
        }
        let _ = writeln!(out, "final suspects ({}):", self.suspects.len());
        const SHOWN: usize = 12;
        for s in self.suspects.iter().take(SHOWN) {
            let _ = writeln!(out, "  {s}");
        }
        if self.suspects.len() > SHOWN {
            let _ = writeln!(out, "  ... and {} more", self.suspects.len() - SHOWN);
        }
        if !self.sampling_errors.is_empty() {
            let _ = writeln!(
                out,
                "sampling errors absorbed: {} (first: {})",
                self.sampling_errors.len(),
                self.sampling_errors[0]
            );
        }
        if !self.bug_nodes.is_empty() {
            let _ = writeln!(
                out,
                "ground-truth bug: {}",
                if self.instrumented() {
                    "LOCATED (instrumented during sampling)"
                } else if self.localized() {
                    "LOCATED (inside the final suspect set)"
                } else {
                    "NOT located"
                }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_model::{generate, ModelConfig};

    fn model() -> ModelSource {
        generate(&ModelConfig::test())
    }

    #[test]
    fn builder_validates_configuration() {
        let m = model();
        let err = RcaSession::builder(&m)
            .max_outputs(0)
            .build()
            .err()
            .expect("must fail");
        assert!(matches!(err, RcaError::Config(_)), "{err}");
        let err = RcaSession::builder(&m)
            .setup(ExperimentSetup {
                steps: 1,
                ..ExperimentSetup::quick()
            })
            .build()
            .err()
            .expect("must fail");
        assert!(matches!(err, RcaError::Config(_)), "{err}");
    }

    #[test]
    fn builder_defaults_and_accessors() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        assert_eq!(session.oracle_kind(), OracleKind::Reachability);
        assert!(session.metagraph().node_count() > 300);
        assert!(session.pipeline().filter_stats.subprograms_after > 0);
        assert_eq!(session.setup().steps, 5);
    }

    #[test]
    fn wsub_diagnose_end_to_end_and_renders() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let d = session.diagnose(Experiment::WsubBug).expect("diagnosis");
        assert_eq!(d.verdict, Verdict::Fail);
        assert!(d.slice_nodes > 0);
        assert!(
            d.located(),
            "wsub bug must be located (stop {:?})",
            d.stop()
        );
        let report = d.render();
        assert!(report.contains("WSUBBUG") || report.contains(d.experiment.name()));
        assert!(report.contains("stop reason:"));
        assert!(report.contains("final suspects"));
    }

    #[test]
    fn typed_stages_expose_granular_control() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let stats = session.statistics(Experiment::WsubBug).expect("stage 1");
        assert_eq!(stats.verdict(), Verdict::Fail);
        let sliced = stats.slice().expect("stage 2");
        assert!(sliced.slice.graph.node_count() > 0);
        assert!(!sliced.criteria.is_empty());
        // Caller-supplied oracle through the object-safe interface.
        let mut oracle = session.make_oracle(Experiment::WsubBug);
        let refined = sliced.refine_with(oracle.as_mut());
        assert_eq!(refined.oracle_name, "reachability");
        let d = refined.into_diagnosis();
        assert!(d.located());
    }

    #[test]
    fn control_short_circuits_on_pass() {
        let m = model();
        let session = RcaSession::builder(&m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let d = session.diagnose(Experiment::Control).expect("diagnosis");
        assert_eq!(d.verdict, Verdict::Pass);
        assert!(d.refinement.is_none());
        assert_eq!(d.iterations(), 0);
        assert!(!d.located());
        assert!(d.render().contains("consistent"));
    }
}
