//! Algorithm 5.4 — the iterative refinement procedure.
//!
//! The paper's core contribution: starting from the induced suspect
//! subgraph, repeatedly (5) detect communities with one Girvan–Newman
//! iteration, (6) rank each community by eigenvector **in**-centrality and
//! pick the top *m* nodes, (7) instrument them (in parallel across
//! communities) for an ensemble and an experimental run, then (8a) if no
//! difference is detected remove every node on a shortest path into the
//! sampled set, else (8b) keep only nodes on shortest paths into the
//! *differing* set, and (9) repeat "until the subgraph is small enough for
//! manual analysis or the bug locations are instrumented".
//!
//! This is "similar to a k-ary search" with `k` the community count. The
//! three §5.4 caveats are handled: non-refining iterations stall-stop,
//! never-detected bugs drive repeated 8a shrinkage toward disconnection,
//! and static paths may include non-traversed code (the oracle, not the
//! graph, is authoritative about detection).

use crate::oracle::Oracle;
use crate::slice::{reinduce, Slice};
use rca_graph::{
    bfs_multi, communities, eigenvector_centrality, top_m, Direction, NodeId, PowerIterOptions,
};
use rca_metagraph::MetaGraph;
use serde::Json;

/// Tuning knobs for Algorithm 5.4.
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// Nodes sampled per community (the paper samples the top 10, three
    /// for very small subgraphs).
    pub samples_per_community: usize,
    /// Communities smaller than this are omitted (paper: 3).
    pub min_community: usize,
    /// Girvan–Newman iterations per refinement round (paper: 1).
    pub gn_levels: usize,
    /// Stop when the subgraph reaches this size ("small enough for manual
    /// analysis").
    pub manual_threshold: usize,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            samples_per_community: 10,
            min_community: 3,
            gn_levels: 1,
            manual_threshold: 25,
            max_iterations: 12,
        }
    }
}

/// Why the refinement loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A ground-truth bug node was among the instrumented nodes.
    BugInstrumented,
    /// Subgraph is small enough for manual analysis.
    SmallEnough,
    /// The induced subgraph stopped shrinking (paper issue #1).
    Stalled,
    /// No communities could be found (paper issue #2: increasingly
    /// disconnected subgraphs).
    Disconnected,
    /// Iteration cap.
    MaxIterations,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            StopReason::BugInstrumented => "bug instrumented",
            StopReason::SmallEnough => "small enough for manual analysis",
            StopReason::Stalled => "subgraph stopped shrinking",
            StopReason::Disconnected => "no communities (subgraph disconnected)",
            StopReason::MaxIterations => "iteration cap reached",
        };
        f.write_str(text)
    }
}

/// One refinement iteration's record (the paper's per-iteration
/// subfigures a/b/c).
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Subgraph size entering the iteration.
    pub nodes: usize,
    /// Edges entering the iteration.
    pub edges: usize,
    /// Community sizes (descending, after the min-size filter).
    pub community_sizes: Vec<usize>,
    /// Sampled nodes (metagraph ids) per community.
    pub sampled: Vec<Vec<NodeId>>,
    /// Which sampled nodes took different values.
    pub detected: Vec<Vec<bool>>,
    /// Whether any difference was detected (chooses 8a vs 8b).
    pub any_detected: bool,
}

/// Final outcome of Algorithm 5.4.
#[derive(Debug, Clone)]
pub struct RefinementReport {
    /// Per-iteration records.
    pub iterations: Vec<IterationReport>,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// Metagraph nodes of the final subgraph, ascending (subgraph
    /// induction preserves metagraph node order).
    pub final_nodes: Vec<NodeId>,
    /// Every node instrumented across all iterations, sorted + deduped.
    pub all_sampled: Vec<NodeId>,
}

impl RefinementReport {
    /// Whether any ground-truth bug node was instrumented at some point.
    /// Both node lists are sorted (see field docs), so membership is a
    /// binary search — campaign scorecards call this per scenario with
    /// paper-scale slices.
    pub fn instrumented(&self, bug_nodes: &[NodeId]) -> bool {
        debug_assert!(self.all_sampled.is_sorted());
        bug_nodes
            .iter()
            .any(|b| self.all_sampled.binary_search(b).is_ok())
    }

    /// Whether any bug node is inside the final subgraph.
    pub fn localized(&self, bug_nodes: &[NodeId]) -> bool {
        debug_assert!(self.final_nodes.is_sorted());
        bug_nodes
            .iter()
            .any(|b| self.final_nodes.binary_search(b).is_ok())
    }
}

// Machine-readable refinement traces (campaign export, external tooling).

fn nodes_json(nodes: &[NodeId]) -> Json {
    Json::Arr(nodes.iter().map(|n| Json::Num(n.index() as f64)).collect())
}

impl serde::Serialize for StopReason {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                StopReason::BugInstrumented => "bug_instrumented",
                StopReason::SmallEnough => "small_enough",
                StopReason::Stalled => "stalled",
                StopReason::Disconnected => "disconnected",
                StopReason::MaxIterations => "max_iterations",
            }
            .to_string(),
        )
    }
}

impl serde::Serialize for IterationReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", self.nodes.to_json()),
            ("edges", self.edges.to_json()),
            ("community_sizes", self.community_sizes.to_json()),
            (
                "sampled",
                Json::Arr(self.sampled.iter().map(|g| nodes_json(g)).collect()),
            ),
            ("detected", self.detected.to_json()),
            ("any_detected", self.any_detected.to_json()),
        ])
    }
}

impl serde::Serialize for RefinementReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("iterations", self.iterations.to_json()),
            ("stop", self.stop.to_json()),
            ("final_nodes", nodes_json(&self.final_nodes)),
            ("all_sampled", nodes_json(&self.all_sampled)),
        ])
    }
}

/// Oracle-query latency histogram bounds (seconds).
const ORACLE_LATENCY_BOUNDS: &[f64] = &[1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Refinement iteration-count histogram bounds.
const REFINE_ITER_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0];

/// Runs Algorithm 5.4 on a suspect slice with the given oracle.
///
/// `bug_nodes` (metagraph ids) are optional ground truth used only for
/// the `BugInstrumented` stop condition — pass an empty slice when the
/// location is unknown, exactly as a real investigation would.
pub fn refine(
    mg: &MetaGraph,
    slice: &Slice,
    oracle: &mut dyn Oracle,
    bug_nodes: &[NodeId],
    opts: &RefineOptions,
) -> RefinementReport {
    let mut current = reinduce(mg, slice, &slice.mapping);
    let mut iterations = Vec::new();
    let mut all_sampled: Vec<NodeId> = Vec::new();
    let mut stop = StopReason::MaxIterations;

    for _ in 0..opts.max_iterations {
        if current.graph.node_count() <= opts.manual_threshold {
            stop = StopReason::SmallEnough;
            break;
        }
        // Step 5: communities of the undirected view.
        let comms = communities(&current.graph, opts.gn_levels, opts.min_community);
        if comms.is_empty() {
            stop = StopReason::Disconnected;
            break;
        }
        // Step 6: eigenvector in-centrality per community, top m.
        let mut sampled: Vec<Vec<NodeId>> = Vec::with_capacity(comms.len());
        for comm in &comms {
            let (cg, cmap) = current.graph.induced_subgraph(comm);
            let cent = eigenvector_centrality(&cg, Direction::In, PowerIterOptions::default());
            let top = top_m(&cent, opts.samples_per_community);
            sampled.push(
                top.into_iter()
                    .map(|local| current.to_meta(cmap[local.index()]))
                    .collect(),
            );
        }
        // Step 7: instrument (batched across communities — the per-
        // community runs are independent, which is what the paper
        // parallelizes).
        let flat: Vec<NodeId> = sampled.iter().flatten().copied().collect();
        let query_start = std::time::Instant::now();
        let flat_detect = oracle.differs(mg, &flat);
        rca_obs::counter_inc!("oracle.queries", 1);
        rca_obs::counter_inc!("oracle.candidates", flat.len() as u64);
        rca_obs::histogram("oracle.query_seconds", ORACLE_LATENCY_BOUNDS)
            .observe(query_start.elapsed().as_secs_f64());
        let mut detected: Vec<Vec<bool>> = Vec::with_capacity(sampled.len());
        let mut cursor = 0usize;
        for group in &sampled {
            detected.push(flat_detect[cursor..cursor + group.len()].to_vec());
            cursor += group.len();
        }
        all_sampled.extend(&flat);
        let any_detected = flat_detect.iter().any(|&d| d);

        if rca_obs::tracing_active() {
            rca_obs::event(
                "refine.iter",
                &[
                    ("iter", iterations.len().into()),
                    ("nodes", current.graph.node_count().into()),
                    ("edges", current.graph.edge_count().into()),
                    ("communities", comms.len().into()),
                    ("candidates", flat.len().into()),
                    (
                        "detected",
                        flat_detect.iter().filter(|&&d| d).count().into(),
                    ),
                    ("any_detected", any_detected.into()),
                ],
            );
        }
        iterations.push(IterationReport {
            nodes: current.graph.node_count(),
            edges: current.graph.edge_count(),
            community_sizes: comms.iter().map(Vec::len).collect(),
            sampled: sampled.clone(),
            detected: detected.clone(),
            any_detected,
        });

        if bug_nodes.iter().any(|b| flat.contains(b)) {
            stop = StopReason::BugInstrumented;
            break;
        }

        // Steps 8a/8b: shortest-path sets are computed within the current
        // subgraph G.
        let sampled_sub: Vec<NodeId> = flat
            .iter()
            .filter_map(|&meta| current.to_sub(meta))
            .collect();
        let mut keep_meta: Vec<NodeId> = if any_detected {
            let differing_sub: Vec<NodeId> = flat
                .iter()
                .zip(&flat_detect)
                .filter(|&(_, &d)| d)
                .filter_map(|(&meta, _)| current.to_sub(meta))
                .collect();
            let reach = bfs_multi(&current.graph, &differing_sub, Direction::In);
            current
                .graph
                .nodes()
                .filter(|&n| reach.reached(n))
                .map(|n| current.to_meta(n))
                .collect()
        } else {
            let reach = bfs_multi(&current.graph, &sampled_sub, Direction::In);
            current
                .graph
                .nodes()
                .filter(|&n| !reach.reached(n))
                .map(|n| current.to_meta(n))
                .collect()
        };

        // Stall recovery (paper §5.4 issue 1: "it is possible that steps
        // 5-8b do not refine the subgraph"). The union of backward paths
        // into the differing nodes covered everything, so try the
        // *intersection*: nodes on backward paths into **every** differing
        // node — common ancestors, which still contain a single bug
        // source. (With multiple independent sources this can overshoot,
        // so it is only a stall fallback, never the main 8b rule.)
        if any_detected && keep_meta.len() >= current.graph.node_count() {
            let differing_sub: Vec<NodeId> = flat
                .iter()
                .zip(&flat_detect)
                .filter(|&(_, &d)| d)
                .filter_map(|(&meta, _)| current.to_sub(meta))
                .collect();
            if differing_sub.len() > 1 {
                let mut common: Option<Vec<bool>> = None;
                for &d in &differing_sub {
                    let reach = bfs_multi(&current.graph, &[d], Direction::In);
                    let mask: Vec<bool> = current.graph.nodes().map(|n| reach.reached(n)).collect();
                    common = Some(match common {
                        None => mask,
                        Some(prev) => prev.iter().zip(&mask).map(|(&a, &b)| a && b).collect(),
                    });
                }
                if let Some(mask) = common {
                    keep_meta = current
                        .graph
                        .nodes()
                        .filter(|&n| mask[n.index()])
                        .map(|n| current.to_meta(n))
                        .collect();
                }
            }
        }

        if keep_meta.len() >= current.graph.node_count() || keep_meta.is_empty() {
            stop = StopReason::Stalled;
            break;
        }
        current = reinduce(mg, &current, &keep_meta);
    }

    all_sampled.sort();
    all_sampled.dedup();
    rca_obs::histogram("refine.iterations", REFINE_ITER_BOUNDS).observe(iterations.len() as f64);
    RefinementReport {
        iterations,
        stop,
        final_nodes: current.mapping.clone(),
        all_sampled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ReachabilityOracle;
    use crate::pipeline::RcaPipeline;
    use crate::slice::backward_slice_names;
    use rca_model::{generate, Experiment, ModelConfig};

    fn setup(exp: Experiment) -> (MetaGraph, Slice, Vec<NodeId>) {
        let model = generate(&ModelConfig::test());
        let p = RcaPipeline::build(&model).unwrap();
        let internal: Vec<String> = exp
            .table2_internal()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let comp = p.components.clone();
        let slice = backward_slice_names(&p.metagraph, &internal, |m| {
            matches!(comp.get(m), Some(rca_model::Component::Cam))
        });
        let oracle = ReachabilityOracle::from_sites(&p.metagraph, &exp.bug_sites());
        let bugs = oracle.bug_nodes.clone();
        (p.metagraph, slice, bugs)
    }

    #[test]
    fn goffgratch_refinement_finds_bug() {
        let (mg, slice, bugs) = setup(Experiment::GoffGratch);
        assert!(!bugs.is_empty());
        assert!(
            slice.graph.node_count() > 30,
            "slice too small: {}",
            slice.graph.node_count()
        );
        let mut oracle = ReachabilityOracle::new(bugs.clone());
        let report = refine(&mg, &slice, &mut oracle, &bugs, &RefineOptions::default());
        // The paper's GOFFGRATCH run itself ends when "the induced
        // subgraph equals the community subgraph" — a stall with the bug
        // inside is a faithful outcome; instrumentation is better.
        assert!(
            report.instrumented(&bugs) || report.localized(&bugs),
            "bug neither instrumented nor localized (stop {:?})",
            report.stop
        );
        // First iteration must detect something (the bug community is the
        // big physics community, Fig. 7).
        assert!(report.iterations[0].any_detected);
    }

    #[test]
    fn wsubbug_slice_tiny_and_immediately_manual() {
        let (mg, slice, bugs) = setup(Experiment::WsubBug);
        assert!(
            slice.graph.node_count() <= 25,
            "wsub slice must be tiny (paper: 14), got {}",
            slice.graph.node_count()
        );
        let mut oracle = ReachabilityOracle::new(bugs.clone());
        let report = refine(&mg, &slice, &mut oracle, &bugs, &RefineOptions::default());
        assert_eq!(report.stop, StopReason::SmallEnough);
        assert!(report.localized(&bugs));
    }

    #[test]
    fn randmt_not_detected_first_iteration() {
        let (mg, slice, bugs) = setup(Experiment::RandMt);
        assert!(!bugs.is_empty(), "PRNG-tainted nodes must exist");
        let mut oracle = ReachabilityOracle::new(bugs.clone());
        let opts = RefineOptions {
            manual_threshold: 10,
            ..Default::default()
        };
        let report = refine(&mg, &slice, &mut oracle, &bugs, &opts);
        // The paper's signature RAND-MT behaviour: sampling the central
        // cluster detects nothing on iteration 1 (no paths from the PRNG
        // taint to the upstream emissivity cluster); step 8a then shrinks
        // the graph and a later iteration (or the final manual set)
        // contains the taint.
        assert!(!report.iterations.is_empty());
        assert!(
            report.instrumented(&bugs) || report.localized(&bugs),
            "stop={:?}, iterations={}",
            report.stop,
            report.iterations.len()
        );
    }

    #[test]
    fn refinement_shrinks_monotonically() {
        let (mg, slice, bugs) = setup(Experiment::GoffGratch);
        let mut oracle = ReachabilityOracle::new(bugs.clone());
        let report = refine(&mg, &slice, &mut oracle, &bugs, &RefineOptions::default());
        for w in report.iterations.windows(2) {
            assert!(
                w[1].nodes < w[0].nodes,
                "subgraph must shrink: {} -> {}",
                w[0].nodes,
                w[1].nodes
            );
        }
    }

    #[test]
    fn unknown_bug_runs_without_ground_truth() {
        let (mg, slice, bugs) = setup(Experiment::Dyn3Bug);
        let mut oracle = ReachabilityOracle::new(bugs);
        // Empty ground truth: loop must still terminate.
        let report = refine(&mg, &slice, &mut oracle, &[], &RefineOptions::default());
        assert!(
            !matches!(report.stop, StopReason::BugInstrumented),
            "cannot stop on instrumentation without ground truth"
        );
        assert!(!report.final_nodes.is_empty());
    }
}
