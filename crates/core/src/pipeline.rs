//! The end-to-end pipeline: model source → coverage filter → metagraph.
//!
//! Mirrors the paper's preprocessing chain (§2.1, §4.1): start from the
//! compiled model configuration, run it briefly to collect coverage
//! ("discard modules that are not yet executed by the second time step"),
//! drop unexecuted modules/subprograms, then compile the surviving source
//! into the variable digraph.

use crate::error::RcaError;
use rca_ident::{ModuleId, SymbolTable};
use rca_metagraph::{
    build_metagraph_seeded, filter_sources, BuildOptions, Coverage, FilterStats, MetaGraph,
};
use rca_model::{Component, ModelSource};
use rca_sim::{compile_model, run_program, Program, RunConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// A built pipeline: metagraph plus bookkeeping for one model variant.
#[derive(Debug)]
pub struct RcaPipeline {
    /// The compiled variable digraph with metadata (id-keyed over the
    /// session's workspace-wide symbol table).
    pub metagraph: MetaGraph,
    /// Coverage observed during the calibration run.
    pub coverage: Coverage,
    /// Module/subprogram reduction statistics (paper: ~30% of modules and
    /// ~60% of subprograms removed).
    pub filter_stats: FilterStats,
    /// Module → component map from the generator.
    pub components: HashMap<String, Component>,
    /// `cam_mask[ModuleId]` — dense CAM-membership mask, so slice-scope
    /// checks on the refinement hot path are array reads, not string
    /// compares.
    cam_mask: Vec<bool>,
    /// The coverage-filtered ASTs the metagraph was compiled from —
    /// retained so the static analysis plane ([`rca_analysis`]) can
    /// compile the *same* source universe and agree with the metagraph
    /// node-for-node.
    filtered: Vec<rca_fortran::SourceFile>,
    /// Wall/alloc cost of the build phases (parse, coverage, metagraph) —
    /// telemetry only, merged into the session profile.
    build_profile: rca_obs::PhaseProfile,
}

/// Options for pipeline construction.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Steps of the coverage calibration run (the paper examines coverage
    /// by the second time step).
    pub coverage_steps: u32,
    /// Skip the coverage run and graph all source (for comparisons of
    /// hybrid vs. purely static slicing).
    pub skip_coverage: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            coverage_steps: 2,
            skip_coverage: false,
        }
    }
}

impl RcaPipeline {
    /// Builds the pipeline for `model` with default options.
    pub fn build(model: &ModelSource) -> Result<RcaPipeline, RcaError> {
        Self::build_with(model, &PipelineOptions::default())
    }

    /// Builds with explicit options (compiles the model for the coverage
    /// calibration run; callers holding a compiled program should use
    /// [`RcaPipeline::build_with_program`] instead).
    pub fn build_with(
        model: &ModelSource,
        opts: &PipelineOptions,
    ) -> Result<RcaPipeline, RcaError> {
        let program = if opts.skip_coverage {
            None
        } else {
            Some(compile_model(model)?)
        };
        Self::build_inner(model, program.as_ref(), opts)
    }

    /// Builds with a pre-compiled program for the calibration run — the
    /// session path, which shares one program across the pipeline, the
    /// control ensemble, and every runtime oracle.
    pub fn build_with_program(
        model: &ModelSource,
        program: &Arc<Program>,
        opts: &PipelineOptions,
    ) -> Result<RcaPipeline, RcaError> {
        Self::build_inner(model, Some(program), opts)
    }

    fn build_inner(
        model: &ModelSource,
        program: Option<&Arc<Program>>,
        opts: &PipelineOptions,
    ) -> Result<RcaPipeline, RcaError> {
        let mut build_profile = rca_obs::PhaseProfile::new();
        let (asts, parse_errs) = build_profile.time("phase.parse", || model.parse());
        if let Some(e) = parse_errs.first() {
            return Err(RcaError::from(e));
        }
        let mut coverage = Coverage::new();
        let (filtered, filter_stats) = if opts.skip_coverage {
            // Nothing is filtered, so report the real counts on both
            // sides — callers compare these against coverage-filtered
            // builds, and fabricated zeros would make the comparison lie.
            let modules: usize = asts.iter().map(|f| f.modules.len()).sum();
            let subprograms: usize = asts
                .iter()
                .flat_map(|f| &f.modules)
                .map(|m| m.subprograms.len())
                .sum();
            let stats = FilterStats {
                modules_before: modules,
                modules_after: modules,
                subprograms_before: subprograms,
                subprograms_after: subprograms,
            };
            (asts, stats)
        } else {
            let cfg = RunConfig {
                steps: opts.coverage_steps,
                ..Default::default()
            };
            let out = build_profile.time("phase.coverage", || {
                run_program(program.expect("calibration needs a program"), &cfg, 0.0)
            })?;
            // The id-keyed coverage renders its pairs here, at the
            // calibration edge — no owned string pairs in between.
            for (m, s) in out.coverage.iter() {
                coverage.mark(m, s);
            }
            filter_sources(&asts, &coverage)
        };
        // One identity plane per session: seed the graph's symbol table
        // from the compiled program's interner so program ids and graph
        // ids share one space; a coverage-skipping build starts fresh.
        let seed = match program {
            Some(p) => (**p.symbols()).clone(),
            None => SymbolTable::new(),
        };
        let metagraph = build_profile.time("phase.metagraph", || {
            build_metagraph_seeded(&filtered, &BuildOptions::default(), seed)
        });
        rca_obs::gauge("session.metagraph_nodes").set(metagraph.node_count() as f64);
        let filtered_sources = filtered;
        let components = model.component_map();
        let syms = metagraph.symbols();
        let mut cam_mask = vec![false; syms.module_count()];
        for (i, slot) in cam_mask.iter_mut().enumerate() {
            *slot = matches!(
                components.get(syms.module(ModuleId(i as u32))),
                Some(Component::Cam)
            );
        }
        Ok(RcaPipeline {
            metagraph,
            coverage,
            filter_stats,
            components,
            cam_mask,
            filtered: filtered_sources,
            build_profile,
        })
    }

    /// Wall/alloc profile of the build phases (telemetry channel only).
    pub fn build_profile(&self) -> &rca_obs::PhaseProfile {
        &self.build_profile
    }

    /// The coverage-filtered ASTs the metagraph was built from (the
    /// source universe the static analysis plane must compile to agree
    /// with the graph).
    pub fn filtered_sources(&self) -> &[rca_fortran::SourceFile] {
        &self.filtered
    }

    /// Whether a module belongs to CAM (the paper restricts experiment
    /// subgraphs to CAM modules, §6).
    pub fn is_cam(&self, module: &str) -> bool {
        matches!(self.components.get(module), Some(Component::Cam))
    }

    /// Dense id-keyed CAM check (the slice-scope hot path).
    pub fn is_cam_id(&self, module: ModuleId) -> bool {
        self.cam_mask.get(module.index()).copied().unwrap_or(false)
    }

    /// Maps affected output-file names to internal canonical names via the
    /// I/O registry (paper §5.1 / Table 2).
    pub fn outputs_to_internal(&self, outputs: &[String]) -> Vec<String> {
        self.metagraph.outputs_to_internal(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_model::{generate, ModelConfig};

    #[test]
    fn pipeline_builds_graph() {
        let model = generate(&ModelConfig::test());
        let p = RcaPipeline::build(&model).expect("pipeline");
        assert!(
            p.metagraph.node_count() > 300,
            "{}",
            p.metagraph.node_count()
        );
        assert!(p.metagraph.edge_count() > p.metagraph.node_count() / 2);
        // Table-2 style I/O mapping present.
        let internal = p.outputs_to_internal(&["flds".into(), "taux".into()]);
        assert_eq!(internal, vec!["flwds".to_string(), "wsx".to_string()]);
        assert!(p.is_cam("micro_mg"));
        assert!(!p.is_cam("lnd_main"));
    }

    #[test]
    fn coverage_filter_reduces_nothing_at_test_scale() {
        // Every generated subprogram executes each step, so the filter
        // keeps everything — the reduction machinery is exercised by the
        // dead-code test below.
        let model = generate(&ModelConfig::test());
        let p = RcaPipeline::build(&model).unwrap();
        assert_eq!(p.filter_stats.modules_before, p.filter_stats.modules_after);
    }

    #[test]
    fn dead_subprograms_filtered() {
        // Inject an uncalled subroutine into a module and verify it is
        // dropped from the graph.
        let mut model = generate(&ModelConfig::test());
        let f = model
            .files
            .iter_mut()
            .find(|f| f.name == "microp_aero.F90")
            .unwrap();
        f.source = f.source.replace(
            "contains",
            "contains\n  subroutine never_called(x)\n    real(r8), intent(inout) :: x\n    x = x * deadvar_unique\n  end subroutine never_called\n",
        );
        let p = RcaPipeline::build(&model).unwrap();
        assert_eq!(
            p.filter_stats.subprograms_before,
            p.filter_stats.subprograms_after + 1
        );
        assert!(p
            .metagraph
            .nodes_with_canonical("deadvar_unique")
            .is_empty());
    }

    #[test]
    fn skip_coverage_keeps_everything() {
        let mut model = generate(&ModelConfig::test());
        let f = model
            .files
            .iter_mut()
            .find(|f| f.name == "microp_aero.F90")
            .unwrap();
        f.source = f.source.replace(
            "contains",
            "contains\n  subroutine never_called(x)\n    real(r8), intent(inout) :: x\n    x = x * deadvar_unique\n  end subroutine never_called\n",
        );
        let p = RcaPipeline::build_with(
            &model,
            &PipelineOptions {
                skip_coverage: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!p
            .metagraph
            .nodes_with_canonical("deadvar_unique")
            .is_empty());
    }

    #[test]
    fn skip_coverage_reports_real_subprogram_counts() {
        let model = generate(&ModelConfig::test());
        let filtered = RcaPipeline::build(&model).unwrap();
        let skipped = RcaPipeline::build_with(
            &model,
            &PipelineOptions {
                skip_coverage: true,
                ..Default::default()
            },
        )
        .unwrap();
        // Nothing filtered: before == after, and both are the true count.
        assert!(skipped.filter_stats.subprograms_before > 0);
        assert_eq!(
            skipped.filter_stats.subprograms_before,
            skipped.filter_stats.subprograms_after
        );
        // The unfiltered universe must match what the coverage build saw
        // before it filtered.
        assert_eq!(
            skipped.filter_stats.subprograms_before,
            filtered.filter_stats.subprograms_before
        );
        assert_eq!(
            skipped.filter_stats.modules_before,
            filtered.filter_stats.modules_before
        );
    }
}
