//! Plain-text rendering of tables and refinement traces for the bench
//! harnesses (each bench prints the same rows/series as the paper's tables
//! and figures).

use crate::refine::RefinementReport;
use rca_graph::NodeId;
use rca_metagraph::MetaGraph;

/// Renders a two-column table with a title, paper-style.
pub fn table(title: &str, headers: (&str, &str), rows: &[(String, String)]) -> String {
    let w1 = rows
        .iter()
        .map(|(a, _)| a.len())
        .chain([headers.0.len()])
        .max()
        .unwrap_or(10);
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<w1$}  {}\n", headers.0, headers.1, w1 = w1));
    out.push_str(&format!(
        "{}\n",
        "-".repeat(w1 + 2 + headers.1.len().max(8))
    ));
    for (a, b) in rows {
        out.push_str(&format!("{a:<w1$}  {b}\n"));
    }
    out
}

/// Formats a centrality listing like the paper's REPL output
/// (`(dum__micro_mg_tend, 0.455153)`).
pub fn centrality_listing(mg: &MetaGraph, nodes: &[(NodeId, f64)]) -> String {
    let mut out = String::new();
    for (n, c) in nodes {
        out.push_str(&format!("({}, {:.6})\n", mg.display(*n), c));
    }
    out
}

/// Summarizes a refinement run iteration-by-iteration.
pub fn refinement_trace(mg: &MetaGraph, report: &RefinementReport) -> String {
    let mut out = String::new();
    for (i, it) in report.iterations.iter().enumerate() {
        out.push_str(&format!(
            "iteration {}: subgraph {} nodes / {} edges, communities {:?}, detected={}\n",
            i + 1,
            it.nodes,
            it.edges,
            it.community_sizes,
            it.any_detected
        ));
        for (c, (nodes, det)) in it.sampled.iter().zip(&it.detected).enumerate() {
            let marks: Vec<String> = nodes
                .iter()
                .zip(det)
                .map(|(n, d)| format!("{}{}", mg.display(*n), if *d { "*" } else { "" }))
                .collect();
            out.push_str(&format!("  community {}: {}\n", c + 1, marks.join(", ")));
        }
    }
    out.push_str(&format!(
        "stop: {:?}, final subgraph {} nodes\n",
        report.stop,
        report.final_nodes.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = table(
            "Table 1: Selective AVX2 disablement",
            ("Experiment", "ECT failure rate"),
            &[
                ("AVX2 enabled, all modules".into(), "92%".into()),
                ("AVX2 disabled, all modules".into(), "2%".into()),
            ],
        );
        assert!(t.contains("Table 1"));
        assert!(t.contains("92%"));
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.len() >= 4);
    }
}
