//! The workspace-wide error type for root-cause-analysis runs.
//!
//! Every stage of the paper's pipeline — parsing, calibration runs,
//! ensemble statistics, slicing — can fail, and before this type each
//! failure surfaced as a stringly-typed [`rca_sim::RuntimeError`] that
//! callers pattern-matched by message. [`RcaError`] gives each failure
//! mode a variant, implements [`std::error::Error`] so `?` composes with
//! other error types, and keeps the underlying diagnostics intact.

use rca_fortran::ParseError;
use rca_sim::RuntimeError;
use std::fmt;

/// Any failure of an RCA session or its stages.
#[derive(Debug, Clone)]
pub enum RcaError {
    /// The model source failed to parse (the pipeline requires a clean
    /// AST; the fortran frontend itself is error-tolerant and collects
    /// these per statement).
    Parse {
        /// First parse diagnostic.
        message: String,
        /// 1-based source line of the first diagnostic.
        line: u32,
    },
    /// A simulation run failed (calibration, ensemble, or sampling run).
    Runtime(RuntimeError),
    /// The statistical front end could not produce a usable result
    /// (degenerate ensemble, empty output intersection, ...).
    Stats(String),
    /// None of the affected output names mapped to internal canonical
    /// names through the I/O registry — nothing to slice on.
    UnknownOutputs(Vec<String>),
    /// The induced suspect subgraph was empty for these internal
    /// slicing criteria (all criteria outside the restriction scope).
    EmptySlice(Vec<String>),
    /// Invalid builder/session configuration.
    Config(String),
}

impl fmt::Display for RcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcaError::Parse { message, line } => {
                write!(f, "model does not parse (line {line}): {message}")
            }
            RcaError::Runtime(e) => write!(f, "simulation failed: {e}"),
            RcaError::Stats(msg) => write!(f, "statistics failed: {msg}"),
            RcaError::UnknownOutputs(names) => write!(
                f,
                "no internal variables found for affected outputs {names:?}; \
                 check the model's I/O registry"
            ),
            RcaError::EmptySlice(criteria) => write!(
                f,
                "backward slice is empty for criteria {criteria:?}; \
                 widen the slice scope or the output selection"
            ),
            RcaError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for RcaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RcaError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for RcaError {
    fn from(e: RuntimeError) -> Self {
        RcaError::Runtime(e)
    }
}

impl From<&ParseError> for RcaError {
    fn from(e: &ParseError) -> Self {
        RcaError::Parse {
            message: e.message.clone(),
            line: e.line,
        }
    }
}

impl From<ParseError> for RcaError {
    fn from(e: ParseError) -> Self {
        RcaError::from(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_errors_propagate_with_question_mark() {
        fn failing() -> Result<(), RuntimeError> {
            Err(RuntimeError {
                message: "division by zero".into(),
                context: "micro_mg".into(),
                line: 42,
            })
        }
        fn wrapped() -> Result<(), RcaError> {
            failing()?;
            Ok(())
        }
        let err = wrapped().unwrap_err();
        assert!(matches!(err, RcaError::Runtime(_)));
        assert!(err.to_string().contains("division by zero"));
        // source() exposes the original for error-chain walkers.
        let source = std::error::Error::source(&err).expect("source");
        assert!(source.to_string().contains("micro_mg"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = RcaError::from(ParseError::new(7, "unexpected token"));
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn display_is_actionable() {
        let e = RcaError::UnknownOutputs(vec!["made_up".into()]);
        assert!(e.to_string().contains("made_up"));
        let e = RcaError::EmptySlice(vec!["flwds".into()]);
        assert!(e.to_string().contains("flwds"));
    }
}
