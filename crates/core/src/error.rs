//! The workspace-wide error type for root-cause-analysis runs.
//!
//! Every stage of the paper's pipeline — parsing, calibration runs,
//! ensemble statistics, slicing — can fail, and before this type each
//! failure surfaced as a stringly-typed [`rca_sim::RuntimeError`] that
//! callers pattern-matched by message. [`RcaError`] gives each failure
//! mode a variant, implements [`std::error::Error`] so `?` composes with
//! other error types, and keeps the underlying diagnostics intact.

use rca_fortran::ParseError;
use rca_sim::RuntimeError;
use std::fmt;

/// Any failure of an RCA session or its stages.
#[derive(Debug, Clone)]
pub enum RcaError {
    /// The model source failed to parse (the pipeline requires a clean
    /// AST; the fortran frontend itself is error-tolerant and collects
    /// these per statement).
    Parse {
        /// First parse diagnostic.
        message: String,
        /// 1-based source line of the first diagnostic.
        line: u32,
    },
    /// A simulation run failed (calibration, ensemble, or sampling run).
    Runtime(RuntimeError),
    /// The statistical front end could not produce a usable result
    /// (degenerate ensemble, empty output intersection, ...).
    Stats(String),
    /// None of the affected output names mapped to internal canonical
    /// names through the I/O registry — nothing to slice on.
    UnknownOutputs(Vec<String>),
    /// The induced suspect subgraph was empty for these internal
    /// slicing criteria (all criteria outside the restriction scope).
    EmptySlice(Vec<String>),
    /// Invalid builder/session configuration.
    Config(String),
    /// A run budget was exhausted (statement fuel or session wall
    /// clock): the run was killed, not hung. Always retryable — the
    /// computation was cut short by the environment, not wrong.
    Budget {
        /// Which budget tripped.
        kind: BudgetKind,
        /// What was exhausted, where (step/member/stage context).
        detail: String,
    },
}

/// Which run budget was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Per-run statement fuel (`RunConfig::fuel`).
    Fuel,
    /// Session wall-clock budget (`RcaSessionBuilder::wall_budget`).
    Wall,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Fuel => "fuel",
            BudgetKind::Wall => "wall-clock",
        })
    }
}

impl RcaError {
    /// Whether retrying the same work could plausibly succeed.
    ///
    /// Budget exhaustion and injected runtime faults (the
    /// [`rca_sim::FAULT_CONTEXT`] marker) are environmental — a retry
    /// with more budget or without the fault is meaningful. Parse,
    /// statistics, and configuration failures are deterministic
    /// properties of the input and retrying is wasted work.
    pub fn is_retryable(&self) -> bool {
        match self {
            RcaError::Budget { .. } => true,
            RcaError::Runtime(e) => e.context == rca_sim::FAULT_CONTEXT,
            _ => false,
        }
    }

    /// Stable kebab-case slug naming the variant — the `kind` field of
    /// the typed scorecard error payload and of `scenario.error` events.
    pub fn kind_slug(&self) -> &'static str {
        match self {
            RcaError::Parse { .. } => "parse",
            RcaError::Runtime(_) => "runtime",
            RcaError::Stats(_) => "stats",
            RcaError::UnknownOutputs(_) => "unknown-outputs",
            RcaError::EmptySlice(_) => "empty-slice",
            RcaError::Config(_) => "config",
            RcaError::Budget { .. } => "budget",
        }
    }
}

impl fmt::Display for RcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcaError::Parse { message, line } => {
                write!(f, "model does not parse (line {line}): {message}")
            }
            RcaError::Runtime(e) => write!(f, "simulation failed: {e}"),
            RcaError::Stats(msg) => write!(f, "statistics failed: {msg}"),
            RcaError::UnknownOutputs(names) => write!(
                f,
                "no internal variables found for affected outputs {names:?}; \
                 check the model's I/O registry"
            ),
            RcaError::EmptySlice(criteria) => write!(
                f,
                "backward slice is empty for criteria {criteria:?}; \
                 widen the slice scope or the output selection"
            ),
            RcaError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            RcaError::Budget { kind, detail } => {
                write!(f, "run budget exhausted ({kind}): {detail}")
            }
        }
    }
}

impl std::error::Error for RcaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RcaError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for RcaError {
    fn from(e: RuntimeError) -> Self {
        // Fuel exhaustion is tagged at the executor with a context
        // marker; lift it into the typed budget taxonomy here so no
        // caller ever string-matches the message.
        if e.context == rca_sim::BUDGET_CONTEXT {
            RcaError::Budget {
                kind: BudgetKind::Fuel,
                detail: e.message,
            }
        } else {
            RcaError::Runtime(e)
        }
    }
}

impl From<&ParseError> for RcaError {
    fn from(e: &ParseError) -> Self {
        RcaError::Parse {
            message: e.message.clone(),
            line: e.line,
        }
    }
}

impl From<ParseError> for RcaError {
    fn from(e: ParseError) -> Self {
        RcaError::from(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_errors_propagate_with_question_mark() {
        fn failing() -> Result<(), RuntimeError> {
            Err(RuntimeError {
                message: "division by zero".into(),
                context: "micro_mg".into(),
                line: 42,
            })
        }
        fn wrapped() -> Result<(), RcaError> {
            failing()?;
            Ok(())
        }
        let err = wrapped().unwrap_err();
        assert!(matches!(err, RcaError::Runtime(_)));
        assert!(err.to_string().contains("division by zero"));
        // source() exposes the original for error-chain walkers.
        let source = std::error::Error::source(&err).expect("source");
        assert!(source.to_string().contains("micro_mg"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = RcaError::from(ParseError::new(7, "unexpected token"));
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn display_is_actionable() {
        let e = RcaError::UnknownOutputs(vec!["made_up".into()]);
        assert!(e.to_string().contains("made_up"));
        let e = RcaError::EmptySlice(vec!["flwds".into()]);
        assert!(e.to_string().contains("flwds"));
    }

    #[test]
    fn budget_context_lifts_into_typed_taxonomy() {
        let e = RcaError::from(RuntimeError {
            message: "statement fuel budget of 100 exhausted at step 3 (member 7)".into(),
            context: rca_sim::BUDGET_CONTEXT.into(),
            line: 0,
        });
        assert!(matches!(
            e,
            RcaError::Budget {
                kind: BudgetKind::Fuel,
                ..
            }
        ));
        assert!(e.is_retryable());
        assert_eq!(e.kind_slug(), "budget");
        assert!(e.to_string().contains("fuel"));
        assert!(e.to_string().contains("member 7"));
    }

    #[test]
    fn retryability_follows_the_failure_cause() {
        let fault = RcaError::from(RuntimeError {
            message: "injected member-abort fault at step 2 (member 1, attempt 0)".into(),
            context: rca_sim::FAULT_CONTEXT.into(),
            line: 0,
        });
        assert!(fault.is_retryable(), "injected faults are environmental");
        assert_eq!(fault.kind_slug(), "runtime");
        let wall = RcaError::Budget {
            kind: BudgetKind::Wall,
            detail: "session wall budget of 10ms exceeded".into(),
        };
        assert!(wall.is_retryable());
        let genuine = RcaError::from(RuntimeError {
            message: "division by zero".into(),
            context: "micro_mg".into(),
            line: 42,
        });
        assert!(!genuine.is_retryable(), "model errors are deterministic");
        assert!(!RcaError::Stats("degenerate".into()).is_retryable());
        assert!(!RcaError::Config("bad".into()).is_retryable());
    }
}
