//! # rca-core — the paper's root-cause-analysis contribution
//!
//! Ties every substrate together into the pipeline of Milroy et al.
//! (HPDC 2019), Fig. 1, behind the [`RcaSession`] facade:
//!
//! ```no_run
//! use rca_core::{ExperimentSetup, OracleKind, RcaSession};
//! use rca_model::{generate, Experiment, ModelConfig};
//!
//! let model = generate(&ModelConfig::test());
//! let session = RcaSession::builder(&model)
//!     .setup(ExperimentSetup::quick())
//!     .oracle(OracleKind::Reachability)
//!     .build()?;
//! let diagnosis = session.diagnose(Experiment::GoffGratch)?;
//! println!("{}", diagnosis.render());
//! # Ok::<(), rca_core::RcaError>(())
//! ```
//!
//! The stages behind the facade (each also reachable through the typed
//! stage handles in [`session`]):
//!
//! 1. [`experiments`]: run ensemble + experimental simulations, apply the
//!    UF-ECT (Pass/Fail), and select the most-affected output variables by
//!    standardized median distance and lasso (§3).
//! 2. [`pipeline`]: coverage-filter the source (hybrid slicing's dynamic
//!    information) and compile it into the variable digraph (§4).
//! 3. [`mod@slice`]: BFS shortest-path backward slice on canonical names; the
//!    union of path nodes induces the suspect subgraph (§5.1).
//! 4. [`mod@refine`]: **Algorithm 5.4** — Girvan–Newman communities,
//!    per-community eigenvector in-centrality, runtime sampling, and k-ary
//!    shrinkage until the bug is instrumented or the graph is small enough
//!    to read (§5.2–5.4).
//! 5. [`oracle`]: the sampling step behind the object-safe [`Oracle`]
//!    trait — the paper's reachability simulation and real interpreter
//!    instrumentation are interchangeable evidence sources.
//! 6. [`module_rank`]: module-quotient centrality and the selective AVX2
//!    disablement policies of Table 1 (§6.5).
//!
//! Failures carry the workspace-wide [`RcaError`] ([`error`]).

pub mod error;
pub mod experiments;
pub mod module_rank;
pub mod oracle;
pub mod pipeline;
pub mod refine;
pub mod report;
pub mod session;
pub mod slice;

pub use error::{BudgetKind, RcaError};
pub use experiments::{
    experiment_configs, DegradedEnsemble, EnsembleHealth, EnsembleStats, ExperimentData,
    ExperimentSetup, RetryPolicy,
};
pub use module_rank::{avx2_policy, DisablementPolicy, ModuleRanking};
pub use oracle::{Oracle, ReachabilityOracle, RuntimeSampler};
pub use pipeline::{PipelineOptions, RcaPipeline};
pub use rca_ident::{ModuleId, OutputId, SymbolTable, VarId};
pub use refine::{refine, IterationReport, RefineOptions, RefinementReport, StopReason};
pub use report::{centrality_listing, refinement_trace, table};
pub use session::{
    Diagnosis, OracleKind, RcaSession, RcaSessionBuilder, Refined, Scenario, SliceScope, Sliced,
    Statistics,
};
pub use slice::{backward_slice, backward_slice_names, reinduce, Slice};
