//! # rca-ident — the workspace-wide interned identity plane
//!
//! Every layer between the simulator and the final diagnosis speaks the
//! same three dense identifier spaces:
//!
//! - [`VarId`] — variable/canonical names (module variables, subprogram
//!   locals, derived-type elements, localized intrinsic call sites);
//! - [`ModuleId`] — Fortran module names;
//! - [`OutputId`] — history output-file names (the `outfld` registry).
//!
//! A [`SymbolTable`] owns the three interners. Names are resolved to ids
//! **once** — when a model variant is compiled (`rca_sim`) and when the
//! metagraph is built (`rca_metagraph`) — and everything downstream
//! (slicing criteria, oracle queries, ensemble/ECT matrix assembly,
//! campaign ground-truth matching) operates on dense `u32` identities
//! with `Vec`-backed indexes. Strings appear only at the two edges:
//! parsing on the way in, `Diagnosis` rendering/JSON on the way out.
//!
//! ## Ownership rules
//!
//! The table is **append-only**: interning never invalidates an existing
//! id, so a table seeded from a compiled `Program`'s interner can be
//! extended by the metagraph builder (derived-type fields, per-line
//! intrinsic nodes) while every program-assigned id stays valid. An
//! `RcaSession` builds one table per session this way and shares it
//! (`Arc`) across the pipeline, the cached ensemble, the oracles, and
//! campaign scoring — the "one workspace-wide `SymbolTable`".

use std::collections::HashMap;
use std::sync::Arc;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Dense index for `Vec`-backed tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_newtype!(
    /// Dense id of a variable / canonical name.
    VarId
);
id_newtype!(
    /// Dense id of a Fortran module.
    ModuleId
);
id_newtype!(
    /// Dense id of a history output-file name (`outfld` registry).
    OutputId
);

/// One append-only string interner: `name → u32` and `u32 → Arc<str>`.
#[derive(Debug, Clone, Default)]
struct Interner {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let a: Arc<str> = Arc::from(name);
        self.names.push(a.clone());
        self.index.insert(a, id);
        id
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    fn resolve(&self, id: u32) -> &Arc<str> {
        &self.names[id as usize]
    }
}

/// The workspace-wide symbol table: three interned namespaces with dense
/// ids. Cheap to clone while still unsealed (append-only extension), then
/// shared via `Arc` for the lifetime of a session.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    vars: Interner,
    modules: Interner,
    outputs: Interner,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    // ----- variables ------------------------------------------------------

    /// Interns a variable/canonical name (idempotent).
    pub fn intern_var(&mut self, name: &str) -> VarId {
        VarId(self.vars.intern(name))
    }

    /// Id of an already-interned variable name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.lookup(name).map(VarId)
    }

    /// Name of a variable id.
    pub fn var(&self, id: VarId) -> &str {
        self.vars.resolve(id.0)
    }

    /// Shared `Arc<str>` of a variable id (refcount bump, no copy).
    pub fn var_arc(&self, id: VarId) -> Arc<str> {
        self.vars.resolve(id.0).clone()
    }

    /// Number of interned variable names.
    pub fn var_count(&self) -> usize {
        self.vars.names.len()
    }

    // ----- modules --------------------------------------------------------

    /// Interns a module name (idempotent).
    pub fn intern_module(&mut self, name: &str) -> ModuleId {
        ModuleId(self.modules.intern(name))
    }

    /// Id of an already-interned module name.
    pub fn module_id(&self, name: &str) -> Option<ModuleId> {
        self.modules.lookup(name).map(ModuleId)
    }

    /// Name of a module id.
    pub fn module(&self, id: ModuleId) -> &str {
        self.modules.resolve(id.0)
    }

    /// Shared `Arc<str>` of a module id.
    pub fn module_arc(&self, id: ModuleId) -> Arc<str> {
        self.modules.resolve(id.0).clone()
    }

    /// Number of interned module names.
    pub fn module_count(&self) -> usize {
        self.modules.names.len()
    }

    // ----- outputs --------------------------------------------------------

    /// Interns a history output name (idempotent).
    pub fn intern_output(&mut self, name: &str) -> OutputId {
        OutputId(self.outputs.intern(name))
    }

    /// Id of an already-interned output name.
    pub fn output_id(&self, name: &str) -> Option<OutputId> {
        self.outputs.lookup(name).map(OutputId)
    }

    /// Name of an output id.
    pub fn output(&self, id: OutputId) -> &str {
        self.outputs.resolve(id.0)
    }

    /// Shared `Arc<str>` of an output id.
    pub fn output_arc(&self, id: OutputId) -> Arc<str> {
        self.outputs.resolve(id.0).clone()
    }

    /// Number of interned output names.
    pub fn output_count(&self) -> usize {
        self.outputs.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern_var("wsub");
        let b = t.intern_var("flwds");
        let a2 = t.intern_var("wsub");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.var(a), "wsub");
        assert_eq!(t.var_count(), 2);
    }

    #[test]
    fn namespaces_are_independent() {
        let mut t = SymbolTable::new();
        let v = t.intern_var("micro_mg");
        let m = t.intern_module("micro_mg");
        let o = t.intern_output("micro_mg");
        assert_eq!(v.index(), 0);
        assert_eq!(m.index(), 0);
        assert_eq!(o.index(), 0);
        assert_eq!(t.module(m), "micro_mg");
        assert_eq!(t.output(o), "micro_mg");
    }

    #[test]
    fn extension_preserves_existing_ids() {
        let mut base = SymbolTable::new();
        let v = base.intern_var("tlat");
        let m = base.intern_module("micro_mg");
        let mut extended = base.clone();
        let extra = extended.intern_var("omega_l42");
        assert_eq!(extended.var_id("tlat"), Some(v));
        assert_eq!(extended.module_id("micro_mg"), Some(m));
        assert_ne!(extra, v);
        // The seed table is untouched.
        assert_eq!(base.var_count(), 1);
    }

    #[test]
    fn lookup_of_unknown_names_is_none() {
        let t = SymbolTable::new();
        assert_eq!(t.var_id("nope"), None);
        assert_eq!(t.module_id("nope"), None);
        assert_eq!(t.output_id("nope"), None);
    }

    #[test]
    fn arcs_share_storage() {
        let mut t = SymbolTable::new();
        let v = t.intern_var("qvlat");
        let a = t.var_arc(v);
        let b = t.var_arc(v);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
