//! # rca-campaign — fault-injection campaigns for the RCA pipeline
//!
//! The paper evaluates root-cause analysis on six hand-written experiments
//! (WSUBBUG, RAND-MT, GOFFGRATCH, AVX2, RANDOMBUG, DYN3BUG). This crate
//! generalizes that evaluation into a **campaign engine**: hundreds of
//! seeded, deterministic defect scenarios with known ground truth, fanned
//! out across threads through one shared [`rca_core::RcaSession`], scored
//! into a localization benchmark.
//!
//! Three layers:
//!
//! 1. [`mutate`] — the mutation engine: constant perturbation, operator
//!    swap, comparison flip at [`rca_model::patch_sites`] sites, plus
//!    PRNG substitution and per-module FMA toggles; every scenario is a
//!    pure function of `(model, seed, index)` and carries its
//!    ground-truth [`rca_model::BugSite`]s / modules.
//! 2. [`runner`] — the batch runner: metagraph and control ensemble are
//!    built once, then N scenarios run in parallel (`rayon`) through
//!    [`rca_core::RcaSession::diagnose_scenario`]; per-scenario failures
//!    are absorbed, never fatal.
//! 3. [`scorecard`] — localization metrics: verdict accuracy (mutants
//!    flagged / cleans passing), located + module-in-final-slice rates,
//!    slice-size reduction, iterations, throughput; rendered as text and
//!    exported as deterministic JSON (same seed ⇒ byte-identical
//!    artifact). Absorbed per-scenario failures carry the typed
//!    [`AbsorbedError`] taxonomy (kind slug + retryability), and
//!    scenarios diagnosed from a degraded ensemble quorum are flagged.
//! 4. [`checkpoint`] — resumable campaigns: an append-only JSONL
//!    checkpoint keyed by `(seed, plan digest, index)` streams results
//!    as they complete; a restarted campaign skips what already ran and
//!    its merged scorecard is byte-identical to an uninterrupted run's.
//!
//! A fourth axis, orthogonal to mutation: `CampaignOptions::runtime_faults`
//! seeds a per-scenario [`rca_sim::FaultPlan`] (NaN/Inf poisoning, stuck
//! values, member aborts) that the executor injects into experimental
//! ensemble members mid-run — the chaos harness for the pipeline's
//! graceful-degradation path (member retry, quarantine, quorum fitting).
//!
//! # Quickstart
//!
//! ```no_run
//! use rca_campaign::{run_campaign, CampaignOptions, RunnerOptions};
//! use rca_model::{generate, ModelConfig};
//!
//! let model = generate(&ModelConfig::test());
//! let opts = CampaignOptions {
//!     scenarios: 50,
//!     seed: 0xCAFE,
//!     include_paper: true,
//!     ..Default::default()
//! };
//! let card = run_campaign(&model, &opts, &RunnerOptions::default())?;
//! println!("{}", card.render());                       // human report
//! let json = serde_json::to_string_pretty(&card)?;      // machine export
//! assert!(card.summary().localization_rate > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or from the shell:
//!
//! ```text
//! rca-campaign --scenarios 50 --seed 51966 --paper --json scorecard.json
//! ```

pub mod checkpoint;
pub mod mutate;
pub mod runner;
pub mod scorecard;

pub use checkpoint::{load_checkpoint, plan_digest, Checkpoint};
pub use mutate::{
    campaign_sites, mutate_site, paper_scenario, plan_campaign, CampaignOptions, CampaignRng,
    CampaignScenario, MutationKind, ScenarioClass,
};
pub use runner::{run_campaign, run_scenario, RunnerOptions};
pub use scorecard::{AbsorbedError, ScenarioResult, Scorecard, Summary};
