//! The batch runner: one session, N scenarios, all cores.
//!
//! Builds the experiment-independent state once — parse + **compile**
//! (the slot-indexed program), coverage calibration, metagraph
//! compilation, **and the control ensemble + fitted ECT** (prewarmed
//! before the fan-out so no worker pays for it) — then drives every
//! planned scenario through [`RcaSession::diagnose_scenario`] in
//! parallel. Every ensemble under the hood — the shared control
//! ensemble and each scenario's experimental runs — fills one columnar
//! `rca_sim::EnsembleRuns` block through pooled, reset-reused executors,
//! so growing `--scenarios` or the ensemble size N pays for arithmetic,
//! not for per-run allocation and matrix re-assembly. The session's content-addressed program cache means clean
//! scenarios and config-only mutants (PRNG swap, FMA toggle) reuse the
//! already-compiled base program, and each source mutant is parsed and
//! compiled exactly once no matter how many runs its diagnosis needs.
//! Scenario results come back in plan order regardless of thread count,
//! so campaign output is order-deterministic; `RAYON_NUM_THREADS=1`
//! gives the sequential baseline the throughput bench compares against.

use crate::mutate::{plan_campaign, CampaignOptions, CampaignScenario};
use crate::scorecard::{ScenarioResult, Scorecard};
use rayon::prelude::*;
use rca_core::{OracleKind, RcaError, RcaSession};
use rca_model::ModelSource;
use std::sync::Arc;
use std::time::Instant;

/// Session-level knobs for a campaign run.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Statistical campaign parameters for every scenario.
    pub setup: rca_core::ExperimentSetup,
    /// Evidence source for refinement.
    pub oracle: OracleKind,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            setup: rca_core::ExperimentSetup::quick(),
            oracle: OracleKind::Reachability,
        }
    }
}

/// Plans and runs a whole campaign over `model`, returning the scorecard.
pub fn run_campaign(
    model: &ModelSource,
    opts: &CampaignOptions,
    runner: &RunnerOptions,
) -> Result<Scorecard, RcaError> {
    let session = RcaSession::builder(model)
        .setup(runner.setup.clone())
        .oracle(runner.oracle)
        .build()?;
    // Pay for the shared control ensemble before the fan-out.
    session.ensemble()?;
    let model_arc = Arc::new(model.clone());
    let plan = plan_campaign(&model_arc, &session, opts);
    rca_obs::counter_inc!("campaign.scenarios", plan.len() as u64);
    rca_obs::event("campaign.plan", &[("scenarios", plan.len().into())]);
    let started = Instant::now();
    // Trace sinks are thread-scoped, so a traced campaign runs its
    // scenarios sequentially on the installing thread — every phase of
    // every scenario lands in one deterministic trace. Results are
    // identical either way (scenario diagnoses are independent and
    // collected in plan order); the CI trace-smoke gate asserts the
    // scorecard bytes match the parallel no-trace run.
    let results: Vec<ScenarioResult> = if rca_obs::tracing_active() {
        plan.iter().map(|cs| run_scenario(&session, cs)).collect()
    } else {
        plan.par_iter()
            .map(|cs| run_scenario(&session, cs))
            .collect()
    };
    Ok(Scorecard::new(results, started.elapsed().as_secs_f64()))
}

/// Runs one planned scenario through the session pipeline, absorbing
/// per-scenario failures into the result (a campaign never aborts on one
/// broken mutant).
pub fn run_scenario(session: &RcaSession<'_>, cs: &CampaignScenario) -> ScenarioResult {
    let expect_fail = cs.class.expects_fail();
    let t0 = Instant::now();
    let outcome = session.diagnose_scenario(&cs.scenario);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    match outcome {
        Ok(d) => {
            // Scorecard matching runs on interned ids: the injected module
            // resolves through the session table once, then membership is
            // a binary search over the diagnosis' id-sorted module set.
            let module_in_final = cs
                .injected_module
                .as_deref()
                .and_then(|m| session.symbols().module_id(m))
                .is_some_and(|m| d.suspects_module_id(m));
            if rca_obs::tracing_active() {
                rca_obs::event(
                    "scenario",
                    &[
                        ("name", cs.scenario.name.as_str().into()),
                        ("kind", cs.class.slug().into()),
                        ("verdict", d.verdict.to_string().into()),
                        ("located", d.located().into()),
                        ("iterations", d.iterations().into()),
                        ("slice_nodes", d.slice_nodes.into()),
                    ],
                );
            }
            let profile = d.profile().clone();
            ScenarioResult {
                name: cs.scenario.name.clone(),
                kind: cs.class.slug().to_string(),
                injected_module: cs.injected_module.clone(),
                detail: cs.detail.clone(),
                expect_fail,
                verdict: Some(d.verdict),
                located: d.located(),
                module_in_final,
                slice_nodes: d.slice_nodes,
                final_suspects: d.suspects.len(),
                iterations: d.iterations(),
                stop: d.stop(),
                error: None,
                wall_ms,
                profile,
            }
        }
        Err(e) => {
            // Surface the absorbed failure as a structured event —
            // silently folding it into the scorecard denominator hides
            // broken mutants from anyone watching the trace.
            rca_obs::counter_inc!("campaign.errors", 1);
            rca_obs::event(
                "scenario.error",
                &[
                    ("name", cs.scenario.name.as_str().into()),
                    ("kind", cs.class.slug().into()),
                    ("error", e.to_string().into()),
                ],
            );
            ScenarioResult {
                name: cs.scenario.name.clone(),
                kind: cs.class.slug().to_string(),
                injected_module: cs.injected_module.clone(),
                detail: cs.detail.clone(),
                expect_fail,
                verdict: None,
                located: false,
                module_in_final: false,
                slice_nodes: 0,
                final_suspects: 0,
                iterations: 0,
                stop: None,
                error: Some(e.to_string()),
                wall_ms,
                profile: rca_obs::PhaseProfile::new(),
            }
        }
    }
}
