//! The batch runner: one session, N scenarios, all cores.
//!
//! Builds the experiment-independent state once — parse + **compile**
//! (the slot-indexed program), coverage calibration, metagraph
//! compilation, **and the control ensemble + fitted ECT** (prewarmed
//! before the fan-out so no worker pays for it) — then drives every
//! planned scenario through [`RcaSession::diagnose_scenario`] in
//! parallel. Every ensemble under the hood — the shared control
//! ensemble and each scenario's experimental runs — fills one columnar
//! `rca_sim::EnsembleRuns` block through pooled, reset-reused executors,
//! so growing `--scenarios` or the ensemble size N pays for arithmetic,
//! not for per-run allocation and matrix re-assembly. The session's content-addressed program cache means clean
//! scenarios and config-only mutants (PRNG swap, FMA toggle) reuse the
//! already-compiled base program, and each source mutant is parsed and
//! compiled exactly once no matter how many runs its diagnosis needs.
//! Scenario results come back in plan order regardless of thread count,
//! so campaign output is order-deterministic; `RAYON_NUM_THREADS=1`
//! gives the sequential baseline the throughput bench compares against.
//!
//! Campaigns are also **resumable**: with [`RunnerOptions::checkpoint`]
//! set, finished scenarios stream to an append-only JSONL file as they
//! complete ([`crate::checkpoint`]), restored results are merged back in
//! plan order on restart, and the merged scorecard is byte-identical to
//! an uninterrupted run's.

use crate::checkpoint::{load_checkpoint, plan_digest, Checkpoint};
use crate::mutate::{plan_campaign, CampaignOptions, CampaignScenario};
use crate::scorecard::{AbsorbedError, ScenarioResult, Scorecard};
use rayon::prelude::*;
use rca_core::{OracleKind, RcaError, RcaSession};
use rca_model::ModelSource;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Session-level knobs for a campaign run.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Statistical campaign parameters for every scenario.
    pub setup: rca_core::ExperimentSetup,
    /// Evidence source for refinement.
    pub oracle: OracleKind,
    /// Runtime-oracle fast path (slice-specialized programs, per-node
    /// memoization, early exit). On by default; `--oracle-fastpath off`
    /// forces full-program queries so the byte-identity fence can compare
    /// the two scorecards.
    pub oracle_fastpath: bool,
    /// Append-only JSONL checkpoint path. When set, every finished
    /// scenario is streamed to this file as it completes, and scenarios
    /// already recorded there (for the same seed and plan digest) are
    /// restored instead of re-run — an interrupted campaign resumes
    /// where it stopped, and the merged scorecard is byte-identical to
    /// an uninterrupted run's.
    pub checkpoint: Option<PathBuf>,
    /// Diagnose at most this many **new** scenarios (checkpoint-restored
    /// ones don't count), then stop. The deterministic interruption
    /// primitive: `--checkpoint c.jsonl --stop-after K` followed by a
    /// plain `--checkpoint c.jsonl` rerun is exactly a kill-and-resume.
    pub stop_after: Option<usize>,
    /// Per-diagnosis wall-clock budget, enforced at stage boundaries
    /// inside the session ([`rca_core::RcaError::Budget`], retryable).
    pub wall_budget: Option<Duration>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            setup: rca_core::ExperimentSetup::quick(),
            oracle: OracleKind::Reachability,
            oracle_fastpath: true,
            checkpoint: None,
            stop_after: None,
            wall_budget: None,
        }
    }
}

/// Plans and runs a whole campaign over `model`, returning the scorecard.
pub fn run_campaign(
    model: &ModelSource,
    opts: &CampaignOptions,
    runner: &RunnerOptions,
) -> Result<Scorecard, RcaError> {
    let mut builder = RcaSession::builder(model)
        .setup(runner.setup.clone())
        .oracle(runner.oracle)
        .oracle_fastpath(runner.oracle_fastpath);
    if let Some(budget) = runner.wall_budget {
        builder = builder.wall_budget(budget);
    }
    let session = builder.build()?;
    // Pay for the shared control ensemble before the fan-out.
    session.ensemble()?;
    let model_arc = Arc::new(model.clone());
    let plan = plan_campaign(&model_arc, &session, opts);
    rca_obs::counter_inc!("campaign.scenarios", plan.len() as u64);
    rca_obs::event("campaign.plan", &[("scenarios", plan.len().into())]);

    // Checkpoint restore: results recorded under the identical (seed,
    // plan digest) key are reused; everything else runs fresh.
    let digest = plan_digest(opts, &plan);
    let ckpt_io = |e: std::io::Error| RcaError::Config(format!("checkpoint unusable: {e}"));
    let (mut completed, ckpt) = match &runner.checkpoint {
        Some(path) => {
            let completed = load_checkpoint(path, opts.seed, digest).map_err(ckpt_io)?;
            let ckpt = Checkpoint::open(path, opts.seed, digest).map_err(ckpt_io)?;
            (completed, Some(ckpt))
        }
        None => (HashMap::new(), None),
    };
    if !completed.is_empty() {
        rca_obs::counter_inc!("campaign.resumed_scenarios", completed.len() as u64);
        rca_obs::event("campaign.resume", &[("restored", completed.len().into())]);
    }
    let mut pending: Vec<usize> = (0..plan.len())
        .filter(|i| !completed.contains_key(i))
        .collect();
    if let Some(cap) = runner.stop_after {
        pending.truncate(cap);
    }

    let started = Instant::now();
    // A checkpoint-append failure means resumability is silently broken
    // — collect the first one and fail the campaign loudly after the
    // fan-out instead of pretending the file is sound.
    let append_err: Mutex<Option<String>> = Mutex::new(None);
    let run_one = |&i: &usize| {
        let result = run_scenario(&session, &plan[i]);
        if let Some(c) = &ckpt {
            if let Err(e) = c.record(i, &result) {
                let mut slot = append_err.lock().expect("append-error mutex poisoned");
                slot.get_or_insert_with(|| e.to_string());
            }
        }
        (i, result)
    };
    // Trace sinks are thread-scoped, so a traced campaign runs its
    // scenarios sequentially on the installing thread — every phase of
    // every scenario lands in one deterministic trace. Results are
    // identical either way (scenario diagnoses are independent and
    // collected in plan order); the CI trace-smoke gate asserts the
    // scorecard bytes match the parallel no-trace run.
    let mut fresh: HashMap<usize, ScenarioResult> = if rca_obs::tracing_active() {
        pending.iter().map(run_one).collect()
    } else {
        pending.par_iter().map(run_one).collect()
    };
    if let Some(e) = append_err
        .into_inner()
        .expect("append-error mutex poisoned")
    {
        return Err(RcaError::Config(format!("checkpoint append failed: {e}")));
    }
    // Merge restored and fresh results in plan order. With `stop_after`
    // the tail indices are simply absent — the scorecard covers what has
    // run so far, and the next resume fills in the rest.
    let results: Vec<ScenarioResult> = (0..plan.len())
        .filter_map(|i| completed.remove(&i).or_else(|| fresh.remove(&i)))
        .collect();
    Ok(Scorecard::new(results, started.elapsed().as_secs_f64()))
}

/// Runs one planned scenario through the session pipeline, absorbing
/// per-scenario failures into the result (a campaign never aborts on one
/// broken mutant).
pub fn run_scenario(session: &RcaSession<'_>, cs: &CampaignScenario) -> ScenarioResult {
    let expect_fail = cs.class.expects_fail();
    let t0 = Instant::now();
    let outcome = session.diagnose_scenario(&cs.scenario);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    match outcome {
        Ok(d) => {
            // Scorecard matching runs on interned ids: the injected module
            // resolves through the session table once, then membership is
            // a binary search over the diagnosis' id-sorted module set.
            let module_in_final = cs
                .injected_module
                .as_deref()
                .and_then(|m| session.symbols().module_id(m))
                .is_some_and(|m| d.suspects_module_id(m));
            let degraded = d.degraded.is_some();
            if degraded {
                rca_obs::counter_inc!("campaign.degraded_scenarios", 1);
            }
            if rca_obs::tracing_active() {
                rca_obs::event(
                    "scenario",
                    &[
                        ("name", cs.scenario.name.as_str().into()),
                        ("kind", cs.class.slug().into()),
                        ("verdict", d.verdict.to_string().into()),
                        ("located", d.located().into()),
                        ("iterations", d.iterations().into()),
                        ("slice_nodes", d.slice_nodes.into()),
                    ],
                );
            }
            let profile = d.profile().clone();
            ScenarioResult {
                name: cs.scenario.name.clone(),
                kind: cs.class.slug().to_string(),
                injected_module: cs.injected_module.clone(),
                detail: cs.detail.clone(),
                expect_fail,
                verdict: Some(d.verdict),
                located: d.located(),
                module_in_final,
                slice_nodes: d.slice_nodes,
                final_suspects: d.suspects.len(),
                iterations: d.iterations(),
                stop: d.stop(),
                degraded,
                error: None,
                wall_ms,
                profile,
            }
        }
        Err(e) => {
            // Surface the absorbed failure as a structured event —
            // silently folding it into the scorecard denominator hides
            // broken mutants from anyone watching the trace. The typed
            // payload carries the taxonomy (slug + retryability), so
            // trace consumers never string-match messages either.
            rca_obs::counter_inc!("campaign.errors", 1);
            rca_obs::event(
                "scenario.error",
                &[
                    ("name", cs.scenario.name.as_str().into()),
                    ("kind", cs.class.slug().into()),
                    ("error_kind", e.kind_slug().into()),
                    ("retryable", e.is_retryable().into()),
                    ("error", e.to_string().into()),
                ],
            );
            ScenarioResult {
                name: cs.scenario.name.clone(),
                kind: cs.class.slug().to_string(),
                injected_module: cs.injected_module.clone(),
                detail: cs.detail.clone(),
                expect_fail,
                verdict: None,
                located: false,
                module_in_final: false,
                slice_nodes: 0,
                final_suspects: 0,
                iterations: 0,
                stop: None,
                degraded: false,
                error: Some(AbsorbedError::from_rca(&e)),
                wall_ms,
                profile: rca_obs::PhaseProfile::new(),
            }
        }
    }
}
