//! The mutation engine: seeded, deterministic defect injection.
//!
//! Turns the paper's six hand-written experiments into an unbounded family
//! of scenarios with known ground truth. Three **source-level** operators
//! perturb one assignment line enumerated by [`rca_model::patch_sites`]
//! (the mutated model still parses through the full front end), and two
//! **configuration-level** operators reproduce the paper's RAND-MT and
//! AVX2 mechanisms at arbitrary targets:
//!
//! - [`MutationKind::ConstantPerturb`] — scale a float literal (the
//!   WSUBBUG/GOFFGRATCH/DYN3BUG mechanism at a random site);
//! - [`MutationKind::OperatorSwap`] — `*`→`+` or `-`→`+` in one RHS;
//! - [`MutationKind::ComparisonFlip`] — `max(`↔`min(` (a branch-polarity
//!   flip: both intrinsics are comparison-selects);
//! - [`MutationKind::PrngSwap`] — substitute the Mersenne Twister for the
//!   default KISS generator (RAND-MT);
//! - [`MutationKind::FmaToggle`] — enable FMA contraction in exactly one
//!   module (the per-module form of the AVX2 experiment).
//!
//! Every scenario is a pure function of `(model, seed, index)`: the same
//! campaign seed reproduces byte-identical mutations, which is what makes
//! a scorecard a regression benchmark.

use rca_core::{experiment_configs, ExperimentSetup, RcaSession, Scenario};
use rca_model::{BugSite, Experiment, ModelSource, PatchSite};
use rca_sim::{Avx2Policy, PrngKind, RunConfig};
use std::collections::HashSet;
use std::sync::Arc;

/// The campaign's deterministic xorshift64* generator.
#[derive(Debug)]
pub struct CampaignRng(u64);

impl CampaignRng {
    /// Seeds the generator. Only the all-zero state (which xorshift cannot
    /// leave) is remapped — any two distinct nonzero seeds yield distinct
    /// streams, so sweeping adjacent campaign seeds never repeats a
    /// campaign.
    pub fn new(seed: u64) -> CampaignRng {
        CampaignRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// A defect-injection operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Scale one float literal by a random factor.
    ConstantPerturb,
    /// Swap one spaced `*` or `-` operator to `+`.
    OperatorSwap,
    /// Flip one `max(` ↔ `min(` comparison-select.
    ComparisonFlip,
    /// Flip one additive `+` to `-` (sign flip on one RHS term).
    SignFlip,
    /// Replace the run PRNG with the Mersenne Twister.
    PrngSwap,
    /// Enable FMA contraction in exactly one module.
    FmaToggle,
}

impl MutationKind {
    /// The kinds realized as source patches (the rest are run-config
    /// changes).
    pub const SOURCE_KINDS: [MutationKind; 4] = [
        MutationKind::ConstantPerturb,
        MutationKind::OperatorSwap,
        MutationKind::ComparisonFlip,
        MutationKind::SignFlip,
    ];

    /// Short stable identifier for names and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            MutationKind::ConstantPerturb => "const",
            MutationKind::OperatorSwap => "opswap",
            MutationKind::ComparisonFlip => "cmpflip",
            MutationKind::SignFlip => "signflip",
            MutationKind::PrngSwap => "prng",
            MutationKind::FmaToggle => "fma",
        }
    }

    /// Whether `site` supports this source-level operator.
    pub fn applies_to(&self, site: &PatchSite) -> bool {
        match self {
            MutationKind::ConstantPerturb => !site.literals.is_empty(),
            MutationKind::OperatorSwap => !site.mul_ops.is_empty() || !site.minus_ops.is_empty(),
            MutationKind::ComparisonFlip => !site.minmax_ops.is_empty(),
            MutationKind::SignFlip => !site.plus_ops.is_empty(),
            MutationKind::PrngSwap | MutationKind::FmaToggle => false,
        }
    }
}

/// What one campaign entry diagnoses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioClass {
    /// Unmutated model — the verdict-accuracy control (must pass).
    Clean,
    /// A seeded injected defect (must fail and localize).
    Mutant(MutationKind),
    /// One of the paper's six experiments, run through the same batch
    /// machinery.
    Paper(Experiment),
}

impl ScenarioClass {
    /// Short stable identifier for names and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            ScenarioClass::Clean => "clean",
            ScenarioClass::Mutant(k) => k.slug(),
            ScenarioClass::Paper(_) => "paper",
        }
    }

    /// Whether the scenario carries an injected discrepancy source.
    pub fn expects_fail(&self) -> bool {
        !matches!(
            self,
            ScenarioClass::Clean | ScenarioClass::Paper(Experiment::Control)
        )
    }
}

/// One planned campaign entry: the core [`Scenario`] plus scoring
/// expectations.
#[derive(Clone, Debug)]
pub struct CampaignScenario {
    /// The diagnosable scenario (model variant + config + ground truth).
    pub scenario: Scenario,
    /// What was injected.
    pub class: ScenarioClass,
    /// Ground-truth module the scorecard checks for, if any.
    pub injected_module: Option<String>,
    /// Human-readable description of the injection.
    pub detail: String,
}

/// Campaign generation knobs.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Number of generated scenarios (mutants + cleans; paper experiments
    /// come on top via `include_paper`).
    pub scenarios: usize,
    /// Master seed; the same seed reproduces the identical campaign.
    pub seed: u64,
    /// Every k-th generated scenario is an unmutated control (0 = none).
    pub clean_every: usize,
    /// Also queue the paper's six experiments as scenarios.
    pub include_paper: bool,
    /// FMA delta amplification for `FmaToggle` scenarios (site-count
    /// bridging, as in [`ExperimentSetup::fma_scale`]).
    pub fma_scale: f64,
    /// Include the additive [`MutationKind::SignFlip`] operator in the
    /// weighted kind choice. Off by default so recorded fixed-seed
    /// baselines (the CI scorecard diff) stay byte-identical; enabling it
    /// re-rolls the plan for every seed.
    pub sign_flip: bool,
    /// Runtime fault-injection seed (the chaos axis): `0` = off. When
    /// nonzero, every planned scenario additionally carries a seeded
    /// [`rca_sim::FaultPlan`] that the executor applies mid-run to its
    /// experimental members (NaN/Inf poisoning, stuck values, member
    /// aborts). The axis derives its plans from a **separate** splitmix
    /// stream keyed by `(runtime_faults, index)`, so — like `sign_flip`
    /// — enabling it never perturbs the legacy mutation plan for a seed:
    /// scenario names, mutations, and configs are identical, only the
    /// fault plans differ.
    pub runtime_faults: u64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            scenarios: 50,
            seed: 0xCAFE,
            clean_every: 5,
            include_paper: false,
            fma_scale: 1.0,
            sign_flip: false,
            runtime_faults: 0,
        }
    }
}

/// Formats a float as a Fortran `_r8` literal the lexer accepts.
fn fortran_literal(v: f64) -> String {
    let mut s = format!("{v}");
    match s.find(['e', 'E']) {
        Some(epos) if !s[..epos].contains('.') => s.insert_str(epos, ".0"),
        None if !s.contains('.') => s.push_str(".0"),
        _ => {}
    }
    s + "_r8"
}

/// Applies one source-level mutation at `site`, returning the mutated
/// model and a description. Returns `None` if the site does not support
/// the operator (callers pre-filter, so `None` is defensive).
pub fn mutate_site(
    base: &ModelSource,
    site: &PatchSite,
    kind: MutationKind,
    rng: &mut CampaignRng,
) -> Option<(ModelSource, String)> {
    if !kind.applies_to(site) {
        return None;
    }
    let (new_line, detail) = match kind {
        MutationKind::ConstantPerturb => {
            let lit = site.literals[rng.below(site.literals.len())];
            // Mostly modest scalings (the GOFFGRATCH shape), sometimes the
            // WSUBBUG-style order-of-magnitude typo.
            let factor = if rng.f64() < 0.25 {
                10.0
            } else {
                1.05 + 0.45 * rng.f64()
            };
            let new_value = lit.value * factor;
            let new_lit = fortran_literal(new_value);
            let line = format!(
                "{}{}{}",
                &site.text[..lit.start],
                new_lit,
                &site.text[lit.end..]
            );
            let detail = format!(
                "{} -> {} (x{:.3})",
                &site.text[lit.start..lit.end],
                new_lit,
                factor
            );
            (line, detail)
        }
        MutationKind::OperatorSwap => {
            let n_mul = site.mul_ops.len();
            let pick = rng.below(n_mul + site.minus_ops.len());
            let (pos, from) = if pick < n_mul {
                (site.mul_ops[pick], "*")
            } else {
                (site.minus_ops[pick - n_mul], "-")
            };
            let mut line = site.text.clone();
            line.replace_range(pos..pos + 3, " + ");
            (line, format!("{from} -> + at col {pos}"))
        }
        MutationKind::ComparisonFlip => {
            let (pos, is_max) = site.minmax_ops[rng.below(site.minmax_ops.len())];
            let (from, to) = if is_max {
                ("max(", "min(")
            } else {
                ("min(", "max(")
            };
            let mut line = site.text.clone();
            line.replace_range(pos..pos + 4, to);
            (line, format!("{from} -> {to} at col {pos}"))
        }
        MutationKind::SignFlip => {
            let pos = site.plus_ops[rng.below(site.plus_ops.len())];
            let mut line = site.text.clone();
            line.replace_range(pos..pos + 3, " - ");
            (line, format!("+ -> - at col {pos}"))
        }
        MutationKind::PrngSwap | MutationKind::FmaToggle => return None,
    };
    let detail = format!(
        "{}::{} line {}: {}",
        site.module,
        site.subprogram,
        site.line + 1,
        detail
    );
    Some((
        base.with_patched_line(&site.file, site.line, &new_line),
        detail,
    ))
}

/// Injection sites usable by this session's campaign: CAM-component
/// modules (the slice scope) whose target variable survived coverage
/// filtering into the metagraph **and** lies on a directed path to some
/// history output. A defect nothing observes can neither be flagged nor
/// localized — injecting there would only measure the model's blind
/// spots, not the pipeline's quality.
///
/// Observability is decided twice, by independent implementations: the
/// metagraph's backward-reachable set (below) and the static analysis
/// plane's IR classifier ([`rca_analysis::ModelAnalysis::classify_site`]).
/// Both must agree on every candidate — a disagreement means one of the
/// two slicing planes is wrong, so it is asserted, not reconciled.
pub fn campaign_sites(model: &ModelSource, session: &RcaSession<'_>) -> Vec<PatchSite> {
    let components = model.component_map();
    let mg = session.metagraph();
    let syms = session.symbols();
    let analysis = session
        .analyze()
        .expect("session sources already compiled once; static analysis must too");
    // Backward-reachable set of every registered history output (the I/O
    // registry is id-keyed; node lookups are dense).
    let mut outputs: Vec<_> = mg
        .io_calls
        .iter()
        .flat_map(|c| mg.nodes_with_var(c.internal))
        .copied()
        .collect();
    outputs.sort();
    outputs.dedup();
    let observable = rca_graph::bfs_multi(&mg.graph, &outputs, rca_graph::Direction::In);
    rca_model::patch_sites(model)
        .into_iter()
        .filter(|s| {
            // Site names resolve through the session table once; a module
            // or target the graph never interned cannot be scored.
            syms.module_id(&s.module)
                .is_some_and(|m| session.pipeline().is_cam_id(m))
        })
        .filter(|s| components.contains_key(s.module.as_str()))
        .filter(|s| {
            let (Some(m), Some(v)) = (syms.module_id(&s.module), syms.var_id(&s.target)) else {
                return false;
            };
            let sub = syms.var_id(&s.subprogram);
            let mg_observable = sub
                .and_then(|sv| mg.node_by_ids(m, Some(sv), v))
                .or_else(|| mg.node_by_ids(m, None, v))
                .is_some_and(|n| observable.reached(n));
            let class = analysis.classify_site(&s.module, &s.subprogram, &s.target);
            debug_assert_eq!(
                mg_observable,
                class == rca_analysis::SiteClass::Observable,
                "metagraph and static observability disagree at {}::{}::{}",
                s.module,
                s.subprogram,
                s.target
            );
            // Intersection, not either-or: a site survives only when both
            // planes prove it output-reaching.
            mg_observable && class == rca_analysis::SiteClass::Observable
        })
        .collect()
}

/// Plans a deterministic campaign: `opts.scenarios` seeded clean/mutant
/// entries (plus the six paper experiments when requested), each carrying
/// its ground truth.
pub fn plan_campaign(
    model: &Arc<ModelSource>,
    session: &RcaSession<'_>,
    opts: &CampaignOptions,
) -> Vec<CampaignScenario> {
    let sites = campaign_sites(model, session);
    let control = session.control_config();
    let fma_modules: Vec<String> = {
        let set: HashSet<&str> = sites
            .iter()
            .filter(|s| s.fma_shape)
            .map(|s| s.module.as_str())
            .collect();
        let mut v: Vec<String> = set.into_iter().map(String::from).collect();
        v.sort();
        v
    };
    let mut out = Vec::with_capacity(opts.scenarios);

    for i in 0..opts.scenarios {
        // Each scenario derives its own generator from (seed, index), so a
        // campaign is a random-access family: scenario i is identical
        // whether generated alone or inside a larger batch.
        let mut rng =
            CampaignRng::new(opts.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1)));
        if opts.clean_every > 0 && i % opts.clean_every == 0 {
            out.push(CampaignScenario {
                scenario: Scenario::new(format!("{i:03}-clean"), model.clone(), control.clone()),
                class: ScenarioClass::Clean,
                injected_module: None,
                detail: "unmutated model (verdict-accuracy control)".to_string(),
            });
            continue;
        }
        let entry = plan_mutant(model, &sites, &fma_modules, &control, opts, i, &mut rng);
        out.push(entry);
    }

    if opts.include_paper {
        for e in Experiment::ALL {
            out.push(paper_scenario(model, session.setup(), e));
        }
    }

    // The chaos axis rides on top of the finished plan: each scenario's
    // experimental members get a fault plan from its own derived seed.
    // The control ensemble (shared, prewarmed, fault-free) and the
    // mutation RNG streams above are untouched, so `runtime_faults: 0`
    // vs nonzero differ only in `scenario.config.faults`.
    if opts.runtime_faults != 0 {
        let members = session.setup().n_experiment;
        for (i, cs) in out.iter_mut().enumerate() {
            let fault_seed =
                opts.runtime_faults ^ (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1));
            cs.scenario.config.faults =
                rca_sim::FaultPlan::seeded(fault_seed, members, cs.scenario.config.steps, 2);
        }
    }
    out
}

fn plan_mutant(
    model: &Arc<ModelSource>,
    sites: &[PatchSite],
    fma_modules: &[String],
    control: &RunConfig,
    opts: &CampaignOptions,
    index: usize,
    rng: &mut CampaignRng,
) -> CampaignScenario {
    // Weighted kind choice: source mutations dominate; the two config
    // mechanisms appear but stay rare (they each have few distinct
    // targets, and oversampling them would just repeat scenarios). The
    // legacy table (sign_flip off) must keep drawing the identical RNG
    // stream — fixed-seed scorecards are diffed byte-for-byte in CI.
    let kind = if opts.sign_flip {
        match rng.below(13) {
            0..=4 => MutationKind::ConstantPerturb,
            5..=7 => MutationKind::OperatorSwap,
            8..=9 => MutationKind::ComparisonFlip,
            10..=11 => MutationKind::SignFlip,
            _ if rng.below(2) == 0 && !fma_modules.is_empty() => MutationKind::FmaToggle,
            _ => MutationKind::PrngSwap,
        }
    } else {
        match rng.below(12) {
            0..=4 => MutationKind::ConstantPerturb,
            5..=8 => MutationKind::OperatorSwap,
            9..=10 => MutationKind::ComparisonFlip,
            _ if rng.below(2) == 0 && !fma_modules.is_empty() => MutationKind::FmaToggle,
            _ => MutationKind::PrngSwap,
        }
    };

    match kind {
        MutationKind::PrngSwap => {
            let mut config = control.clone();
            config.prng = PrngKind::MersenneTwister;
            let sites = Experiment::RandMt.bug_sites();
            let module = sites.first().map(|s| s.module.clone());
            CampaignScenario {
                scenario: Scenario {
                    name: format!("{index:03}-prng"),
                    model: model.clone(),
                    config,
                    bug_modules: sites.iter().map(|s| s.module.clone()).collect(),
                    bug_sites: sites,
                },
                class: ScenarioClass::Mutant(MutationKind::PrngSwap),
                injected_module: module,
                detail: "PRNG substituted: KISS -> Mersenne Twister".to_string(),
            }
        }
        MutationKind::FmaToggle => {
            let module = fma_modules[rng.below(fma_modules.len())].clone();
            let mut config = control.clone();
            config.avx2 = Avx2Policy::Only(HashSet::from([module.clone()]));
            config.fma_scale = opts.fma_scale;
            let bug_sites: Vec<BugSite> = sites
                .iter()
                .filter(|s| s.fma_shape && s.module == module)
                .map(|s| BugSite {
                    module: s.module.clone(),
                    subprogram: s.subprogram.clone(),
                    canonical: s.target.clone(),
                })
                .collect();
            CampaignScenario {
                scenario: Scenario {
                    name: format!("{index:03}-fma-{module}"),
                    model: model.clone(),
                    config,
                    bug_sites,
                    bug_modules: vec![module.clone()],
                },
                class: ScenarioClass::Mutant(MutationKind::FmaToggle),
                injected_module: Some(module.clone()),
                detail: format!("FMA contraction enabled in {module} only"),
            }
        }
        source_kind => {
            let applicable: Vec<&PatchSite> =
                sites.iter().filter(|s| source_kind.applies_to(s)).collect();
            assert!(
                !applicable.is_empty(),
                "model has no sites for {source_kind:?}"
            );
            let site = applicable[rng.below(applicable.len())];
            let (mutated, detail) =
                mutate_site(model, site, source_kind, rng).expect("pre-filtered site applies");
            CampaignScenario {
                scenario: Scenario {
                    name: format!("{index:03}-{}-{}", source_kind.slug(), site.module),
                    model: Arc::new(mutated),
                    config: control.clone(),
                    bug_sites: vec![BugSite {
                        module: site.module.clone(),
                        subprogram: site.subprogram.clone(),
                        canonical: site.target.clone(),
                    }],
                    bug_modules: vec![site.module.clone()],
                },
                class: ScenarioClass::Mutant(source_kind),
                injected_module: Some(site.module.clone()),
                detail,
            }
        }
    }
}

/// One of the paper's six experiments, packaged as a campaign scenario so
/// the batch runner and scorecard treat it uniformly.
pub fn paper_scenario(
    model: &Arc<ModelSource>,
    setup: &ExperimentSetup,
    experiment: Experiment,
) -> CampaignScenario {
    let (_, config) = experiment_configs(experiment, setup);
    let bug_sites = experiment.bug_sites();
    let mut bug_modules: Vec<String> = bug_sites.iter().map(|s| s.module.clone()).collect();
    bug_modules.sort();
    bug_modules.dedup();
    let injected_module = bug_modules.first().cloned();
    let exp_model = if experiment.source_patches().is_empty() {
        model.clone()
    } else {
        Arc::new(model.apply(experiment))
    };
    CampaignScenario {
        scenario: Scenario {
            name: format!("paper-{}", experiment.name()),
            model: exp_model,
            config,
            bug_sites,
            bug_modules,
        },
        class: ScenarioClass::Paper(experiment),
        injected_module,
        detail: format!("paper experiment {}", experiment.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_core::ExperimentSetup;
    use rca_model::{generate, ModelConfig};
    use std::sync::OnceLock;

    fn fixture() -> &'static (Arc<ModelSource>, RcaSession<'static>) {
        static MODEL: OnceLock<ModelSource> = OnceLock::new();
        static FIX: OnceLock<(Arc<ModelSource>, RcaSession<'static>)> = OnceLock::new();
        FIX.get_or_init(|| {
            let m = MODEL.get_or_init(|| generate(&ModelConfig::test()));
            let session = RcaSession::builder(m)
                .setup(ExperimentSetup::quick())
                .build()
                .expect("session");
            (Arc::new(m.clone()), session)
        })
    }

    #[test]
    fn fortran_literals_are_lexable_shapes() {
        assert_eq!(fortran_literal(0.264), "0.264_r8");
        assert_eq!(fortran_literal(2.0), "2.0_r8");
        let tiny = fortran_literal(8.1828e-23);
        assert!(tiny.ends_with("_r8"));
        assert!(tiny.contains('.'), "{tiny}");
    }

    #[test]
    fn every_source_kind_produces_a_parsing_mutant() {
        let (model, session) = fixture();
        let sites = campaign_sites(model, session);
        assert!(!sites.is_empty());
        for kind in MutationKind::SOURCE_KINDS {
            let site = sites
                .iter()
                .find(|s| kind.applies_to(s))
                .unwrap_or_else(|| panic!("no site for {kind:?}"));
            let mut rng = CampaignRng::new(7);
            let (mutated, detail) = mutate_site(model, site, kind, &mut rng).expect("applies");
            let (_, errs) = mutated.parse();
            assert!(
                errs.is_empty(),
                "{kind:?} broke parsing: {errs:?} ({detail})"
            );
            // Exactly one line differs from the base model.
            let base = &model
                .files
                .iter()
                .find(|f| f.name == site.file)
                .unwrap()
                .source;
            let new = &mutated
                .files
                .iter()
                .find(|f| f.name == site.file)
                .unwrap()
                .source;
            let diffs = base
                .lines()
                .zip(new.lines())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1, "{kind:?}");
        }
    }

    #[test]
    fn campaign_sites_are_cam_and_in_graph() {
        let (model, session) = fixture();
        let components = model.component_map();
        for s in campaign_sites(model, session) {
            assert!(session.pipeline().is_cam(&s.module), "{}", s.module);
            assert!(components.contains_key(s.module.as_str()));
        }
    }

    #[test]
    fn plan_is_deterministic_and_random_access() {
        let (model, session) = fixture();
        let opts = CampaignOptions {
            scenarios: 12,
            seed: 42,
            ..Default::default()
        };
        let a = plan_campaign(model, session, &opts);
        let b = plan_campaign(model, session, &opts);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scenario.name, y.scenario.name);
            assert_eq!(x.detail, y.detail);
            assert_eq!(x.scenario.bug_sites, y.scenario.bug_sites);
        }
        // Random access: a shorter plan is a prefix of a longer one.
        let short = plan_campaign(
            model,
            session,
            &CampaignOptions {
                scenarios: 5,
                seed: 42,
                ..Default::default()
            },
        );
        for (x, y) in short.iter().zip(&a) {
            assert_eq!(x.scenario.name, y.scenario.name);
            assert_eq!(x.detail, y.detail);
        }
    }

    #[test]
    fn plan_mixes_cleans_and_mutants_with_ground_truth() {
        let (model, session) = fixture();
        let opts = CampaignOptions {
            scenarios: 20,
            seed: 1,
            clean_every: 5,
            ..Default::default()
        };
        let plan = plan_campaign(model, session, &opts);
        let cleans = plan
            .iter()
            .filter(|c| c.class == ScenarioClass::Clean)
            .count();
        assert_eq!(cleans, 4);
        for c in &plan {
            match c.class {
                ScenarioClass::Clean => {
                    assert!(c.scenario.bug_sites.is_empty());
                    assert!(!c.class.expects_fail());
                }
                _ => {
                    assert!(
                        !c.scenario.bug_sites.is_empty() || !c.scenario.bug_modules.is_empty(),
                        "{} lacks ground truth",
                        c.scenario.name
                    );
                    assert!(c.injected_module.is_some());
                    // Ground truth resolves to metagraph nodes — no
                    // orphaned injections.
                    assert!(
                        !session.scenario_bug_nodes(&c.scenario).is_empty(),
                        "{} ground truth not in graph",
                        c.scenario.name
                    );
                }
            }
        }
    }

    #[test]
    fn signflip_is_opt_in_and_scored_like_other_source_kinds() {
        let (model, session) = fixture();
        // Off (default): no signflip scenario can appear, and the plan is
        // exactly the legacy plan for the same seed.
        let legacy = plan_campaign(
            model,
            session,
            &CampaignOptions {
                scenarios: 24,
                seed: 99,
                ..Default::default()
            },
        );
        assert!(legacy
            .iter()
            .all(|c| c.class != ScenarioClass::Mutant(MutationKind::SignFlip)));
        // On: signflip mutants appear, carrying resolvable ground truth.
        let with = plan_campaign(
            model,
            session,
            &CampaignOptions {
                scenarios: 24,
                seed: 99,
                sign_flip: true,
                ..Default::default()
            },
        );
        let flips: Vec<_> = with
            .iter()
            .filter(|c| c.class == ScenarioClass::Mutant(MutationKind::SignFlip))
            .collect();
        assert!(!flips.is_empty(), "24 scenarios must draw a signflip");
        for f in flips {
            assert!(f.scenario.name.contains("signflip"));
            assert!(f.injected_module.is_some());
            assert!(!session.scenario_bug_nodes(&f.scenario).is_empty());
            // The mutation really flips one + to -.
            assert!(f.detail.contains("+ -> -"), "{}", f.detail);
        }
    }

    #[test]
    fn runtime_faults_are_a_separate_axis_over_the_same_plan() {
        let (model, session) = fixture();
        let base = CampaignOptions {
            scenarios: 10,
            seed: 7,
            ..Default::default()
        };
        let plain = plan_campaign(model, session, &base);
        let chaotic = plan_campaign(
            model,
            session,
            &CampaignOptions {
                runtime_faults: 0xFA17,
                ..base.clone()
            },
        );
        // The mutation plan is untouched: same names, same details, same
        // ground truth — only the fault plans differ.
        for (a, b) in plain.iter().zip(&chaotic) {
            assert_eq!(a.scenario.name, b.scenario.name);
            assert_eq!(a.detail, b.detail);
            assert_eq!(a.scenario.bug_sites, b.scenario.bug_sites);
            assert!(a.scenario.config.faults.is_empty());
            assert!(!b.scenario.config.faults.is_empty());
        }
        // Deterministic: the same fault seed reproduces identical plans;
        // a different one re-rolls them.
        let again = plan_campaign(
            model,
            session,
            &CampaignOptions {
                runtime_faults: 0xFA17,
                ..base.clone()
            },
        );
        let other = plan_campaign(
            model,
            session,
            &CampaignOptions {
                runtime_faults: 0xFA18,
                ..base
            },
        );
        for ((b, c), d) in chaotic.iter().zip(&again).zip(&other) {
            assert_eq!(
                b.scenario.config.faults.digest(),
                c.scenario.config.faults.digest()
            );
            assert_ne!(
                b.scenario.config.faults.digest(),
                d.scenario.config.faults.digest()
            );
        }
    }

    #[test]
    fn paper_scenarios_carry_experiment_ground_truth() {
        let (model, session) = fixture();
        let cs = paper_scenario(model, session.setup(), Experiment::GoffGratch);
        assert_eq!(cs.scenario.name, "paper-GOFFGRATCH");
        assert_eq!(cs.injected_module.as_deref(), Some("wv_saturation"));
        assert!(cs.class.expects_fail());
        let control = paper_scenario(model, session.setup(), Experiment::Control);
        assert!(!control.class.expects_fail());
    }
}
