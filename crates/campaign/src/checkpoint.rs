//! Resumable campaigns: the append-only JSONL checkpoint.
//!
//! A campaign is a pure function of `(model, options, seed)`, so any
//! prefix of its per-scenario results is reusable as long as the plan it
//! came from is provably the same. This module makes that concrete:
//!
//! - [`plan_digest`] fingerprints the generation parameters **and** the
//!   planned scenario names (FNV-1a), so a checkpoint written under one
//!   plan can never silently feed a different one;
//! - [`Checkpoint`] appends one self-describing JSONL line per finished
//!   scenario — `{"v":1,"seed":…,"digest":…,"index":…,"result":{…}}` —
//!   flushed per record so a killed process loses at most the line it
//!   was writing;
//! - [`load_checkpoint`] replays a checkpoint file, keeping only lines
//!   whose `(seed, digest)` key matches the current plan and silently
//!   dropping a torn final line (the crash case it exists for).
//!
//! The `result` payload is the scorecard's own deterministic JSON export
//! ([`ScenarioResult`]'s `Serialize`), parsed back field-for-field; the
//! non-deterministic fields excluded from that export (wall time, phase
//! profile) are restored as zero/empty, which is exactly what the
//! scorecard JSON artifact ignores — a resumed campaign's merged
//! scorecard is byte-identical to an uninterrupted run's.

use crate::mutate::{CampaignOptions, CampaignScenario};
use crate::scorecard::{AbsorbedError, ScenarioResult};
use rca_core::StopReason;
use rca_stats::Verdict;
use serde::{Json, Serialize};
use serde_json::Value;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// Checkpoint schema version; lines with any other `v` are ignored.
const VERSION: u64 = 1;

/// FNV-1a accumulator (matches the workspace's content-hash idiom).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Fingerprints a campaign plan: every generation knob plus the planned
/// scenario identities. Two campaigns share a digest iff their plans are
/// interchangeable, which is the precondition for reusing each other's
/// checkpointed results.
pub fn plan_digest(opts: &CampaignOptions, plan: &[CampaignScenario]) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(opts.scenarios as u64);
    h.write_u64(opts.seed);
    h.write_u64(opts.clean_every as u64);
    h.write_u64(u64::from(opts.include_paper));
    h.write_u64(opts.fma_scale.to_bits());
    h.write_u64(u64::from(opts.sign_flip));
    h.write_u64(opts.runtime_faults);
    for cs in plan {
        h.write(cs.scenario.name.as_bytes());
        h.write(cs.class.slug().as_bytes());
        h.write(cs.detail.as_bytes());
        h.write_u64(cs.scenario.config.faults.digest());
    }
    h.0
}

/// An open checkpoint appender. One line per finished scenario; writes
/// are serialized through a mutex and flushed per record, so parallel
/// scenario workers can stream results safely and a kill loses at most
/// one torn line.
#[derive(Debug)]
pub struct Checkpoint {
    file: Mutex<File>,
    seed: u64,
    digest: u64,
}

impl Checkpoint {
    /// Opens (creating if needed) the checkpoint at `path` for
    /// appending, keying every subsequent record with `(seed, digest)`.
    pub fn open(path: &Path, seed: u64, digest: u64) -> std::io::Result<Checkpoint> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Checkpoint {
            file: Mutex::new(file),
            seed,
            digest,
        })
    }

    /// Appends one finished scenario. The whole line is formatted first
    /// and written with a single call, so concurrent records never
    /// interleave bytes.
    pub fn record(&self, index: usize, result: &ScenarioResult) -> std::io::Result<()> {
        let line = Json::obj([
            ("v", VERSION.to_json()),
            // Hex strings, not JSON numbers: the full u64 range survives
            // (the parser stores numbers as f64, exact only to 2^53).
            ("seed", format!("{:016x}", self.seed).to_json()),
            ("digest", format!("{:016x}", self.digest).to_json()),
            ("index", index.to_json()),
            ("result", result.to_json()),
        ]);
        let mut text = serde_json::to_string(&line).expect("serialization is infallible");
        text.push('\n');
        let mut file = self.file.lock().expect("checkpoint mutex poisoned");
        file.write_all(text.as_bytes())?;
        file.flush()
    }
}

/// Loads the completed results recorded at `path` for the plan keyed by
/// `(seed, digest)`. Missing file means a fresh campaign (empty map);
/// lines from other plans, older schema versions, or a torn final write
/// are skipped, never an error — a checkpoint is a cache, and anything
/// unusable in it simply re-runs.
pub fn load_checkpoint(
    path: &Path,
    seed: u64,
    digest: u64,
) -> std::io::Result<HashMap<usize, ScenarioResult>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(e),
    };
    let seed_key = format!("{seed:016x}");
    let digest_key = format!("{digest:016x}");
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str(line) else {
            continue; // torn final line from a killed run
        };
        if v["v"].as_u64() != Some(VERSION)
            || v["seed"].as_str() != Some(seed_key.as_str())
            || v["digest"].as_str() != Some(digest_key.as_str())
        {
            continue;
        }
        let (Some(index), Some(result)) = (v["index"].as_u64(), parse_result(&v["result"])) else {
            continue;
        };
        // Last write wins: a record appended after a retry supersedes
        // the earlier one for the same index.
        out.insert(index as usize, result);
    }
    Ok(out)
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn as_usize(v: &Value) -> Option<usize> {
    v.as_u64().map(|n| n as usize)
}

/// Parses one scorecard result payload back into a [`ScenarioResult`].
/// Inverse of the scorecard's `Serialize` impl — the round-trip test
/// pins the two together. `None` on any shape mismatch (the caller
/// skips the record).
fn parse_result(v: &Value) -> Option<ScenarioResult> {
    let verdict = match &v["verdict"] {
        Value::Null => None,
        Value::String(s) if s == "pass" => Some(Verdict::Pass),
        Value::String(s) if s == "fail" => Some(Verdict::Fail),
        _ => return None,
    };
    let stop = match &v["stop"] {
        Value::Null => None,
        Value::String(s) => Some(stop_from_slug(s)?),
        _ => return None,
    };
    let injected_module = match &v["injected_module"] {
        Value::Null => None,
        Value::String(s) => Some(s.clone()),
        _ => return None,
    };
    let error = match &v["error"] {
        Value::Null => None,
        e @ Value::Object(_) => Some(AbsorbedError {
            kind: e["kind"].as_str()?.to_string(),
            retryable: as_bool(&e["retryable"])?,
            message: e["message"].as_str()?.to_string(),
        }),
        _ => return None,
    };
    Some(ScenarioResult {
        name: v["name"].as_str()?.to_string(),
        kind: v["kind"].as_str()?.to_string(),
        injected_module,
        detail: v["detail"].as_str()?.to_string(),
        expect_fail: as_bool(&v["expect_fail"])?,
        verdict,
        located: as_bool(&v["located"])?,
        module_in_final: as_bool(&v["module_in_final"])?,
        slice_nodes: as_usize(&v["slice_nodes"])?,
        final_suspects: as_usize(&v["final_suspects"])?,
        iterations: as_usize(&v["iterations"])?,
        stop,
        // Conditional key: absent means healthy.
        degraded: as_bool(&v["degraded"]).unwrap_or(false),
        error,
        // Timing and profiles are telemetry, deliberately excluded from
        // the deterministic export — restored as empty.
        wall_ms: 0.0,
        profile: rca_obs::PhaseProfile::new(),
    })
}

/// Inverse of `StopReason`'s JSON slug serialization.
fn stop_from_slug(s: &str) -> Option<StopReason> {
    Some(match s {
        "bug_instrumented" => StopReason::BugInstrumented,
        "small_enough" => StopReason::SmallEnough,
        "stalled" => StopReason::Stalled,
        "disconnected" => StopReason::Disconnected,
        "max_iterations" => StopReason::MaxIterations,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            kind: "const".to_string(),
            injected_module: Some("micro_mg".to_string()),
            detail: "x -> 10x".to_string(),
            expect_fail: true,
            verdict: Some(Verdict::Fail),
            located: true,
            module_in_final: true,
            slice_nodes: 120,
            final_suspects: 14,
            iterations: 4,
            stop: Some(StopReason::BugInstrumented),
            degraded: true,
            error: None,
            wall_ms: 9.5,
            profile: rca_obs::PhaseProfile::new(),
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rca-ckpt-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn round_trips_every_deterministic_field() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path, 0xCAFE, 0xD1CE).expect("open");
        let mut errored = sample("001-err");
        errored.verdict = None;
        errored.stop = None;
        errored.degraded = false;
        errored.error = Some(AbsorbedError {
            kind: "runtime".to_string(),
            retryable: true,
            message: "injected member-abort fault at step 2".to_string(),
        });
        ckpt.record(0, &sample("000-const")).expect("record");
        ckpt.record(1, &errored).expect("record");
        let loaded = load_checkpoint(&path, 0xCAFE, 0xD1CE).expect("load");
        assert_eq!(loaded.len(), 2);
        let r = &loaded[&0];
        let s = sample("000-const");
        assert_eq!(r.name, s.name);
        assert_eq!(r.verdict, s.verdict);
        assert_eq!(r.stop, s.stop);
        assert_eq!(r.injected_module, s.injected_module);
        assert!(r.degraded);
        // Telemetry fields are not round-tripped — they are excluded
        // from the deterministic export by design.
        assert_eq!(r.wall_ms, 0.0);
        let e = &loaded[&1];
        assert_eq!(e.error, errored.error);
        assert_eq!(e.verdict, None);
        // Serialization round-trip is exact on the deterministic JSON.
        assert_eq!(
            serde_json::to_string(r),
            serde_json::to_string(&sample("000-const"))
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_keys_and_torn_lines_are_skipped() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path, 1, 2).expect("open");
        ckpt.record(5, &sample("005-const")).expect("record");
        // A torn final line (killed mid-write) and junk must not poison
        // the load.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"v\":1,\"seed\":\"00000000000").unwrap();
        }
        let loaded = load_checkpoint(&path, 1, 2).expect("load");
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains_key(&5));
        // Same file, different plan key: nothing usable.
        assert!(load_checkpoint(&path, 1, 3).expect("load").is_empty());
        assert!(load_checkpoint(&path, 9, 2).expect("load").is_empty());
        // Missing file: fresh campaign.
        let _ = std::fs::remove_file(&path);
        assert!(load_checkpoint(&path, 1, 2).expect("load").is_empty());
    }
}
