//! `rca-trace-check` — validate a JSONL trace produced by `--trace-out`.
//!
//! ```text
//! rca-trace-check PATH [--require-phases name,name,...]
//! ```
//!
//! Checks every line against the trace schema (see `rca_obs::sink`):
//!
//! - each line is a JSON object with a `type` of `span_start`,
//!   `span_end`, or `event`, a string `name`, and a numeric `ts`;
//! - `span_start` carries a `u64` `id`, a `parent` (null or span id),
//!   and a `fields` object;
//! - `span_end` carries the matching `id` plus a numeric `dur`;
//! - `event` carries `parent` and `fields`;
//! - every opened span is closed exactly once, under the same name,
//!   and parents refer to spans opened earlier in the stream.
//!
//! `--require-phases` additionally asserts that each named span or
//! event occurs at least once — the CI trace-smoke gate uses this to
//! prove the trace covers every pipeline phase. Exit code 0 on a valid
//! trace, 1 otherwise.

use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: rca-trace-check PATH [--require-phases name,name,...]");
    std::process::exit(2);
}

fn as_span_id(v: &serde_json::Value) -> Option<u64> {
    v.as_u64()
}

/// Validates one parsed line; returns the opened/closed span id action.
fn check_record(
    v: &serde_json::Value,
    lineno: usize,
    open: &mut HashMap<u64, &'static str>,
    names: &mut HashMap<String, usize>,
    errors: &mut Vec<String>,
) {
    let mut fail = |msg: String| errors.push(format!("line {lineno}: {msg}"));
    if v.as_object().is_none() {
        fail("not a JSON object".to_string());
        return;
    }
    let Some(ty) = v["type"].as_str() else {
        fail("missing string `type`".to_string());
        return;
    };
    let Some(name) = v["name"].as_str() else {
        fail("missing string `name`".to_string());
        return;
    };
    *names.entry(name.to_string()).or_insert(0) += 1;
    if v["ts"].as_f64().is_none() {
        fail("missing numeric `ts`".to_string());
    }
    let parent_ok = |v: &serde_json::Value, open: &HashMap<u64, &'static str>| match v {
        serde_json::Value::Null => true,
        other => as_span_id(other).is_some_and(|id| open.contains_key(&id)),
    };
    match ty {
        "span_start" => {
            if v["fields"].as_object().is_none() {
                fail("span_start missing `fields` object".to_string());
            }
            if !parent_ok(&v["parent"], open) {
                fail("span_start `parent` is not null or an open span id".to_string());
            }
            match as_span_id(&v["id"]) {
                None => fail("span_start missing u64 `id`".to_string()),
                Some(id) => {
                    // Leak one small string per distinct span so the open-set
                    // can hold `&'static str` without lifetime juggling; a
                    // trace check is a one-shot process.
                    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
                    if open.insert(id, leaked).is_some() {
                        fail(format!("span id {id} opened twice"));
                    }
                }
            }
        }
        "span_end" => {
            if v["dur"].as_f64().is_none() {
                fail("span_end missing numeric `dur`".to_string());
            }
            match as_span_id(&v["id"]) {
                None => fail("span_end missing u64 `id`".to_string()),
                Some(id) => match open.remove(&id) {
                    None => fail(format!("span id {id} closed without a matching start")),
                    Some(opened) if opened != name => {
                        fail(format!(
                            "span id {id} opened as `{opened}`, closed as `{name}`"
                        ));
                    }
                    Some(_) => {}
                },
            }
        }
        "event" => {
            if v["fields"].as_object().is_none() {
                fail("event missing `fields` object".to_string());
            }
            if !parent_ok(&v["parent"], open) {
                fail("event `parent` is not null or an open span id".to_string());
            }
        }
        other => fail(format!("unknown record type `{other}`")),
    }
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-phases" => {
                let list = it.next().unwrap_or_else(|| usage());
                required.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let Some(path) = path else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut errors: Vec<String> = Vec::new();
    let mut open: HashMap<u64, &'static str> = HashMap::new();
    let mut names: HashMap<String, usize> = HashMap::new();
    let mut records = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records += 1;
        match serde_json::from_str(line) {
            Err(e) => errors.push(format!("line {}: invalid JSON: {e}", i + 1)),
            Ok(v) => check_record(&v, i + 1, &mut open, &mut names, &mut errors),
        }
    }
    for (id, name) in &open {
        errors.push(format!("span id {id} (`{name}`) never closed"));
    }
    for want in &required {
        if !names.contains_key(want) {
            errors.push(format!("required phase `{want}` absent from trace"));
        }
    }
    if errors.is_empty() {
        println!(
            "{path}: {records} records, {} distinct names, schema OK",
            names.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("rca-trace-check: {e}");
        }
        eprintln!("rca-trace-check: {path}: {} error(s)", errors.len());
        ExitCode::FAILURE
    }
}
