//! The localization scorecard: per-scenario outcomes and the aggregate
//! quality metrics that make a campaign a standing benchmark.
//!
//! Two exports, deliberately different:
//!
//! - [`Scorecard::render`] — the human report, including wall-clock
//!   timing and throughput;
//! - the [`serde::Serialize`] impl (consumed by `serde_json::to_string*`)
//!   — the machine-readable scorecard, which **excludes timing** so the
//!   same seed produces a byte-identical JSON artifact on any machine and
//!   thread count. CI diffs it; the throughput bench records timing
//!   separately.

use rca_core::{RcaError, StopReason};
use rca_stats::Verdict;
use serde::{Json, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// A pipeline failure the campaign absorbed instead of aborting on —
/// the typed form of `scenario.error`, sharing the [`RcaError`]
/// taxonomy (kind slug + retryability) so consumers never string-match
/// messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsorbedError {
    /// Stable failure-class slug ([`RcaError::kind_slug`]).
    pub kind: String,
    /// Whether retrying could plausibly succeed
    /// ([`RcaError::is_retryable`]): budget exhaustion and injected
    /// faults, never deterministic model/config failures.
    pub retryable: bool,
    /// Rendered failure message (carries member/step/stage context).
    pub message: String,
}

impl AbsorbedError {
    /// Captures a pipeline failure with its taxonomy metadata.
    pub fn from_rca(e: &RcaError) -> AbsorbedError {
        AbsorbedError {
            kind: e.kind_slug().to_string(),
            retryable: e.is_retryable(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for AbsorbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}] {}",
            self.kind,
            if self.retryable { ", retryable" } else { "" },
            self.message
        )
    }
}

impl Serialize for AbsorbedError {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("retryable", self.retryable.to_json()),
            ("message", self.message.to_json()),
        ])
    }
}

/// Outcome of one campaign scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name (stable for a given seed).
    pub name: String,
    /// Scenario class slug (`clean`, `const`, `opswap`, `cmpflip`,
    /// `prng`, `fma`, `paper`).
    pub kind: String,
    /// Ground-truth module, if one was injected.
    pub injected_module: Option<String>,
    /// Human-readable injection description.
    pub detail: String,
    /// Whether the scenario carries a discrepancy source (scores verdict
    /// accuracy).
    pub expect_fail: bool,
    /// The ECT verdict (`None` if the scenario errored).
    pub verdict: Option<Verdict>,
    /// Whether ground truth was instrumented or sits in the final
    /// suspect set.
    pub located: bool,
    /// Whether the injected module is among the final suspect modules.
    pub module_in_final: bool,
    /// Suspect subgraph size entering refinement.
    pub slice_nodes: usize,
    /// Final suspect-set size.
    pub final_suspects: usize,
    /// Refinement iterations performed.
    pub iterations: usize,
    /// Why refinement stopped, if it ran.
    pub stop: Option<StopReason>,
    /// Whether the diagnosis drew on a degraded ensemble (quarantined
    /// members survived by quorum instead of erroring).
    pub degraded: bool,
    /// Pipeline failure, if the scenario could not be diagnosed.
    pub error: Option<AbsorbedError>,
    /// Wall time of this diagnosis (excluded from JSON export).
    pub wall_ms: f64,
    /// Per-phase profile of this diagnosis (excluded from JSON export —
    /// timing lives in the telemetry channel, never the artifact).
    pub profile: rca_obs::PhaseProfile,
}

impl ScenarioResult {
    /// A mutant correctly flagged by the ECT.
    fn flagged_mutant(&self) -> bool {
        self.expect_fail && self.verdict == Some(Verdict::Fail)
    }

    /// Slice-size reduction achieved by refinement (`1 - final/initial`).
    fn slice_reduction(&self) -> Option<f64> {
        (self.slice_nodes > 0).then(|| 1.0 - self.final_suspects as f64 / self.slice_nodes as f64)
    }
}

impl Serialize for ScenarioResult {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("name", self.name.to_json()),
            ("kind", self.kind.to_json()),
            ("injected_module", self.injected_module.to_json()),
            ("detail", self.detail.to_json()),
            ("expect_fail", self.expect_fail.to_json()),
            (
                "verdict",
                self.verdict.as_ref().map_or(Json::Null, Verdict::to_json),
            ),
            ("located", self.located.to_json()),
            ("module_in_final", self.module_in_final.to_json()),
            ("slice_nodes", self.slice_nodes.to_json()),
            ("final_suspects", self.final_suspects.to_json()),
            ("iterations", self.iterations.to_json()),
            ("stop", self.stop.to_json()),
        ];
        // Conditional key: absent on healthy runs, so zero-fault
        // scorecards stay byte-identical to pre-fault-plane baselines.
        if self.degraded {
            fields.push(("degraded", self.degraded.to_json()));
        }
        fields.push(("error", self.error.to_json()));
        Json::obj(fields)
    }
}

/// Aggregated campaign metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total scenarios run.
    pub scenarios: usize,
    /// Scenarios with an injected discrepancy source.
    pub mutants: usize,
    /// Unmutated control scenarios.
    pub cleans: usize,
    /// Scenarios that failed with a pipeline error.
    pub errors: usize,
    /// Scenarios diagnosed from a degraded (quarantine-survived)
    /// ensemble quorum.
    pub degraded: usize,
    /// Mutants the ECT flagged (`Fail`).
    pub mutants_flagged: usize,
    /// Cleans the ECT passed.
    pub cleans_passed: usize,
    /// Fraction of mutants flagged.
    pub flagged_rate: f64,
    /// Fraction of cleans passing.
    pub clean_pass_rate: f64,
    /// Flagged mutants whose ground truth was located.
    pub located: usize,
    /// Localization rate among flagged mutants.
    pub localization_rate: f64,
    /// Flagged mutants whose injected module is in the final suspects.
    pub module_in_final: usize,
    /// Mean slice-size reduction over refined scenarios.
    pub mean_slice_reduction: f64,
    /// Mean refinement iterations over refined scenarios.
    pub mean_iterations: f64,
}

impl Serialize for Summary {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("scenarios", self.scenarios.to_json()),
            ("mutants", self.mutants.to_json()),
            ("cleans", self.cleans.to_json()),
            ("errors", self.errors.to_json()),
            ("mutants_flagged", self.mutants_flagged.to_json()),
            ("cleans_passed", self.cleans_passed.to_json()),
            ("flagged_rate", self.flagged_rate.to_json()),
            ("clean_pass_rate", self.clean_pass_rate.to_json()),
            ("located", self.located.to_json()),
            ("localization_rate", self.localization_rate.to_json()),
            ("module_in_final", self.module_in_final.to_json()),
            ("mean_slice_reduction", self.mean_slice_reduction.to_json()),
            ("mean_iterations", self.mean_iterations.to_json()),
        ];
        // Conditional key, mirroring `ScenarioResult::degraded`: absent
        // unless some scenario actually degraded.
        if self.degraded > 0 {
            fields.push(("degraded", self.degraded.to_json()));
        }
        Json::obj(fields)
    }
}

/// A finished campaign: per-scenario results plus aggregates.
#[derive(Debug, Clone)]
pub struct Scorecard {
    /// Per-scenario outcomes, in plan order.
    pub results: Vec<ScenarioResult>,
    /// Wall time of the whole batch, seconds (excluded from JSON export).
    pub wall_seconds: f64,
}

impl Scorecard {
    /// Wraps results produced by the batch runner.
    pub fn new(results: Vec<ScenarioResult>, wall_seconds: f64) -> Scorecard {
        Scorecard {
            results,
            wall_seconds,
        }
    }

    /// Diagnoses per second over the whole batch.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.results.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Aggregates every scenario's phase profile into one campaign-wide
    /// rollup (summed counts, wall time, and allocations per phase).
    pub fn profile_rollup(&self) -> rca_obs::PhaseProfile {
        rca_obs::PhaseProfile::rollup(self.results.iter().map(|r| &r.profile))
    }

    /// Computes the aggregate metrics.
    pub fn summary(&self) -> Summary {
        let scenarios = self.results.len();
        let errors = self.results.iter().filter(|r| r.error.is_some()).count();
        let degraded = self.results.iter().filter(|r| r.degraded).count();
        let mutants = self.results.iter().filter(|r| r.expect_fail).count();
        let cleans = scenarios - mutants;
        let mutants_flagged = self.results.iter().filter(|r| r.flagged_mutant()).count();
        let cleans_passed = self
            .results
            .iter()
            .filter(|r| !r.expect_fail && r.verdict == Some(Verdict::Pass))
            .count();
        let located = self
            .results
            .iter()
            .filter(|r| r.flagged_mutant() && r.located)
            .count();
        let module_in_final = self
            .results
            .iter()
            .filter(|r| r.flagged_mutant() && r.module_in_final)
            .count();
        let reductions: Vec<f64> = self
            .results
            .iter()
            .filter_map(ScenarioResult::slice_reduction)
            .collect();
        let refined = self.results.iter().filter(|r| r.iterations > 0).count();
        let rate = |num: usize, den: usize| {
            if den > 0 {
                num as f64 / den as f64
            } else {
                1.0
            }
        };
        // A campaign with mutants but zero flags means the flagger is
        // broken, not that localization is vacuously perfect — report 0
        // so `--assert-localization` cannot pass on a dead detector.
        let localization_rate = if mutants > 0 && mutants_flagged == 0 {
            0.0
        } else {
            rate(located, mutants_flagged)
        };
        Summary {
            scenarios,
            mutants,
            cleans,
            errors,
            degraded,
            mutants_flagged,
            cleans_passed,
            flagged_rate: rate(mutants_flagged, mutants),
            clean_pass_rate: rate(cleans_passed, cleans),
            located,
            localization_rate,
            module_in_final,
            mean_slice_reduction: if reductions.is_empty() {
                0.0
            } else {
                reductions.iter().sum::<f64>() / reductions.len() as f64
            },
            mean_iterations: if refined > 0 {
                self.results.iter().map(|r| r.iterations).sum::<usize>() as f64 / refined as f64
            } else {
                0.0
            },
        }
    }

    /// Renders the human-readable report (including timing).
    pub fn render(&self) -> String {
        let s = self.summary();
        let mut out = String::new();
        let _ = writeln!(out, "== rca-campaign scorecard ==");
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>8} {:>8} {:>6} {:>6} {:>8}  stop",
            "scenario", "verdict", "located", "modfinal", "slice", "iters", "ms"
        );
        for r in &self.results {
            let verdict = match (&r.error, r.verdict) {
                (Some(_), _) => "ERROR",
                (None, Some(Verdict::Fail)) => "Fail",
                (None, Some(Verdict::Pass)) => "Pass",
                (None, None) => "-",
            };
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>8} {:>8} {:>6} {:>6} {:>8.0}  {}",
                r.name,
                verdict,
                if r.located { "yes" } else { "-" },
                if r.module_in_final { "yes" } else { "-" },
                r.slice_nodes,
                r.iterations,
                r.wall_ms,
                r.stop.map(|s| s.to_string()).unwrap_or_default(),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "scenarios: {} ({} mutants, {} cleans, {} errors)",
            s.scenarios, s.mutants, s.cleans, s.errors
        );
        if s.degraded > 0 {
            let _ = writeln!(
                out,
                "degraded: {} scenario(s) diagnosed from a reduced ensemble quorum",
                s.degraded
            );
        }
        let _ = writeln!(
            out,
            "verdict accuracy: {}/{} mutants flagged ({:.0}%), {}/{} cleans passed ({:.0}%)",
            s.mutants_flagged,
            s.mutants,
            s.flagged_rate * 100.0,
            s.cleans_passed,
            s.cleans,
            s.clean_pass_rate * 100.0
        );
        let _ = writeln!(
            out,
            "localization: {}/{} flagged mutants located ({:.0}%), {} with module in final suspects",
            s.located,
            s.mutants_flagged,
            s.localization_rate * 100.0,
            s.module_in_final
        );
        let _ = writeln!(
            out,
            "refinement: mean slice reduction {:.0}%, mean iterations {:.1}",
            s.mean_slice_reduction * 100.0,
            s.mean_iterations
        );
        let _ = writeln!(
            out,
            "wall time: {:.2} s ({:.2} diagnoses/sec)",
            self.wall_seconds,
            self.throughput()
        );
        let errored: Vec<&ScenarioResult> =
            self.results.iter().filter(|r| r.error.is_some()).collect();
        if !errored.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "errors:");
            for r in errored {
                if let Some(e) = &r.error {
                    let _ = writeln!(out, "  {}: {e}", r.name);
                }
            }
        }
        let rollup = self.profile_rollup();
        if !rollup.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "phase profile (all scenarios):");
            out.push_str(&rollup.render());
        }
        out
    }
}

// Deterministic machine export: same seed => byte-identical JSON (wall
// times deliberately excluded).
impl Serialize for Scorecard {
    fn to_json(&self) -> Json {
        Json::obj([
            ("summary", self.summary().to_json()),
            ("results", self.results.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, expect_fail: bool, verdict: Verdict, located: bool) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            kind: if expect_fail { "const" } else { "clean" }.to_string(),
            injected_module: expect_fail.then(|| "micro_mg".to_string()),
            detail: String::new(),
            expect_fail,
            verdict: Some(verdict),
            located,
            module_in_final: located,
            slice_nodes: 100,
            final_suspects: 20,
            iterations: 3,
            stop: Some(StopReason::SmallEnough),
            degraded: false,
            error: None,
            wall_ms: 1.0,
            profile: rca_obs::PhaseProfile::new(),
        }
    }

    #[test]
    fn summary_rates_count_correctly() {
        let card = Scorecard::new(
            vec![
                result("000-clean", false, Verdict::Pass, false),
                result("001-const", true, Verdict::Fail, true),
                result("002-const", true, Verdict::Fail, false),
                result("003-const", true, Verdict::Pass, false), // missed mutant
            ],
            2.0,
        );
        let s = card.summary();
        assert_eq!(s.scenarios, 4);
        assert_eq!(s.mutants, 3);
        assert_eq!(s.cleans, 1);
        assert_eq!(s.mutants_flagged, 2);
        assert_eq!(s.cleans_passed, 1);
        assert_eq!(s.located, 1);
        assert!((s.flagged_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.localization_rate - 0.5).abs() < 1e-12);
        assert!((s.mean_slice_reduction - 0.8).abs() < 1e-12);
        assert!((card.throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn localization_is_not_vacuous_when_no_mutant_is_flagged() {
        // A dead detector (every mutant passes) must score 0, not a
        // vacuous 100%, or the CI floor would green-light it.
        let card = Scorecard::new(
            vec![
                result("001-const", true, Verdict::Pass, false),
                result("002-const", true, Verdict::Pass, false),
            ],
            1.0,
        );
        let s = card.summary();
        assert_eq!(s.mutants_flagged, 0);
        assert_eq!(s.localization_rate, 0.0);
        // With no mutants at all there is nothing to assess: vacuous 1.0.
        let clean_only =
            Scorecard::new(vec![result("000-clean", false, Verdict::Pass, false)], 1.0);
        assert_eq!(clean_only.summary().localization_rate, 1.0);
    }

    #[test]
    fn json_export_excludes_timing_and_is_deterministic() {
        let card = Scorecard::new(vec![result("001-const", true, Verdict::Fail, true)], 1.5);
        let a = serde_json::to_string(&card).unwrap();
        let faster = Scorecard::new(card.results.clone(), 0.3);
        let b = serde_json::to_string(&faster).unwrap();
        assert_eq!(a, b, "wall time must not leak into the JSON export");
        assert!(!a.contains("wall"));
        let v = serde_json::from_str(&a).unwrap();
        assert_eq!(v["summary"]["mutants_flagged"].as_u64(), Some(1));
        assert_eq!(v["results"][0]["name"].as_str(), Some("001-const"));
    }

    #[test]
    fn degraded_and_error_keys_are_conditional_and_typed() {
        // Healthy result: no `degraded` key anywhere, `error` is null —
        // the exact byte shape of pre-fault-plane scorecards.
        let healthy = Scorecard::new(vec![result("000-clean", false, Verdict::Pass, false)], 1.0);
        let j = serde_json::to_string(&healthy).unwrap();
        assert!(!j.contains("degraded"));
        assert!(
            j.contains("\"error\": null") || j.contains("\"error\":null"),
            "{j}"
        );

        // Degraded result: the key appears on the scenario and the count
        // lands in the summary.
        let mut r = result("001-const", true, Verdict::Fail, true);
        r.degraded = true;
        let card = Scorecard::new(vec![r], 1.0);
        assert_eq!(card.summary().degraded, 1);
        let v = serde_json::from_str(&serde_json::to_string(&card).unwrap()).unwrap();
        assert_eq!(v["summary"]["degraded"].as_u64(), Some(1));
        assert!(matches!(
            v["results"][0]["degraded"],
            serde_json::Value::Bool(true)
        ));

        // Absorbed errors serialize as the typed taxonomy payload.
        let mut e = result("002-const", true, Verdict::Fail, false);
        e.verdict = None;
        e.error = Some(AbsorbedError {
            kind: "budget".to_string(),
            retryable: true,
            message: "run budget exhausted (fuel): ...".to_string(),
        });
        let card = Scorecard::new(vec![e], 1.0);
        assert_eq!(card.summary().errors, 1);
        let v = serde_json::from_str(&serde_json::to_string(&card).unwrap()).unwrap();
        assert_eq!(v["results"][0]["error"]["kind"].as_str(), Some("budget"));
        assert!(matches!(
            v["results"][0]["error"]["retryable"],
            serde_json::Value::Bool(true)
        ));
        let text = card.render();
        assert!(text.contains("[budget, retryable]"), "{text}");
    }

    #[test]
    fn render_reports_rates_and_throughput() {
        let card = Scorecard::new(
            vec![
                result("000-clean", false, Verdict::Pass, false),
                result("001-const", true, Verdict::Fail, true),
            ],
            1.0,
        );
        let text = card.render();
        assert!(text.contains("1/1 mutants flagged"));
        assert!(text.contains("1/1 cleans passed"));
        assert!(text.contains("diagnoses/sec"));
    }
}
