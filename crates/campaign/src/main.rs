//! `rca-campaign` — run a seeded fault-injection campaign from the shell.
//!
//! ```text
//! rca-campaign [--scenarios N] [--seed S] [--scale test|medium|paper]
//!              [--oracle reachability|runtime] [--oracle-fastpath on|off]
//!              [--clean-every K] [--paper]
//!              [--signflip] [--fma-scale F] [--runtime-faults S]
//!              [--checkpoint PATH] [--stop-after N] [--fuel N]
//!              [--engine vm|tree] [--wall-budget-ms MS] [--threads N] [--json PATH]
//!              [--trace-out PATH] [--metrics] [--quiet]
//!              [--assert-localization R] [--assert-clean-pass R]
//!              [--assert-flagged R]
//! ```
//!
//! `--signflip` adds the additive `+`→`-` operator to the mutation mix
//! (off by default so recorded fixed-seed baselines stay byte-identical).
//! `--runtime-faults S` seeds the runtime chaos axis: executor-injected
//! member faults (NaN/Inf poisoning, stuck values, aborts) that exercise
//! retry, quarantine, and quorum fitting — like `--signflip`, off by
//! default and independent of the mutation plan. `--fuel` and
//! `--wall-budget-ms` bound each run / diagnosis, surfacing as retryable
//! budget errors instead of hangs. `--engine tree` runs every simulation
//! on the slot-indexed tree executor instead of the bytecode VM — the
//! engines are bit-identical by contract, so the whole-campaign
//! scorecards must match byte-for-byte (the CI engine cross-check).
//! `--oracle-fastpath off` likewise disables the runtime oracle's
//! slice-specialized fast path — fast paths never change evidence, so
//! the on/off scorecards must also match byte-for-byte (the CI
//! fastpath cross-check).
//!
//! `--checkpoint PATH` makes the campaign resumable: finished scenarios
//! stream to an append-only JSONL file and a rerun with the same plan
//! skips them (`--stop-after N` is the deterministic interruption used
//! by the CI kill-and-resume gate).
//!
//! The JSON artifact is deterministic for a given seed (timing excluded),
//! so CI can both diff it and assert quality floors via the `--assert-*`
//! flags (exit code 1 on violation). `--trace-out` streams the run as a
//! JSONL trace (per-scenario progress, every pipeline phase span) into
//! the telemetry channel — the scorecard bytes are identical with or
//! without it, which the CI trace-smoke gate asserts. `--metrics` prints
//! the process-wide counter/gauge/histogram snapshot and the aggregate
//! phase profile to stderr after the run.
//!
//! Exit codes: `0` clean, `1` assertion-floor violation, `2` usage,
//! `3` completed but some scenario failures were absorbed into the
//! scorecard (see its `errors` section).

use rca_campaign::{run_campaign, CampaignOptions, RunnerOptions};
use rca_core::{ExperimentSetup, OracleKind};
use rca_model::{generate, ModelConfig};
use std::process::ExitCode;

struct Args {
    opts: CampaignOptions,
    runner: RunnerOptions,
    fuel: Option<u64>,
    engine: rca_sim::ExecEngine,
    scale: String,
    json: Option<String>,
    trace_out: Option<String>,
    metrics: bool,
    quiet: bool,
    assert_localization: Option<f64>,
    assert_clean_pass: Option<f64>,
    assert_flagged: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: rca-campaign [--scenarios N] [--seed S] [--scale test|medium|paper]\n\
         \x20                   [--oracle reachability|runtime] [--oracle-fastpath on|off]\n\
         \x20                   [--clean-every K] [--paper]\n\
         \x20                   [--signflip] [--fma-scale F] [--runtime-faults S]\n\
         \x20                   [--checkpoint PATH] [--stop-after N] [--fuel N]\n\
         \x20                   [--engine vm|tree] [--wall-budget-ms MS] [--threads N] [--json PATH]\n\
         \x20                   [--trace-out PATH] [--metrics] [--quiet]\n\
         \x20                   [--assert-localization R] [--assert-clean-pass R]\n\
         \x20                   [--assert-flagged R]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        opts: CampaignOptions::default(),
        runner: RunnerOptions::default(),
        fuel: None,
        engine: rca_sim::ExecEngine::Vm,
        scale: "test".to_string(),
        json: None,
        trace_out: None,
        metrics: false,
        quiet: false,
        assert_localization: None,
        assert_clean_pass: None,
        assert_flagged: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scenarios" => {
                args.opts.scenarios = value("--scenarios").parse().unwrap_or_else(|_| usage());
            }
            "--seed" => args.opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--clean-every" => {
                args.opts.clean_every = value("--clean-every").parse().unwrap_or_else(|_| usage());
            }
            "--fma-scale" => {
                args.opts.fma_scale = value("--fma-scale").parse().unwrap_or_else(|_| usage());
            }
            "--paper" => args.opts.include_paper = true,
            "--signflip" => args.opts.sign_flip = true,
            "--runtime-faults" => {
                args.opts.runtime_faults = value("--runtime-faults")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--checkpoint" => {
                args.runner.checkpoint = Some(value("--checkpoint").into());
            }
            "--stop-after" => {
                args.runner.stop_after =
                    Some(value("--stop-after").parse().unwrap_or_else(|_| usage()));
            }
            "--fuel" => args.fuel = Some(value("--fuel").parse().unwrap_or_else(|_| usage())),
            "--engine" => {
                args.engine = match value("--engine").as_str() {
                    "vm" => rca_sim::ExecEngine::Vm,
                    "tree" => rca_sim::ExecEngine::Tree,
                    other => {
                        eprintln!("unknown engine: {other}");
                        usage()
                    }
                };
            }
            "--wall-budget-ms" => {
                let ms: u64 = value("--wall-budget-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                args.runner.wall_budget = Some(std::time::Duration::from_millis(ms));
            }
            "--scale" => args.scale = value("--scale"),
            "--oracle" => {
                args.runner.oracle = match value("--oracle").as_str() {
                    "reachability" => OracleKind::Reachability,
                    "runtime" => OracleKind::Runtime,
                    other => {
                        eprintln!("unknown oracle: {other}");
                        usage()
                    }
                }
            }
            "--oracle-fastpath" => {
                args.runner.oracle_fastpath = match value("--oracle-fastpath").as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("unknown --oracle-fastpath value: {other}");
                        usage()
                    }
                }
            }
            "--threads" => {
                // The rayon compat layer reads this per fan-out.
                std::env::set_var("RAYON_NUM_THREADS", value("--threads"));
            }
            "--json" => args.json = Some(value("--json")),
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--metrics" => args.metrics = true,
            "--quiet" => args.quiet = true,
            "--assert-localization" => {
                args.assert_localization = Some(
                    value("--assert-localization")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--assert-clean-pass" => {
                args.assert_clean_pass = Some(
                    value("--assert-clean-pass")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--assert-flagged" => {
                args.assert_flagged = Some(
                    value("--assert-flagged")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let (config, setup) = match args.scale.as_str() {
        "test" => (ModelConfig::test(), ExperimentSetup::quick()),
        "medium" => (ModelConfig::medium(), ExperimentSetup::quick()),
        "paper" => (ModelConfig::paper(), ExperimentSetup::default()),
        other => {
            eprintln!("unknown scale: {other}");
            usage()
        }
    };
    let runner = RunnerOptions {
        setup: rca_core::ExperimentSetup {
            fuel: args.fuel,
            engine: args.engine,
            ..setup
        },
        oracle: args.runner.oracle,
        oracle_fastpath: args.runner.oracle_fastpath,
        checkpoint: args.runner.checkpoint.clone(),
        stop_after: args.runner.stop_after,
        wall_budget: args.runner.wall_budget,
    };
    let model = generate(&config);
    // The trace sink is thread-scoped: install it around the whole run so
    // every span and event the campaign emits lands in one JSONL stream.
    let outcome = match &args.trace_out {
        None => run_campaign(&model, &args.opts, &runner),
        Some(path) => {
            let writer = match rca_obs::JsonlWriter::create(path) {
                Ok(w) => std::sync::Arc::new(w),
                Err(e) => {
                    eprintln!("cannot open trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let res =
                rca_obs::with_sink(writer.clone(), || run_campaign(&model, &args.opts, &runner));
            if let Err(e) = writer.finish() {
                eprintln!("cannot flush trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
            if !args.quiet {
                eprintln!("trace written to {path}");
            }
            res
        }
    };
    let card = match outcome {
        Ok(card) => card,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        print!("{}", card.render());
    }
    if args.metrics {
        eprint!("{}", rca_obs::metrics_snapshot().render());
        let phases = rca_obs::phase_snapshot();
        if !phases.is_empty() {
            eprint!("{}", phases.render());
        }
    }
    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&card).expect("serialization is infallible");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            println!("scorecard written to {path}");
        }
    }
    let s = card.summary();
    let mut ok = true;
    if let Some(floor) = args.assert_localization {
        if s.localization_rate < floor {
            eprintln!(
                "ASSERTION FAILED: localization rate {:.2} < floor {floor:.2}",
                s.localization_rate
            );
            ok = false;
        }
    }
    if let Some(floor) = args.assert_clean_pass {
        if s.clean_pass_rate < floor {
            eprintln!(
                "ASSERTION FAILED: clean pass rate {:.2} < floor {floor:.2}",
                s.clean_pass_rate
            );
            ok = false;
        }
    }
    if let Some(floor) = args.assert_flagged {
        if s.flagged_rate < floor {
            eprintln!(
                "ASSERTION FAILED: flagged rate {:.2} < floor {floor:.2}",
                s.flagged_rate
            );
            ok = false;
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    // Distinct from both success and assertion failure: the campaign
    // completed, but some scenarios' failures were absorbed into the
    // scorecard (rendered in its errors section) instead of aborting
    // the batch. Callers that must not tolerate silent absorption gate
    // on this code.
    if s.errors > 0 {
        eprintln!(
            "{} scenario failure(s) absorbed into the scorecard (exit 3)",
            s.errors
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
