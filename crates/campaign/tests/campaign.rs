//! Campaign-level integration tests: seeded determinism (byte-identical
//! scorecards), the mutation property suite, and paper-experiment
//! localization through the batch machinery.

use proptest::prelude::*;
use rca_campaign::{
    campaign_sites, mutate_site, run_campaign, CampaignOptions, CampaignRng, MutationKind,
    RunnerOptions,
};
use rca_core::{ExperimentSetup, RcaSession};
use rca_model::{generate, ModelConfig, ModelSource, PatchSite};
use rca_stats::Verdict;
use std::sync::OnceLock;

fn fixture() -> &'static (ModelSource, RcaSession<'static>, Vec<PatchSite>) {
    static MODEL: OnceLock<ModelSource> = OnceLock::new();
    static FIX: OnceLock<(ModelSource, RcaSession<'static>, Vec<PatchSite>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let m = MODEL.get_or_init(|| generate(&ModelConfig::test()));
        let session = RcaSession::builder(m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        let sites = campaign_sites(m, &session);
        (m.clone(), session, sites)
    })
}

#[test]
fn same_seed_produces_byte_identical_scorecard_json() {
    let (model, _, _) = fixture();
    let opts = CampaignOptions {
        scenarios: 6,
        seed: 0xBEEF,
        ..Default::default()
    };
    let a = run_campaign(model, &opts, &RunnerOptions::default()).expect("campaign");
    let b = run_campaign(model, &opts, &RunnerOptions::default()).expect("campaign");
    let ja = serde_json::to_string_pretty(&a).unwrap();
    let jb = serde_json::to_string_pretty(&b).unwrap();
    assert_eq!(ja, jb, "same seed must reproduce the identical scorecard");
    // And a different seed must not (the plans differ).
    let c = run_campaign(
        model,
        &CampaignOptions {
            seed: 0xBEEF + 1,
            ..opts
        },
        &RunnerOptions::default(),
    )
    .expect("campaign");
    assert_ne!(ja, serde_json::to_string_pretty(&c).unwrap());
}

#[test]
fn paper_experiments_all_localize_through_the_batch_runner() {
    let (model, _, _) = fixture();
    let opts = CampaignOptions {
        scenarios: 0,
        include_paper: true,
        ..Default::default()
    };
    let card = run_campaign(model, &opts, &RunnerOptions::default()).expect("campaign");
    assert_eq!(card.results.len(), 7);
    for r in &card.results {
        assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
        if r.name == "paper-CONTROL" {
            assert_eq!(r.verdict, Some(Verdict::Pass));
        } else {
            assert_eq!(r.verdict, Some(Verdict::Fail), "{}", r.name);
            assert!(r.located, "{} must be located", r.name);
            assert!(
                r.module_in_final,
                "{}: injected module must be in the final slice",
                r.name
            );
        }
    }
    let s = card.summary();
    assert_eq!(s.mutants_flagged, s.mutants);
    assert_eq!(s.localization_rate, 1.0);
}

#[test]
fn campaign_smoke_flags_and_localizes_mutants() {
    // The CI smoke configuration: N=8, fixed seed, quality floors.
    let (model, _, _) = fixture();
    let opts = CampaignOptions {
        scenarios: 8,
        seed: 51966,
        ..Default::default()
    };
    let card = run_campaign(model, &opts, &RunnerOptions::default()).expect("campaign");
    let s = card.summary();
    assert_eq!(s.errors, 0);
    assert_eq!(
        s.clean_pass_rate,
        1.0,
        "cleans must pass: {}",
        card.render()
    );
    assert!(
        s.flagged_rate >= 0.5,
        "too few mutants flagged: {}",
        card.render()
    );
    assert_eq!(
        s.localization_rate,
        1.0,
        "every flagged mutant must be located: {}",
        card.render()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn seeded_source_mutations_are_deterministic_and_grounded(
        seed in any::<u64>(),
        kind in prop::sample::select(MutationKind::SOURCE_KINDS.to_vec()),
    ) {
        let (model, session, sites) = fixture();
        let applicable: Vec<&PatchSite> =
            sites.iter().filter(|s| kind.applies_to(s)).collect();
        prop_assert!(!applicable.is_empty());
        let site = applicable[CampaignRng::new(seed).below(applicable.len())];

        // Determinism: the same seed reproduces the identical mutant.
        let (m1, d1) = mutate_site(model, site, kind, &mut CampaignRng::new(seed))
            .expect("site applies");
        let (m2, d2) = mutate_site(model, site, kind, &mut CampaignRng::new(seed))
            .expect("site applies");
        prop_assert_eq!(&d1, &d2);
        for (a, b) in m1.files.iter().zip(&m2.files) {
            prop_assert_eq!(&a.source, &b.source);
        }

        // The mutant still parses through the full front end.
        let (_, errs) = m1.parse();
        prop_assert!(errs.is_empty(), "{:?}", errs);

        // No orphaned injections: the ground-truth module and target are
        // reachable in the session's metagraph.
        let mg = session.metagraph();
        prop_assert!(mg.modules.contains(&site.module));
        let node = mg
            .node_by_key(&site.module, Some(&site.subprogram), &site.target)
            .or_else(|| mg.node_by_key(&site.module, None, &site.target));
        prop_assert!(node.is_some(), "{}::{} not in graph", site.module, site.target);
    }
}
