//! Fault-tolerance plane integration tests: seeded runtime fault plans
//! never panic the pipeline (every outcome is a `Diagnosis` or a
//! structured `RcaError`), quorum edges degrade instead of diverging,
//! budgets surface as retryable errors, and checkpointed campaigns
//! resume byte-identically.

use proptest::prelude::*;
use rca_campaign::{run_campaign, CampaignOptions, RunnerOptions};
use rca_core::{ExperimentSetup, RcaError, RcaSession, Scenario};
use rca_model::{generate, ModelConfig, ModelSource};
use rca_sim::{Fault, FaultKind, FaultPlan};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn fixture() -> &'static (Arc<ModelSource>, RcaSession<'static>) {
    static MODEL: OnceLock<ModelSource> = OnceLock::new();
    static FIX: OnceLock<(Arc<ModelSource>, RcaSession<'static>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let m = MODEL.get_or_init(|| generate(&ModelConfig::test()));
        let session = RcaSession::builder(m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        (Arc::new(m.clone()), session)
    })
}

/// A clean scenario whose experimental members run under `plan`.
fn chaos_scenario(name: &str, plan: FaultPlan) -> Scenario {
    let (model, session) = fixture();
    let mut config = session.control_config();
    config.faults = plan;
    Scenario::new(name.to_string(), model.clone(), config)
}

/// Persistent aborts for members `0..n` — nothing survives retries.
fn abort_members(n: u32) -> FaultPlan {
    FaultPlan {
        faults: (0..n)
            .map(|m| Fault {
                member: m,
                step: 1,
                output: 0,
                kind: FaultKind::Abort,
                persistent: true,
            })
            .collect(),
    }
}

#[test]
fn all_members_failing_is_a_structured_quorum_error() {
    let (_, session) = fixture();
    let n = session.setup().n_experiment as u32;
    let scenario = chaos_scenario("all-abort", abort_members(n));
    let err = session
        .diagnose_scenario(&scenario)
        .expect_err("zero survivors cannot meet any quorum");
    assert!(matches!(err, RcaError::Stats(_)), "{err:?}");
    let msg = err.to_string();
    assert!(msg.contains("below quorum"), "{msg}");
    assert!(msg.contains("member-abort"), "cause must be carried: {msg}");
}

#[test]
fn exactly_quorum_survivors_degrade_instead_of_erroring() {
    let (_, session) = fixture();
    let setup = session.setup();
    let n = setup.n_experiment;
    let quorum = setup.retry.experiment_quorum(n);
    assert!(quorum < n, "test needs headroom to quarantine");
    // Quarantine all but exactly `quorum` members.
    let scenario = chaos_scenario("exact-quorum", abort_members((n - quorum) as u32));
    let d = session
        .diagnose_scenario(&scenario)
        .expect("quorum survivors must still produce a diagnosis");
    let note = d.degraded.expect("degraded ensembles must be noted");
    assert_eq!(note.experimental.surviving as usize, quorum);
    assert_eq!(note.experimental.quarantined as usize, n - quorum);
    assert!(d.render().contains("DEGRADED ensemble"), "{}", d.render());
}

#[test]
fn fuel_exhaustion_surfaces_the_budget_cause() {
    let (_, session) = fixture();
    let mut config = session.control_config();
    config.fuel = Some(20); // far below one run's statement count
    let scenario = Scenario::new("starved".to_string(), fixture().0.clone(), config);
    let err = session
        .diagnose_scenario(&scenario)
        .expect_err("every member starves");
    let msg = err.to_string();
    assert!(msg.contains("below quorum"), "{msg}");
    assert!(msg.contains("fuel budget"), "{msg}");
}

#[test]
fn wall_budget_is_a_retryable_typed_error() {
    let (model, _) = fixture();
    let session = RcaSession::builder(model)
        .setup(ExperimentSetup::quick())
        .wall_budget(Duration::ZERO)
        .build()
        .expect("budget applies per diagnosis, not to the build");
    let scenario = Scenario::new(
        "no-time".to_string(),
        model.clone(),
        session.control_config(),
    );
    let err = session
        .diagnose_scenario(&scenario)
        .expect_err("a zero wall budget cannot complete a diagnosis");
    assert!(matches!(err, RcaError::Budget { .. }), "{err:?}");
    assert!(err.is_retryable());
    assert_eq!(err.kind_slug(), "budget");
    assert!(err.to_string().contains("wall-clock"), "{err}");
}

#[test]
fn chaos_campaign_completes_with_absorbed_or_degraded_outcomes() {
    let (model, _) = fixture();
    let opts = CampaignOptions {
        scenarios: 8,
        seed: 0xC0FFEE,
        runtime_faults: 0xFA17,
        ..Default::default()
    };
    let card = run_campaign(model, &opts, &RunnerOptions::default()).expect("campaign");
    assert_eq!(card.results.len(), 8);
    for r in &card.results {
        // Every scenario either produced a verdict or a typed absorbed
        // error — never a panic, never a stringly outcome.
        assert!(
            r.verdict.is_some() || r.error.is_some(),
            "{} has neither verdict nor error",
            r.name
        );
        if let Some(e) = &r.error {
            assert!(!e.kind.is_empty());
        }
    }
    let s = card.summary();
    assert_eq!(s.scenarios, 8);
    // And the chaos axis is deterministic: same seeds, same scorecard.
    let again = run_campaign(model, &opts, &RunnerOptions::default()).expect("campaign");
    assert_eq!(
        serde_json::to_string(&card).unwrap(),
        serde_json::to_string(&again).unwrap()
    );
}

#[test]
fn interrupted_checkpointed_campaign_resumes_byte_identically() {
    let (model, _) = fixture();
    let opts = CampaignOptions {
        scenarios: 6,
        seed: 0xBEAD,
        ..Default::default()
    };
    let path = std::env::temp_dir().join(format!("rca-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Uninterrupted reference run (no checkpoint).
    let reference = run_campaign(model, &opts, &RunnerOptions::default()).expect("campaign");
    // First leg: stop after three fresh scenarios (the deterministic
    // stand-in for a mid-campaign kill).
    let interrupted = RunnerOptions {
        checkpoint: Some(path.clone()),
        stop_after: Some(3),
        ..Default::default()
    };
    let partial = run_campaign(model, &opts, &interrupted).expect("campaign");
    assert_eq!(partial.results.len(), 3, "stopped after three scenarios");
    // Second leg: same checkpoint, no stop — restores the three and runs
    // the rest.
    let resumed_opts = RunnerOptions {
        checkpoint: Some(path.clone()),
        ..Default::default()
    };
    let resumed = run_campaign(model, &opts, &resumed_opts).expect("campaign");
    assert_eq!(resumed.results.len(), 6);
    assert_eq!(
        serde_json::to_string_pretty(&resumed).unwrap(),
        serde_json::to_string_pretty(&reference).unwrap(),
        "merged scorecard must be byte-identical to the uninterrupted run"
    );
    // Third leg: everything is restored, nothing re-runs, still
    // byte-identical.
    let replayed = run_campaign(model, &opts, &resumed_opts).expect("campaign");
    assert_eq!(
        serde_json::to_string_pretty(&replayed).unwrap(),
        serde_json::to_string_pretty(&reference).unwrap()
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The no-panic contract: any seeded fault plan driven through the
    /// full pipeline yields a diagnosis or a structured error.
    #[test]
    fn seeded_fault_plans_never_panic_the_pipeline(fault_seed in any::<u64>()) {
        let (_, session) = fixture();
        let setup = session.setup();
        let steps = session.control_config().steps;
        let plan = FaultPlan::seeded(fault_seed, setup.n_experiment, steps, 3);
        let scenario = chaos_scenario("prop-chaos", plan);
        match session.diagnose_scenario(&scenario) {
            Ok(d) => {
                // A degraded note is only recorded when some member
                // actually retried or was quarantined, on either side.
                if let Some(n) = d.degraded {
                    prop_assert!(
                        n.control.degraded() || n.experimental.degraded(),
                        "vacuous degraded note: {n}"
                    );
                }
            }
            Err(e) => {
                // Structured, displayable, classified.
                prop_assert!(!e.kind_slug().is_empty());
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
