//! Pruned-vs-full oracle equivalence over seeded campaign mutants.
//!
//! The core crate fences the fast path on the paper's seven experiments;
//! this sweep fences it on the *adversarial* family — campaign-planned
//! defect mutants whose injected statements land at arbitrary points in
//! the dependence graph, including inside statements the specializer
//! prunes. For every sampled (seed, experiment) pair the runtime-oracle
//! session with `oracle_fastpath(true)` must produce byte-identical
//! serialized diagnoses to the `oracle_fastpath(false)` session, both for
//! the planned mutant scenarios and for the paper experiment applied on
//! top of the same base model.

use proptest::prelude::*;
use rca_campaign::{plan_campaign, CampaignOptions};
use rca_core::{ExperimentSetup, OracleKind, RcaSession};
use rca_model::{generate, Experiment, ModelConfig, ModelSource};
use std::sync::OnceLock;

fn model() -> &'static ModelSource {
    static MODEL: OnceLock<ModelSource> = OnceLock::new();
    MODEL.get_or_init(|| generate(&ModelConfig::test()))
}

fn session(fastpath: bool) -> RcaSession<'static> {
    RcaSession::builder(model())
        .setup(ExperimentSetup::quick())
        .oracle(OracleKind::Runtime)
        .oracle_fastpath(fastpath)
        .build()
        .expect("session")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fastpath_diagnoses_match_full_over_seeded_mutants(
        seed in any::<u64>(),
        exp in prop::sample::select(vec![
            Experiment::WsubBug,
            Experiment::RandMt,
            Experiment::GoffGratch,
            Experiment::Avx2,
            Experiment::RandomBug,
            Experiment::Dyn3Bug,
        ]),
    ) {
        let on = session(true);
        let off = session(false);

        // The paper experiment itself, under this sampled pairing.
        let d_on = on.diagnose(exp).expect("diagnose on");
        let d_off = off.diagnose(exp).expect("diagnose off");
        prop_assert_eq!(
            serde_json::to_string_pretty(&d_on).expect("serialize"),
            serde_json::to_string_pretty(&d_off).expect("serialize"),
            "{}: fastpath changed the diagnosis artifact", exp.name()
        );

        // A seeded slice of the campaign's mutant family: every planned
        // scenario (source mutants, config mutants, and clean controls
        // alike) must diagnose identically with the fast path on and off.
        let plan = plan_campaign(
            &std::sync::Arc::new(model().clone()),
            &on,
            &CampaignOptions { scenarios: 4, seed, clean_every: 3, ..Default::default() },
        );
        prop_assert!(!plan.is_empty(), "seed {seed}: empty campaign plan");
        for entry in &plan {
            let r_on = on.diagnose_scenario(&entry.scenario);
            let r_off = off.diagnose_scenario(&entry.scenario);
            match (r_on, r_off) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    serde_json::to_string_pretty(&a).expect("serialize"),
                    serde_json::to_string_pretty(&b).expect("serialize"),
                    "{} ({}): fastpath diverged", entry.scenario.name, entry.detail
                ),
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "{} ({}): fastpath changed the failure", entry.scenario.name, entry.detail
                ),
                (a, b) => prop_assert!(
                    false,
                    "{} ({}): one path failed: on={:?} off={:?}",
                    entry.scenario.name, entry.detail, a.is_ok(), b.is_ok()
                ),
            }
        }
    }
}
