//! Seeded-mutant differential: the static analysis plane vs the session
//! planes, on campaign-generated defect variants.
//!
//! Three fences, all over the same seeded mutant family:
//!
//! 1. the metagraph observability filter and the IR classifier agree on
//!    **every** enumerated patch site (not just survivors);
//! 2. the IR slicer agrees with `backward_slice` node-for-node on every
//!    source-mutant model a campaign plans;
//! 3. the default fixed-seed campaign plan is byte-stable (pinned
//!    digest), so the `patch_sites` reachability tightening and the
//!    static pre-filter provably changed nothing for recorded seeds.

use rca_campaign::{campaign_sites, plan_campaign, CampaignOptions, ScenarioClass};
use rca_core::{backward_slice_names, ExperimentSetup, RcaPipeline, RcaSession};
use rca_model::{generate, ModelConfig, ModelSource};
use rca_sim::compile_sources;
use std::sync::{Arc, OnceLock};

fn fixture() -> &'static (Arc<ModelSource>, RcaSession<'static>) {
    static MODEL: OnceLock<ModelSource> = OnceLock::new();
    static FIX: OnceLock<(Arc<ModelSource>, RcaSession<'static>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let m = MODEL.get_or_init(|| generate(&ModelConfig::test()));
        let session = RcaSession::builder(m)
            .setup(ExperimentSetup::quick())
            .build()
            .expect("session");
        (Arc::new(m.clone()), session)
    })
}

#[test]
fn observability_planes_agree_on_every_enumerated_site() {
    let (model, session) = fixture();
    let mg = session.metagraph();
    let syms = session.symbols();
    let analysis = session.analyze().expect("analysis");
    let mut outputs: Vec<_> = mg
        .io_calls
        .iter()
        .flat_map(|c| mg.nodes_with_var(c.internal))
        .copied()
        .collect();
    outputs.sort();
    outputs.dedup();
    let observable = rca_graph::bfs_multi(&mg.graph, &outputs, rca_graph::Direction::In);
    let mut checked = 0usize;
    for s in rca_model::patch_sites(model) {
        let (Some(m), Some(v)) = (syms.module_id(&s.module), syms.var_id(&s.target)) else {
            continue;
        };
        let sub = syms.var_id(&s.subprogram);
        let mg_observable = sub
            .and_then(|sv| mg.node_by_ids(m, Some(sv), v))
            .or_else(|| mg.node_by_ids(m, None, v))
            .is_some_and(|n| observable.reached(n));
        let class = analysis.classify_site(&s.module, &s.subprogram, &s.target);
        assert_eq!(
            mg_observable,
            class == rca_analysis::SiteClass::Observable,
            "planes disagree at {}::{}::{} ({class:?})",
            s.module,
            s.subprogram,
            s.target
        );
        checked += 1;
    }
    assert!(checked > 100, "only {checked} sites cross-checked");
    // And the campaign's surviving set is non-empty under the
    // intersection of both planes.
    assert!(!campaign_sites(model, session).is_empty());
}

#[test]
fn static_slicer_agrees_with_backward_slice_on_campaign_mutants() {
    let (model, session) = fixture();
    let mut mutants_checked = 0usize;
    for seed in [7u64, 42, 51966] {
        let plan = plan_campaign(
            model,
            session,
            &CampaignOptions {
                scenarios: 6,
                seed,
                clean_every: 0,
                ..Default::default()
            },
        );
        for entry in &plan {
            // Config-level mutants share the base source; only source
            // mutants produce a new slicing universe.
            let ScenarioClass::Mutant(kind) = entry.class else {
                continue;
            };
            if !rca_campaign::MutationKind::SOURCE_KINDS.contains(&kind) {
                continue;
            }
            let mutated = &entry.scenario.model;
            let pipeline = RcaPipeline::build(mutated).expect("mutant pipeline");
            let internal = pipeline.outputs_to_internal(&["flds".into(), "taux".into()]);
            let criteria: Vec<&str> = internal.iter().map(String::as_str).collect();
            let names: Vec<String> = criteria.iter().map(|s| (*s).to_string()).collect();
            let mg = &pipeline.metagraph;
            let slice = backward_slice_names(mg, &names, |_| true);
            let mut meta: Vec<(String, Option<String>, String)> = slice
                .meta_nodes()
                .iter()
                .map(|&n| {
                    (
                        mg.module_name_of(n).to_string(),
                        mg.subprogram_of(n).map(str::to_string),
                        mg.canonical_of(n).to_string(),
                    )
                })
                .collect();
            meta.sort();
            let prog =
                compile_sources(pipeline.filtered_sources()).expect("mutant sources compile");
            let ir = rca_analysis::DepGraph::build(&prog).static_slice(&criteria, None);
            assert_eq!(
                meta, ir,
                "slicers disagree on {} ({})",
                entry.scenario.name, entry.detail
            );
            mutants_checked += 1;
        }
    }
    assert!(mutants_checked >= 5, "only {mutants_checked} mutants swept");
}

/// FNV-1a over the plan's observable surface: scenario names, injection
/// details, and ground-truth sites.
fn plan_digest(model: &Arc<ModelSource>, session: &RcaSession<'_>, opts: &CampaignOptions) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100000001b3);
    };
    for entry in plan_campaign(model, session, opts) {
        eat(&entry.scenario.name);
        eat(&entry.detail);
        for b in &entry.scenario.bug_sites {
            eat(&b.module);
            eat(&b.subprogram);
            eat(&b.canonical);
        }
    }
    h
}

#[test]
fn default_fixed_seed_plan_is_byte_stable() {
    // Pinned digest of the default-options plan (seed 0xCAFE, 50
    // scenarios). If the `patch_sites` dead-site tightening, the static
    // pre-filter, or the RNG stream ever shifts the plan, this moves —
    // and every recorded scorecard baseline silently re-rolls with it.
    let (model, session) = fixture();
    let opts = CampaignOptions::default();
    let a = plan_digest(model, session, &opts);
    let b = plan_digest(model, session, &opts);
    assert_eq!(a, b, "plan digest is not even run-stable");
    assert_eq!(
        a, 0x06716d8a2ccf1314,
        "fixed-seed campaign plan changed; recorded baselines are stale"
    );
}
