//! Offline stand-in for `rayon`.
//!
//! Implements the API subset the workspace uses — `par_iter`,
//! `into_par_iter`, `map`, `fold`, `collect` — with genuine parallelism:
//! items are split into one contiguous chunk per available core and each
//! chunk runs on a scoped `std::thread`. Semantics match rayon where it
//! matters to callers:
//!
//! - `fold` yields **one accumulator per chunk** (rayon: one per split),
//!   so downstream reductions that merge partials behave identically.
//! - `map` preserves input order.
//! - A panicking worker propagates the panic to the caller.
//!
//! `RAYON_NUM_THREADS` caps the worker count, like the real crate.

/// Everything callers normally import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// An eager "parallel iterator": the items to process, plus the chunked
/// thread pool driver in its combinator methods.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> std::fmt::Debug for ParIter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParIter")
            .field("len", &self.items.len())
            .finish()
    }
}

/// `into_par_iter()` for owned iterables (ranges, vectors, ...).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` for borrowed collections (slices, vectors, maps).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Borrows into a [`ParIter`] of references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send + 'a,
{
    type Item = <&'a C as IntoIterator>::Item;

    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

fn max_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Splits `items` into per-core chunks, runs `f` on each chunk in a scoped
/// thread, and concatenates the outputs in input order.
fn run_chunks<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> Vec<R> + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        return f(items);
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_chunks(self.items, |chunk| chunk.into_iter().map(&f).collect()),
        }
    }

    /// Like [`ParIter::map`], but threads a per-worker state value through
    /// the items of each parallel chunk (rayon's `map_init`: `init` runs
    /// once per split, here once per worker chunk). This is the executor
    /// reuse hook: a run-store fill creates one pooled executor per worker
    /// and resets it between ensemble members instead of rebuilding it.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParIter<R>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParIter {
            items: run_chunks(self.items, |chunk| {
                let mut state = init();
                chunk.into_iter().map(|t| f(&mut state, t)).collect()
            }),
        }
    }

    /// Folds each parallel chunk separately, yielding one accumulator per
    /// chunk (rayon's per-split `fold` semantics).
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        if self.items.is_empty() {
            return ParIter { items: Vec::new() };
        }
        ParIter {
            items: run_chunks(self.items, |chunk| {
                vec![chunk.into_iter().fold(identity(), &fold_op)]
            }),
        }
    }

    /// Collects the processed items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<u32> = (0u32..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u32);
        }
    }

    #[test]
    fn par_iter_over_slice_refs() {
        let data = vec![1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = data.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn fold_partials_sum_to_sequential_total() {
        let partials: Vec<u64> = (1u64..=100)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .collect();
        assert!(!partials.is_empty());
        assert_eq!(partials.iter().sum::<u64>(), 5050);
    }

    #[test]
    fn fold_then_map_chains() {
        let maps: Vec<HashMap<u32, u32>> = (0u32..64)
            .into_par_iter()
            .fold(HashMap::new, |mut acc, x| {
                *acc.entry(x % 4).or_insert(0) += 1;
                acc
            })
            .map(|m| m)
            .collect();
        let mut total = 0;
        for m in maps {
            total += m.values().sum::<u32>();
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let r: Result<Vec<u32>, String> = (0u32..10)
            .into_par_iter()
            .map(|x| {
                if x == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r, Err("seven".to_string()));
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        // With >= 2 cores, two long-running chunks must overlap.
        if std::thread::available_parallelism().map_or(1, std::num::NonZero::get) < 2 {
            return;
        }
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let _: Vec<()> = (0..4)
            .into_par_iter()
            .map(|_| {
                let now = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                LIVE.fetch_sub(1, Ordering::SeqCst);
            })
            .collect();
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "no parallelism observed");
    }

    #[test]
    fn map_init_reuses_state_within_a_chunk() {
        // Every item observes a state; the number of distinct states is at
        // most the worker count, and order is preserved.
        let out: Vec<(usize, u32)> = (0u32..64)
            .into_par_iter()
            .map_init(
                || Box::new(0u32),
                |state, x| {
                    **state += 1;
                    (&**state as *const u32 as usize, x)
                },
            )
            .collect();
        assert_eq!(out.len(), 64);
        for (i, (_, x)) in out.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
        let distinct: std::collections::HashSet<usize> = out.iter().map(|&(p, _)| p).collect();
        assert!(distinct.len() <= super::max_threads().max(1));
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let folded: Vec<u32> = Vec::<u32>::new()
            .into_par_iter()
            .fold(|| 0, |a, b| a + b)
            .collect();
        assert!(folded.is_empty());
    }
}
