//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds in environments with no registry access, so the
//! real serde cannot be fetched. Nothing in the workspace serializes at
//! runtime yet — the `#[derive(Serialize, Deserialize)]` annotations are
//! forward-looking API surface — so the derives here accept the same
//! syntax and expand to an empty token stream. Swapping in the real
//! `serde`/`serde_derive` requires only a manifest change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and generates no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and generates no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
