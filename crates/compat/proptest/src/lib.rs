//! Offline stand-in for `proptest`.
//!
//! A deterministic property-testing harness implementing the API subset
//! the workspace uses: the `proptest!` macro with `arg in strategy`
//! syntax and `#![proptest_config(...)]`, range/tuple/regex-string
//! strategies, `prop_map`, `collection::vec`, `sample::select`,
//! `any::<T>()`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message; reproduce it by its case index (generation is
//!   deterministic per test name + case).
//! - String strategies accept a compact regex subset: literal characters,
//!   `[...]` classes (ranges + singletons), and `{m}`/`{m,n}`/`?`/`*`/`+`
//!   quantifiers.

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::TestRng;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element count for [`fn@vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> std::fmt::Debug for VecStrategy<S> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("VecStrategy").finish_non_exhaustive()
        }
    }

    /// A strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Picks uniformly from a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T> std::fmt::Debug for Select<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Select")
                .field("options", &self.options.len())
                .finish()
        }
    }

    /// A strategy yielding one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Path-compatible alias module: `prop::sample::select(...)`.
pub mod prop {
    pub use crate::{collection, sample};
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    { $body }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..40, x in 0u32..7, f in 0.5f64..2.0) {
            prop_assert!((2..40).contains(&n));
            prop_assert!(x < 7);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_of_tuples_and_prop_map(
            edges in prop::collection::vec((0u32..10, 0u32..10), 0..25),
            flags in prop::collection::vec(any::<bool>(), 8),
        ) {
            prop_assert!(edges.len() < 25);
            prop_assert_eq!(flags.len(), 8);
            for (u, v) in edges {
                prop_assert!(u < 10 && v < 10);
            }
        }

        #[test]
        fn regex_subset_strings(ident in "[a-z][a-z0-9_]{0,8}", op in prop::sample::select(vec!["+", "-"])) {
            prop_assert!(!ident.is_empty() && ident.len() <= 9);
            prop_assert!(ident.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(ident.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            prop_assert!(op == "+" || op == "-");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..1000, 5..20);
        let a: Vec<u32> = strat.generate(&mut crate::TestRng::for_case("t", 3));
        let b: Vec<u32> = strat.generate(&mut crate::TestRng::for_case("t", 3));
        let c: Vec<u32> = strat.generate(&mut crate::TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different cases should differ (overwhelmingly)");
    }

    #[test]
    fn prop_map_composes() {
        use crate::Strategy;
        let doubled = (1u32..50).prop_map(|x| x * 2);
        let v = doubled.generate(&mut crate::TestRng::for_case("m", 0));
        assert!(v % 2 == 0 && (2..100).contains(&v));
    }
}
