//! The `Strategy` trait and the built-in strategies: ranges, tuples,
//! mapped strategies, and regex-subset strings.

use crate::test_runner::TestRng;

/// Generates values of `Value` from a deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy whose output is passed through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + (rng.next_u64() % (span + 1)) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+))*) => {
        $(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// String literals act as regex-subset strategies generating matching
/// strings (literals, `[...]` classes, `{m}`/`{m,n}`/`?`/`*`/`+`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.quantifier.sample(rng);
            for _ in 0..n {
                out.push(atom.chars.pick(rng));
            }
        }
        out
    }
}

struct Atom {
    chars: CharSet,
    quantifier: Quant,
}

enum CharSet {
    Literal(char),
    /// Inclusive character ranges (singletons are `(c, c)`).
    Ranges(Vec<(char, char)>),
}

impl CharSet {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Literal(c) => *c,
            CharSet::Ranges(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                    .sum();
                let mut k = rng.next_u64() % total.max(1);
                for &(a, b) in ranges {
                    let span = (b as u64) - (a as u64) + 1;
                    if k < span {
                        return char::from_u32(a as u32 + k as u32).unwrap_or(a);
                    }
                    k -= span;
                }
                ranges[0].0
            }
        }
    }
}

struct Quant {
    min: u32,
    max: u32,
}

impl Quant {
    fn sample(&self, rng: &mut TestRng) -> u32 {
        self.min + (rng.next_u64() % (self.max - self.min + 1) as u64) as u32
    }
}

/// Parses the supported regex subset into atoms. Unsupported syntax
/// panics — better a loud test failure than silently wrong coverage.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let inner: Vec<char> = chars[i + 1..i + close].to_vec();
                i += close + 1;
                let mut ranges = Vec::new();
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        ranges.push((inner[j], inner[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((inner[j], inner[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                CharSet::Ranges(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                i += 1;
                CharSet::Literal(c)
            }
            '(' | ')' | '|' => panic!("unsupported regex syntax {:?} in {pattern:?}", chars[i]),
            c => {
                i += 1;
                CharSet::Literal(c)
            }
        };
        // Optional quantifier.
        let quantifier = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                Quant { min, max }
            }
            Some('?') => {
                i += 1;
                Quant { min: 0, max: 1 }
            }
            Some('*') => {
                i += 1;
                Quant { min: 0, max: 8 }
            }
            Some('+') => {
                i += 1;
                Quant { min: 1, max: 8 }
            }
            _ => Quant { min: 1, max: 1 },
        };
        atoms.push(Atom {
            chars: set,
            quantifier,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn literal_pattern_reproduces_itself() {
        let mut rng = TestRng::for_case("lit", 0);
        assert_eq!("abc_1".generate(&mut rng), "abc_1");
    }

    #[test]
    fn class_and_quantifier() {
        let mut rng = TestRng::for_case("cls", 0);
        for _ in 0..200 {
            let s = "[a-c][0-9]{2,4}".generate(&mut rng);
            let cs: Vec<char> = s.chars().collect();
            assert!(('a'..='c').contains(&cs[0]));
            assert!((3..=5).contains(&cs.len()));
            assert!(cs[1..].iter().all(char::is_ascii_digit), "{s}");
        }
    }

    #[test]
    fn escapes_and_option() {
        let mut rng = TestRng::for_case("esc", 0);
        for _ in 0..50 {
            let s = r"a\[b?".generate(&mut rng);
            assert!(s == "a[b" || s == "a[", "{s}");
        }
    }
}
