//! Deterministic RNG for case generation.

/// A splitmix64-seeded xorshift64* generator. Each `(test name, case)`
/// pair maps to a fixed stream, so failures reproduce without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        // splitmix64 finalizer to spread the seed.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
        TestRng {
            state: h.max(1), // xorshift state must be non-zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        let mut c = TestRng::for_case("x", 1);
        let mut d = TestRng::for_case("y", 0);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        let vd: Vec<u64> = (0..4).map(|_| d.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        assert_ne!(va, vd);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::for_case("u", 0);
        for _ in 0..1000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
