//! Offline stand-in for `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box` and
//! the `criterion_group!`/`criterion_main!` macros so the workspace's
//! `perf_*` bench targets build and run without a registry. Measurement is
//! deliberately simple — warm up, then time batches until a wall-clock
//! budget is spent, and report min/mean — not criterion's bootstrapped
//! statistics. `CRITERION_BUDGET_MS` overrides the per-benchmark budget.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, as in the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    /// Wall-clock measurement budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(500);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub's sampling is time-based,
    /// so the count is ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            samples: Vec::new(),
        };
        f(&mut b);
        let (min, mean) = b.summarize();
        println!("{id:<40} min {:>12} mean {:>12}", fmt_ns(min), fmt_ns(mean));
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures on behalf of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly inside the measurement budget, recording
    /// per-iteration wall time in nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn summarize(&self) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        (min, mean)
    }
}

/// Declares a function that runs each benchmark in sequence. Both the
/// positional form and the `name/config/targets` form are supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench target's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(!b.samples.is_empty());
        let (min, mean) = b.summarize();
        assert!(min <= mean);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.budget = Duration::from_millis(1);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
