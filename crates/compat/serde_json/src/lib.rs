//! Offline stand-in for `serde_json`.
//!
//! Implements the small slice of the real crate's API that the workspace
//! uses: [`from_str`] into a dynamically-typed [`Value`] with `as_u64`,
//! `as_array` and `value["key"]` indexing, plus the writing half —
//! [`to_string`] / [`to_string_pretty`] / [`to_value`] over anything
//! implementing the compat [`serde::Serialize`] trait. The parser handles
//! the full JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null) so round-trips through externally produced JSON also
//! work, and the writer is deterministic: hand-impl field order for
//! `Json::Obj`, sorted keys for [`Value`] objects, shortest-round-trip
//! number formatting.

use serde::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, stored as f64 (integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as a u64 if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64 if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Object field access; missing keys and non-objects yield `Null`,
    /// matching the real crate's forgiving indexing.
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the stub;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

impl serde::Serialize for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Null => Json::Null,
            Value::Bool(b) => Json::Bool(*b),
            Value::Number(n) => Json::Num(*n),
            Value::String(s) => Json::Str(s.clone()),
            Value::Array(a) => Json::Arr(a.iter().map(serde::Serialize::to_json).collect()),
            Value::Object(o) => Json::Obj(
                o.iter()
                    .map(|(k, v)| (k.clone(), serde::Serialize::to_json(v)))
                    .collect(),
            ),
        }
    }
}

/// Converts any serializable value into a dynamically-typed [`Value`]
/// (object keys become sorted, as in the parser).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    fn conv(j: &Json) -> Value {
        match j {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(*b),
            Json::Num(n) => Value::Number(*n),
            // Value stores every number as f64 (like the parser); exact
            // integers above 2^53 survive only through to_string.
            Json::Uint(u) => Value::Number(*u as f64),
            Json::Int(i) => Value::Number(*i as f64),
            Json::Str(s) => Value::String(s.clone()),
            Json::Arr(a) => Value::Array(a.iter().map(conv).collect()),
            Json::Obj(o) => Value::Object(o.iter().map(|(k, v)| (k.clone(), conv(v))).collect()),
        }
    }
    conv(&value.to_json())
}

/// Serializes a value to compact JSON. Infallible for this stub (non-finite
/// numbers become `null`); the `Result` matches the real crate's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&mut out, &value.to_json(), Some(2), 0);
    Ok(out)
}

fn write_json(out: &mut String, j: &Json, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&format_number(*n)),
        Json::Uint(u) => out.push_str(&u.to_string()),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_json(out, v, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(out, v, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// JSON has no NaN/Infinity; the real crate errors, this stub (which keeps
/// serialization infallible) writes `null`. Integral values within the
/// exact-f64 range print without a fractional part.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_graph_export_shape() {
        let v = from_str(r#"{"nodes":3,"edges":[[0,1],[1,2]]}"#).unwrap();
        assert_eq!(v["nodes"].as_u64(), Some(3));
        let edges = v["edges"].as_array().unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].as_array().unwrap()[1].as_u64(), Some(1));
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = from_str(r#"{"a": [1.5, -2e3, true, null, "x\ny"], "b": {}}"#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.5));
        assert_eq!(v["a"][1].as_f64(), Some(-2000.0));
        assert_eq!(v["a"][2], Value::Bool(true));
        assert_eq!(v["a"][4].as_str(), Some("x\ny"));
        assert!(v["b"].as_object().unwrap().is_empty());
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = from_str(r#"{"x": 1}"#).unwrap();
        assert_eq!(v["y"], Value::Null);
        assert_eq!(v["y"].as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn to_string_round_trips_through_parser() {
        let j = Json::obj([
            ("name", serde::Serialize::to_json("w\"sub\n")),
            ("rate", Json::Num(0.25)),
            ("n", Json::Num(14.0)),
            ("tags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = to_string(&j).unwrap();
        let v = from_str(&text).unwrap();
        assert_eq!(v["name"].as_str(), Some("w\"sub\n"));
        assert_eq!(v["rate"].as_f64(), Some(0.25));
        assert_eq!(v["n"].as_u64(), Some(14));
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn object_field_order_is_preserved_compact_and_pretty() {
        let j = Json::obj([("zzz", Json::Num(1.0)), ("aaa", Json::Num(2.0))]);
        let compact = to_string(&j).unwrap();
        assert_eq!(compact, r#"{"zzz":1,"aaa":2}"#);
        let pretty = to_string_pretty(&j).unwrap();
        assert!(pretty.find("zzz").unwrap() < pretty.find("aaa").unwrap());
        assert_eq!(from_str(&pretty).unwrap(), from_str(&compact).unwrap());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn big_integers_serialize_exactly() {
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
        assert_eq!(to_string(&i64::MIN).unwrap(), "-9223372036854775808");
    }

    #[test]
    fn value_serializes_with_sorted_keys() {
        let v = to_value(&Json::obj([("b", Json::Num(1.0)), ("a", Json::Num(2.0))]));
        assert_eq!(to_string(&v).unwrap(), r#"{"a":2,"b":1}"#);
    }
}
