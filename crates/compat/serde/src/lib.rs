//! Offline stand-in for `serde`.
//!
//! Two layers, mirroring the real crate's split:
//!
//! - the no-op `Serialize`/`Deserialize` **derives** re-exported from the
//!   sibling `serde_derive` stub, so `#[derive(Serialize, Deserialize)]`
//!   compiles unchanged as forward-looking API surface;
//! - a real [`Serialize`] **trait** over the tree-shaped [`Json`] data
//!   model, for types that need machine-readable export today (campaign
//!   scorecards, diagnosis JSON). `serde_json::to_string` consumes it.
//!
//! The trait is deliberately tiny — one method producing a [`Json`] tree —
//! rather than the real crate's visitor architecture; swapping in the real
//! serde replaces these hand impls with derives.

pub use serde_derive::{Deserialize, Serialize};

/// A serialization-ready JSON tree. Object fields keep **insertion
/// order**, so hand-written [`Serialize`] impls produce deterministic,
/// reviewer-chosen field ordering. Integers carry dedicated variants so
/// values above 2^53 serialize exactly instead of rounding through f64.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number (non-finite values serialize as `null`).
    Num(f64),
    /// An unsigned integer, serialized exactly.
    Uint(u64),
    /// A signed integer, serialized exactly.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

/// Types that can render themselves as a [`Json`] tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Uint(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);
impl_float!(f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!(3u32.to_json(), Json::Uint(3));
        assert_eq!((-4i32).to_json(), Json::Int(-4));
        assert_eq!(0.5f64.to_json(), Json::Num(0.5));
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(
            vec![1u8, 2].to_json(),
            Json::Arr(vec![Json::Uint(1), Json::Uint(2)])
        );
    }

    #[test]
    fn big_integers_do_not_round_through_f64() {
        assert_eq!(u64::MAX.to_json(), Json::Uint(u64::MAX));
        assert_eq!(i64::MIN.to_json(), Json::Int(i64::MIN));
    }

    #[test]
    fn obj_preserves_insertion_order() {
        let j = Json::obj([("z", 1u8.to_json()), ("a", 2u8.to_json())]);
        match j {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
