//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the sibling
//! `serde_derive` stub so that `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. See
//! `crates/compat/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
