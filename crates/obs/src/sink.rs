//! Trace records and pluggable sinks.
//!
//! A [`TraceSink`] receives a stream of [`TraceRecord`]s — span starts,
//! span ends, and point events — from the span/event API in the crate
//! root. Three implementations cover the workspace's needs:
//!
//! - [`NoopSink`] — discards everything. Installing no sink at all is
//!   cheaper still (one relaxed atomic load per call site); `NoopSink`
//!   exists for tests that want a sink installed without retention.
//! - [`Collector`] — in-memory retention for tests, with span-tree
//!   shape helpers.
//! - [`JsonlWriter`] — one deterministic JSON object per line, either
//!   to a file or to a shared in-memory buffer.
//!
//! ## Determinism contract
//!
//! Span ids are allocated **per sink** (each sink owns an `AtomicU64`),
//! so two runs that install fresh sinks and execute the same code see
//! the same ids. Wall-clock values live only in the explicitly-tagged
//! `ts` / `dur` fields; [`strip_timing`] removes exactly those, after
//! which equal workloads must yield byte-identical JSONL.

use serde::{Json, Serialize};
use std::fmt;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One typed key-value field attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A boolean flag.
    Bool(bool),
    /// An unsigned count / dense id index.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point measurement.
    F64(f64),
    /// An owned string (interned names arrive here via `Arc<str>`).
    Text(String),
}

impl Serialize for FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::Bool(b) => Json::Bool(*b),
            FieldValue::U64(n) => Json::Uint(*n),
            FieldValue::I64(n) => Json::Int(*n),
            FieldValue::F64(x) => Json::Num(*x),
            FieldValue::Text(s) => Json::Str(s.clone()),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}

field_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Text(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Text(v)
    }
}

impl From<&Arc<str>> for FieldValue {
    fn from(v: &Arc<str>) -> FieldValue {
        FieldValue::Text(v.to_string())
    }
}

impl From<rca_ident::VarId> for FieldValue {
    fn from(v: rca_ident::VarId) -> FieldValue {
        FieldValue::U64(v.index() as u64)
    }
}

impl From<rca_ident::ModuleId> for FieldValue {
    fn from(v: rca_ident::ModuleId) -> FieldValue {
        FieldValue::U64(v.index() as u64)
    }
}

impl From<rca_ident::OutputId> for FieldValue {
    fn from(v: rca_ident::OutputId) -> FieldValue {
        FieldValue::U64(v.index() as u64)
    }
}

/// A span or event as delivered to a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A span opened.
    SpanStart {
        /// Sink-allocated span id (deterministic per sink).
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Static span name (`phase.slice`, `diagnose`, ...).
        name: &'static str,
        /// Typed key-value fields recorded at open.
        fields: Vec<(&'static str, FieldValue)>,
        /// Nanoseconds since the process trace origin (**timing: stripped by CI diffs**).
        ts: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Id from the matching `SpanStart`.
        id: u64,
        /// Same static name as the matching `SpanStart`.
        name: &'static str,
        /// Close timestamp (**timing**).
        ts: u64,
        /// Span duration in nanoseconds (**timing**).
        dur: u64,
    },
    /// A point event.
    Event {
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Static event name (`refine.iter`, `scenario.error`, ...).
        name: &'static str,
        /// Typed key-value fields.
        fields: Vec<(&'static str, FieldValue)>,
        /// Timestamp (**timing**).
        ts: u64,
    },
}

fn fields_json(fields: &[(&'static str, FieldValue)]) -> Json {
    Json::obj(fields.iter().map(|(k, v)| (*k, v.to_json())))
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::Uint(n),
        None => Json::Null,
    }
}

impl TraceRecord {
    /// The record's static name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceRecord::SpanStart { name, .. }
            | TraceRecord::SpanEnd { name, .. }
            | TraceRecord::Event { name, .. } => name,
        }
    }
}

impl Serialize for TraceRecord {
    /// The JSONL line schema. `ts`/`dur` are the *only* wall-clock
    /// carriers — everything else must be deterministic.
    fn to_json(&self) -> Json {
        match self {
            TraceRecord::SpanStart {
                id,
                parent,
                name,
                fields,
                ts,
            } => Json::obj([
                ("type", Json::Str("span_start".into())),
                ("id", Json::Uint(*id)),
                ("parent", opt_u64(*parent)),
                ("name", Json::Str((*name).into())),
                ("fields", fields_json(fields)),
                ("ts", Json::Uint(*ts)),
            ]),
            TraceRecord::SpanEnd { id, name, ts, dur } => Json::obj([
                ("type", Json::Str("span_end".into())),
                ("id", Json::Uint(*id)),
                ("name", Json::Str((*name).into())),
                ("ts", Json::Uint(*ts)),
                ("dur", Json::Uint(*dur)),
            ]),
            TraceRecord::Event {
                parent,
                name,
                fields,
                ts,
            } => Json::obj([
                ("type", Json::Str("event".into())),
                ("parent", opt_u64(*parent)),
                ("name", Json::Str((*name).into())),
                ("fields", fields_json(fields)),
                ("ts", Json::Uint(*ts)),
            ]),
        }
    }
}

/// Destination for trace records.
///
/// Implementations must be cheap enough to call from pipeline hot
/// paths (the caller already pays for field materialization only when
/// a sink is installed) and must allocate span ids from a counter they
/// own, so that traces are deterministic per sink instance rather than
/// per process.
pub trait TraceSink: Send + Sync {
    /// Deliver one record. Called in program order per thread.
    fn record(&self, rec: &TraceRecord);
    /// Allocate the next span id (1-based, monotonic within this sink).
    fn next_span_id(&self) -> u64;
}

/// A sink that discards every record.
#[derive(Debug, Default)]
pub struct NoopSink {
    ids: AtomicU64,
}

impl NoopSink {
    /// A fresh no-op sink.
    pub fn new() -> NoopSink {
        NoopSink::default()
    }
}

impl TraceSink for NoopSink {
    fn record(&self, _rec: &TraceRecord) {}

    fn next_span_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// In-memory sink for tests: retains every record and answers
/// span-tree shape questions.
#[derive(Debug, Default)]
pub struct Collector {
    records: Mutex<Vec<TraceRecord>>,
    ids: AtomicU64,
}

impl Collector {
    /// A fresh empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Every record received so far, in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Names of all opened spans, in open order.
    pub fn span_names(&self) -> Vec<&'static str> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanStart { name, .. } => Some(*name),
                _ => None,
            })
            .collect()
    }

    /// Names of all events, in arrival order.
    pub fn event_names(&self) -> Vec<&'static str> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Event { name, .. } => Some(*name),
                _ => None,
            })
            .collect()
    }

    /// How many spans named `name` were opened.
    pub fn spans_named(&self, name: &str) -> usize {
        self.span_names().iter().filter(|n| **n == name).count()
    }

    /// Names of spans and events whose parent is a span named
    /// `parent`, in arrival order (children of every such span).
    pub fn children_of(&self, parent: &str) -> Vec<&'static str> {
        let records = self.records.lock().unwrap();
        let parent_ids: Vec<u64> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanStart { id, name, .. } if *name == parent => Some(*id),
                _ => None,
            })
            .collect();
        records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanStart {
                    parent: Some(p),
                    name,
                    ..
                }
                | TraceRecord::Event {
                    parent: Some(p),
                    name,
                    ..
                } if parent_ids.contains(p) => Some(*name),
                _ => None,
            })
            .collect()
    }

    /// Events named `name`, with their fields.
    #[allow(clippy::type_complexity)]
    pub fn events_named(&self, name: &str) -> Vec<Vec<(&'static str, FieldValue)>> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Event {
                    name: n, fields, ..
                } if *n == name => Some(fields.clone()),
                _ => None,
            })
            .collect()
    }
}

impl TraceSink for Collector {
    fn record(&self, rec: &TraceRecord) {
        self.records.lock().unwrap().push(rec.clone());
    }

    fn next_span_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// `Write` adapter over a shared byte buffer, for in-memory JSONL
/// traces in tests.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams each record as one compact JSON object per line.
pub struct JsonlWriter {
    out: Mutex<Box<dyn Write + Send>>,
    ids: AtomicU64,
}

impl fmt::Debug for JsonlWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlWriter")
            .field("ids", &self.ids)
            .finish_non_exhaustive()
    }
}

impl JsonlWriter {
    /// Opens (truncating) `path` for writing.
    pub fn create(path: &str) -> io::Result<JsonlWriter> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlWriter {
            out: Mutex::new(Box::new(BufWriter::new(file))),
            ids: AtomicU64::new(0),
        })
    }

    /// A writer backed by a shared in-memory buffer (for tests); read
    /// the trace back out of the returned handle.
    pub fn to_buffer() -> (JsonlWriter, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer = JsonlWriter {
            out: Mutex::new(Box::new(SharedBuf(buf.clone()))),
            ids: AtomicU64::new(0),
        };
        (writer, buf)
    }

    /// Flushes buffered lines to the destination.
    pub fn finish(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl TraceSink for JsonlWriter {
    fn record(&self, rec: &TraceRecord) {
        let line = serde_json::to_string(rec).unwrap_or_default();
        let mut out = self.out.lock().unwrap();
        // Trace output is advisory telemetry: swallow I/O errors rather
        // than panicking inside instrumented pipeline code.
        let _ = writeln!(out, "{line}");
    }

    fn next_span_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed) + 1
    }
}

fn strip_value(v: &serde_json::Value) -> Json {
    match v {
        serde_json::Value::Null => Json::Null,
        serde_json::Value::Bool(b) => Json::Bool(*b),
        serde_json::Value::Number(n) => {
            if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 {
                Json::Uint(*n as u64)
            } else {
                Json::Num(*n)
            }
        }
        serde_json::Value::String(s) => Json::Str(s.clone()),
        serde_json::Value::Array(items) => Json::Arr(items.iter().map(strip_value).collect()),
        serde_json::Value::Object(map) => Json::Obj(
            map.iter()
                .filter(|(k, _)| k.as_str() != "ts" && k.as_str() != "dur")
                .map(|(k, v)| (k.clone(), strip_value(v)))
                .collect(),
        ),
    }
}

/// Removes the tagged timing fields (`ts`, `dur`) from every line of a
/// JSONL trace and re-renders it canonically (sorted keys). Two traces
/// of the same workload must be byte-identical after this transform —
/// that is the CI diffing contract.
///
/// Lines that fail to parse are kept verbatim so schema violations stay
/// visible to the comparison rather than being silently dropped.
pub fn strip_timing(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(line) {
            Ok(v) => out.push_str(&serde_json::to_string(&strip_value(&v)).unwrap_or_default()),
            Err(_) => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_json_schema_has_tagged_timing_fields() {
        let rec = TraceRecord::SpanStart {
            id: 1,
            parent: None,
            name: "phase.parse",
            fields: vec![("files", FieldValue::U64(3))],
            ts: 42,
        };
        let line = serde_json::to_string(&rec).unwrap();
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v["type"].as_str(), Some("span_start"));
        assert_eq!(v["id"].as_u64(), Some(1));
        assert_eq!(v["parent"], serde_json::Value::Null);
        assert_eq!(v["name"].as_str(), Some("phase.parse"));
        assert_eq!(v["fields"]["files"].as_u64(), Some(3));
        assert_eq!(v["ts"].as_u64(), Some(42));
    }

    #[test]
    fn strip_timing_removes_only_ts_and_dur() {
        let a = r#"{"type":"span_end","id":7,"name":"x","ts":123,"dur":456}"#;
        let b = r#"{"type":"span_end","id":7,"name":"x","ts":999,"dur":1}"#;
        assert_eq!(strip_timing(a), strip_timing(b));
        assert!(strip_timing(a).contains("\"id\":7"));
        assert!(!strip_timing(a).contains("ts"));
        // Non-timing fields still distinguish lines.
        let c = r#"{"type":"span_end","id":8,"name":"x","ts":123,"dur":456}"#;
        assert_ne!(strip_timing(a), strip_timing(c));
    }

    #[test]
    fn jsonl_writer_buffer_roundtrip() {
        let (writer, buf) = JsonlWriter::to_buffer();
        writer.record(&TraceRecord::Event {
            parent: Some(3),
            name: "scenario",
            fields: vec![("ok", FieldValue::Bool(true))],
            ts: 5,
        });
        writer.finish().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let v = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(v["type"].as_str(), Some("event"));
        assert_eq!(v["parent"].as_u64(), Some(3));
        assert_eq!(v["fields"]["ok"], serde_json::Value::Bool(true));
    }

    #[test]
    fn collector_shape_helpers() {
        let c = Collector::new();
        let outer = c.next_span_id();
        c.record(&TraceRecord::SpanStart {
            id: outer,
            parent: None,
            name: "diagnose",
            fields: vec![],
            ts: 0,
        });
        let inner = c.next_span_id();
        c.record(&TraceRecord::SpanStart {
            id: inner,
            parent: Some(outer),
            name: "phase.slice",
            fields: vec![],
            ts: 0,
        });
        c.record(&TraceRecord::Event {
            parent: Some(inner),
            name: "refine.iter",
            fields: vec![("iter", FieldValue::U64(0))],
            ts: 0,
        });
        assert_eq!(c.span_names(), vec!["diagnose", "phase.slice"]);
        assert_eq!(c.spans_named("phase.slice"), 1);
        assert_eq!(c.children_of("diagnose"), vec!["phase.slice"]);
        assert_eq!(c.children_of("phase.slice"), vec!["refine.iter"]);
        assert_eq!(c.events_named("refine.iter").len(), 1);
    }
}
