//! Thread-safe metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Metrics are **always on** — unlike spans they cost one relaxed
//! atomic op when bumped, so call sites don't gate them on an
//! installed sink. Handles are `&'static` (leaked once at first
//! registration, cached at the call site via [`counter_inc!`]), so the
//! hot path never touches the registry lock.
//!
//! Snapshots ([`metrics_snapshot`]) render name-sorted and feed only
//! the telemetry channel (`--metrics`, trace sidecars) — never a
//! deterministic artifact.

use serde::{Json, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins gauge (f64 stored as bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0.0_f64.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram: cumulative-style upper bounds plus an
/// implicit overflow bucket, a total count, and a running sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // CAS loop: f64 sums have no native atomic add.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bounds (the final `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0_f64.to_bits(), Ordering::Relaxed);
    }
}

enum Entry {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<(&'static str, Entry)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, Entry)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// The counter named `name`, registering (and leaking) it on first
/// use. Handles are cheap to cache; see [`counter_inc!`](crate::counter_inc).
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    for (n, e) in reg.iter() {
        if *n == name {
            match e {
                Entry::Counter(c) => return c,
                _ => panic!("metric {name:?} already registered as a non-counter"),
            }
        }
    }
    let handle: &'static Counter = Box::leak(Box::new(Counter::default()));
    reg.push((name, Entry::Counter(handle)));
    handle
}

/// The gauge named `name`, registering it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().unwrap();
    for (n, e) in reg.iter() {
        if *n == name {
            match e {
                Entry::Gauge(g) => return g,
                _ => panic!("metric {name:?} already registered as a non-gauge"),
            }
        }
    }
    let handle: &'static Gauge = Box::leak(Box::new(Gauge::default()));
    reg.push((name, Entry::Gauge(handle)));
    handle
}

/// The histogram named `name` with the given bucket upper bounds,
/// registering it on first use (later calls ignore `bounds`).
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = registry().lock().unwrap();
    for (n, e) in reg.iter() {
        if *n == name {
            match e {
                Entry::Histogram(h) => return h,
                _ => panic!("metric {name:?} already registered as a non-histogram"),
            }
        }
    }
    let handle: &'static Histogram = Box::leak(Box::new(Histogram::with_bounds(bounds)));
    reg.push((name, Entry::Histogram(handle)));
    handle
}

/// Bumps a counter through a call-site-cached `&'static` handle: one
/// `OnceLock` load plus one relaxed `fetch_add` on the hot path.
#[macro_export]
macro_rules! counter_inc {
    ($name:literal, $n:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name)).inc($n);
    }};
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricReading {
    /// A counter's value.
    Counter {
        /// Metric name.
        name: &'static str,
        /// Current count.
        value: u64,
    },
    /// A gauge's value.
    Gauge {
        /// Metric name.
        name: &'static str,
        /// Current value.
        value: f64,
    },
    /// A histogram's state.
    Histogram {
        /// Metric name.
        name: &'static str,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// `(upper_bound, count)` pairs; the final pair uses
        /// `f64::INFINITY` for the overflow bucket.
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricReading {
    /// The metric's name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricReading::Counter { name, .. }
            | MetricReading::Gauge { name, .. }
            | MetricReading::Histogram { name, .. } => name,
        }
    }
}

/// A name-sorted point-in-time view of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Readings sorted by metric name.
    pub readings: Vec<MetricReading>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.readings.iter().find_map(|r| match r {
            MetricReading::Counter { name: n, value } if *n == name => Some(*value),
            _ => None,
        })
    }

    /// Deterministically ordered human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("metrics:\n");
        for r in &self.readings {
            match r {
                MetricReading::Counter { name, value } => {
                    let _ = writeln!(out, "  {name} = {value}");
                }
                MetricReading::Gauge { name, value } => {
                    let _ = writeln!(out, "  {name} = {value}");
                }
                MetricReading::Histogram {
                    name, count, sum, ..
                } => {
                    let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                    let _ = writeln!(out, "  {name}: count={count} sum={sum:.6} mean={mean:.6}");
                }
            }
        }
        out
    }
}

impl Serialize for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(self.readings.iter().map(|r| {
            match r {
                MetricReading::Counter { name, value } => (*name, Json::Uint(*value)),
                MetricReading::Gauge { name, value } => (*name, Json::Num(*value)),
                MetricReading::Histogram {
                    name,
                    count,
                    sum,
                    buckets,
                } => (
                    *name,
                    Json::obj([
                        ("count", Json::Uint(*count)),
                        ("sum", Json::Num(*sum)),
                        (
                            "buckets",
                            Json::Arr(
                                buckets
                                    .iter()
                                    .map(|(b, c)| Json::Arr(vec![Json::Num(*b), Json::Uint(*c)]))
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
            }
        }))
    }
}

/// Snapshot of every registered metric, sorted by name.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry().lock().unwrap();
    let mut readings: Vec<MetricReading> = reg
        .iter()
        .map(|(name, e)| match e {
            Entry::Counter(c) => MetricReading::Counter {
                name,
                value: c.get(),
            },
            Entry::Gauge(g) => MetricReading::Gauge {
                name,
                value: g.get(),
            },
            Entry::Histogram(h) => {
                let mut buckets: Vec<(f64, u64)> =
                    h.bounds().iter().copied().zip(h.bucket_counts()).collect();
                buckets.push((f64::INFINITY, *h.bucket_counts().last().unwrap_or(&0)));
                MetricReading::Histogram {
                    name,
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                }
            }
        })
        .collect();
    readings.sort_by_key(MetricReading::name);
    MetricsSnapshot { readings }
}

/// Zeroes every registered metric (tests and benches only — production
/// counters are monotonic).
pub fn reset_metrics() {
    let reg = registry().lock().unwrap();
    for (_, e) in reg.iter() {
        match e {
            Entry::Counter(c) => c.reset(),
            Entry::Gauge(g) => g.reset(),
            Entry::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_and_read_back() {
        let c = counter("test.metrics.counter");
        c.inc(2);
        c.inc(3);
        assert!(c.get() >= 5);
        assert!(std::ptr::eq(c, counter("test.metrics.counter")));

        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = histogram("test.metrics.hist", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 55.5);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);

        let snap = metrics_snapshot();
        assert!(snap.counter("test.metrics.counter").unwrap() >= 5);
        let names: Vec<&str> = snap
            .readings
            .iter()
            .map(super::MetricReading::name)
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        assert!(snap.render().contains("test.metrics.hist: count=3"));
        // JSON form parses back.
        let v = serde_json::from_str(&serde_json::to_string(&snap.to_json()).unwrap()).unwrap();
        assert!(v["test.metrics.gauge"].as_f64().is_some());
    }

    #[test]
    fn counter_inc_macro_caches_handle() {
        let before = counter("test.metrics.macro").get();
        for _ in 0..4 {
            counter_inc!("test.metrics.macro", 1);
        }
        assert!(counter("test.metrics.macro").get() >= before + 4);
    }
}
