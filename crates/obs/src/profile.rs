//! Per-phase wall-time / allocation / count profiling.
//!
//! Two accumulators share one measurement path ([`timed_phase`]):
//!
//! - a [`PhaseProfile`] is a value — carried through the typestate
//!   pipeline stages and surfaced as `Diagnosis::profile()`, merged
//!   into scorecard rollups;
//! - a process-global aggregate (always on, [`phase_snapshot`]) feeds
//!   bench sidecars and `--metrics` output.
//!
//! Allocation deltas come from an optional process-wide probe
//! ([`set_alloc_probe`]) — benches with a counting global allocator
//! install one; everywhere else allocs read as zero. Profiles live
//! strictly in the telemetry channel: they are never part of a
//! deterministic artifact (scorecard JSON, lint JSON, `Diagnosis`
//! serialization).

use serde::{Json, Serialize};
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the process-wide allocation probe (first call wins).
/// Benches pass a reader over their counting global allocator.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Current allocation count per the installed probe, or 0.
pub fn alloc_count() -> u64 {
    match ALLOC_PROBE.get() {
        Some(probe) => probe(),
        None => 0,
    }
}

/// One profiled phase: how many times it ran, total wall nanoseconds,
/// total allocations observed by the probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Static phase name (`phase.slice`, ...).
    pub name: &'static str,
    /// Number of timed executions merged into this entry.
    pub count: u64,
    /// Total wall time in nanoseconds.
    pub nanos: u64,
    /// Total allocations (0 unless a probe is installed).
    pub allocs: u64,
}

impl Serialize for PhaseEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.into())),
            ("count", Json::Uint(self.count)),
            ("wall_ns", Json::Uint(self.nanos)),
            ("allocs", Json::Uint(self.allocs)),
        ])
    }
}

/// An insertion-ordered per-phase profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    entries: Vec<PhaseEntry>,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> PhaseProfile {
        PhaseProfile::default()
    }

    /// The entries, in first-recorded order.
    pub fn entries(&self) -> &[PhaseEntry] {
        &self.entries
    }

    /// The entry named `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<&PhaseEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total wall nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.entries.iter().map(|e| e.nanos).sum()
    }

    /// Merges one measurement into the entry named `name`.
    pub fn add(&mut self, name: &'static str, nanos: u64, allocs: u64) {
        self.add_counted(name, 1, nanos, allocs);
    }

    /// Merges a pre-aggregated measurement (`count` executions).
    pub fn add_counted(&mut self, name: &'static str, count: u64, nanos: u64, allocs: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.name == name) {
            e.count += count;
            e.nanos += nanos;
            e.allocs += allocs;
        } else {
            self.entries.push(PhaseEntry {
                name,
                count,
                nanos,
                allocs,
            });
        }
    }

    /// Merges every entry of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for e in &other.entries {
            self.add_counted(e.name, e.count, e.nanos, e.allocs);
        }
    }

    /// Times `f`, records it under `name` here *and* in the global
    /// aggregate, and emits a span if tracing is active.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let (r, entry) = timed_phase(name, f);
        self.add_counted(entry.name, entry.count, entry.nanos, entry.allocs);
        r
    }

    /// Times `f` into this profile only — no span, no global record.
    /// For call sites whose callee already instruments itself (avoids
    /// double-counting the global aggregate).
    pub fn time_local<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let a0 = alloc_count();
        let t0 = Instant::now();
        let r = f();
        let nanos = t0.elapsed().as_nanos() as u64;
        self.add(name, nanos, alloc_count().saturating_sub(a0));
        r
    }

    /// Sums profiles into one rollup (e.g. across campaign scenarios).
    pub fn rollup<'a>(profiles: impl IntoIterator<Item = &'a PhaseProfile>) -> PhaseProfile {
        let mut out = PhaseProfile::new();
        for p in profiles {
            out.merge(p);
        }
        out
    }

    /// Human-readable per-phase report (telemetry only).
    pub fn render(&self) -> String {
        let mut out = String::from("phase profile:\n");
        if self.entries.is_empty() {
            out.push_str("  (no phases recorded)\n");
            return out;
        }
        for e in &self.entries {
            let ms = e.nanos as f64 / 1e6;
            let _ = write!(out, "  {:<24} x{:<4} {:>10.3} ms", e.name, e.count, ms);
            if e.allocs > 0 {
                let _ = write!(out, "  {:>8} allocs", e.allocs);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "  total {:>29.3} ms", self.total_nanos() as f64 / 1e6);
        out
    }
}

impl Serialize for PhaseProfile {
    fn to_json(&self) -> Json {
        Json::Arr(self.entries.iter().map(serde::Serialize::to_json).collect())
    }
}

fn global() -> &'static Mutex<PhaseProfile> {
    static GLOBAL: OnceLock<Mutex<PhaseProfile>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(PhaseProfile::new()))
}

/// Times `f` under `name`: emits a span when tracing is active,
/// records into the process-global aggregate, and returns the
/// measurement for value-level accumulation.
pub fn timed_phase<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, PhaseEntry) {
    let _span = crate::span(name);
    let a0 = alloc_count();
    let t0 = Instant::now();
    let r = f();
    let nanos = t0.elapsed().as_nanos() as u64;
    let allocs = alloc_count().saturating_sub(a0);
    let entry = PhaseEntry {
        name,
        count: 1,
        nanos,
        allocs,
    };
    global().lock().unwrap().add_counted(name, 1, nanos, allocs);
    (r, entry)
}

/// Times `f` under `name`, discarding the per-call measurement (the
/// global aggregate and any active span still record it).
pub fn phase_scope<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    timed_phase(name, f).0
}

/// A copy of the process-global per-phase aggregate.
pub fn phase_snapshot() -> PhaseProfile {
    global().lock().unwrap().clone()
}

/// The global aggregate as JSON (for bench sidecars).
pub fn phase_snapshot_json() -> Json {
    phase_snapshot().to_json()
}

/// Clears the process-global aggregate (tests and benches).
pub fn reset_phase_stats() {
    global().lock().unwrap().entries.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates_and_merges() {
        let mut p = PhaseProfile::new();
        p.add("phase.a", 10, 1);
        p.add("phase.a", 30, 2);
        p.add("phase.b", 5, 0);
        assert_eq!(p.get("phase.a").unwrap().count, 2);
        assert_eq!(p.get("phase.a").unwrap().nanos, 40);
        assert_eq!(p.total_nanos(), 45);

        let mut q = PhaseProfile::new();
        q.add("phase.b", 5, 7);
        q.merge(&p);
        assert_eq!(q.get("phase.b").unwrap().count, 2);
        assert_eq!(q.get("phase.b").unwrap().allocs, 7);
        // Insertion order: b was first in q.
        assert_eq!(q.entries()[0].name, "phase.b");

        let roll = PhaseProfile::rollup([&p, &q]);
        assert_eq!(roll.get("phase.a").unwrap().count, 4);

        let text = p.render();
        assert!(text.contains("phase.a"));
        assert!(text.contains("x2"));
        let json = serde_json::to_string(&p.to_json()).unwrap();
        assert!(json.contains("\"wall_ns\":40"));
    }

    #[test]
    fn timed_phase_measures_and_feeds_global() {
        let mut p = PhaseProfile::new();
        let out = p.time("phase.test_timed", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            41 + 1
        });
        assert_eq!(out, 42);
        let e = p.get("phase.test_timed").unwrap();
        assert!(e.nanos > 0, "wall time must be non-zero");
        assert!(phase_snapshot().get("phase.test_timed").is_some());
    }
}
