//! # rca-obs — the observability plane
//!
//! Offline, zero-dependency structured tracing, metrics, and phase
//! profiling for the RCA pipeline (built in-tree like the compat
//! crates — the container has no registry access, so this is a small
//! purpose-built substrate, not a `tracing` port).
//!
//! Three channels, one contract:
//!
//! - **Spans and events** ([`span`], [`span_with`], [`event`]) — RAII
//!   guards with static names and typed key-value [`FieldValue`]
//!   fields, delivered to a pluggable [`TraceSink`] ([`NoopSink`],
//!   [`Collector`], [`JsonlWriter`]). With no sink installed a call
//!   site costs one relaxed atomic load and a branch.
//! - **Metrics** ([`counter`], [`gauge`], [`histogram`]) — always-on
//!   relaxed-atomic registry, rendered deterministically by
//!   [`metrics_snapshot`].
//! - **Phase profiles** ([`PhaseProfile`], [`timed_phase`]) — value-
//!   level wall/alloc/count accumulators carried through the pipeline
//!   stages plus a process-global aggregate for bench sidecars.
//!
//! **The invariant:** telemetry never leaks into deterministic
//! artifacts. Scorecard JSON, lint JSON, and `Diagnosis`
//! serialization are byte-identical with tracing enabled or disabled;
//! JSONL traces are themselves deterministic once the tagged `ts` /
//! `dur` fields are stripped ([`strip_timing`]).
//!
//! ## Installing sinks
//!
//! [`with_sink`] scopes a sink to the current thread (tests, CLI
//! runs); [`install_global`] installs a process-wide fallback. The
//! innermost scoped sink wins. Span ids are allocated by the sink, so
//! fresh sink ⇒ reproducible ids.

mod metrics;
mod profile;
mod sink;

pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
    MetricReading, MetricsSnapshot,
};
pub use profile::{
    alloc_count, phase_scope, phase_snapshot, phase_snapshot_json, reset_phase_stats,
    set_alloc_probe, timed_phase, PhaseEntry, PhaseProfile,
};
pub use sink::{
    strip_timing, Collector, FieldValue, JsonlWriter, NoopSink, TraceRecord, TraceSink,
};

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Count of installed sinks anywhere in the process; the disabled
/// fast path is a single relaxed load of this.
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

static GLOBAL_SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

thread_local! {
    static SCOPED_SINKS: RefCell<Vec<Arc<dyn TraceSink>>> = const { RefCell::new(Vec::new()) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn clock_nanos() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn current_sink() -> Option<Arc<dyn TraceSink>> {
    if ACTIVE_SINKS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPED_SINKS
        .with(|s| s.borrow().last().cloned())
        .or_else(|| GLOBAL_SINK.read().ok().and_then(|g| g.clone()))
}

/// True when a sink would receive records from this thread right now.
/// Use to gate field materialization in hot loops.
#[inline]
pub fn tracing_active() -> bool {
    ACTIVE_SINKS.load(Ordering::Relaxed) != 0 && current_sink().is_some()
}

/// Installs `sink` as the process-wide fallback (scoped sinks still
/// take precedence on their threads).
pub fn install_global(sink: Arc<dyn TraceSink>) {
    let mut g = GLOBAL_SINK.write().unwrap();
    if g.replace(sink).is_none() {
        ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Removes the process-wide sink, if any.
pub fn clear_global() {
    let mut g = GLOBAL_SINK.write().unwrap();
    if g.take().is_some() {
        ACTIVE_SINKS.fetch_sub(1, Ordering::Relaxed);
    }
}

struct ScopedSinkGuard;

impl Drop for ScopedSinkGuard {
    fn drop(&mut self) {
        SCOPED_SINKS.with(|s| {
            s.borrow_mut().pop();
        });
        ACTIVE_SINKS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `f` with `sink` installed for the current thread (innermost
/// wins; unwound correctly on panic). Work spawned onto *other*
/// threads inside `f` does not see the sink — callers that need a
/// complete trace run their workload on the installing thread.
pub fn with_sink<R>(sink: Arc<dyn TraceSink>, f: impl FnOnce() -> R) -> R {
    SCOPED_SINKS.with(|s| s.borrow_mut().push(sink));
    ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    let _guard = ScopedSinkGuard;
    f()
}

struct SpanInner {
    sink: Arc<dyn TraceSink>,
    id: u64,
    name: &'static str,
    start: Instant,
}

/// RAII span guard: records `span_end` (with duration) on drop.
/// Inert (`None`) when no sink was installed at open.
pub struct SpanGuard(Option<SpanInner>);

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(inner) => f
                .debug_struct("SpanGuard")
                .field("id", &inner.id)
                .field("name", &inner.name)
                .finish_non_exhaustive(),
            None => f.write_str("SpanGuard(inert)"),
        }
    }
}

impl SpanGuard {
    /// The sink-allocated span id, if a sink is attached.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&inner.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (guards held across scopes):
                    // remove wherever it sits.
                    stack.retain(|&id| id != inner.id);
                }
            });
            inner.sink.record(&TraceRecord::SpanEnd {
                id: inner.id,
                name: inner.name,
                ts: clock_nanos(),
                dur: inner.start.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Opens a span named `name`; it closes when the guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span with key-value fields recorded at open.
pub fn span_with(name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanGuard {
    let Some(sink) = current_sink() else {
        return SpanGuard(None);
    };
    let id = sink.next_span_id();
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    sink.record(&TraceRecord::SpanStart {
        id,
        parent,
        name,
        fields: fields.to_vec(),
        ts: clock_nanos(),
    });
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard(Some(SpanInner {
        sink,
        id,
        name,
        start: Instant::now(),
    }))
}

/// Records a point event under the current span, if a sink is active.
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    let Some(sink) = current_sink() else {
        return;
    };
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    sink.record(&TraceRecord::Event {
        parent,
        name,
        fields: fields.to_vec(),
        ts: clock_nanos(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_records_nothing() {
        assert!(!tracing_active());
        let g = span("test.disabled");
        assert!(g.id().is_none());
        drop(g);
        event("test.disabled.event", &[("x", 1u64.into())]);
    }

    #[test]
    fn scoped_sink_sees_nested_spans_and_unwinds() {
        let collector = Arc::new(Collector::new());
        with_sink(collector.clone(), || {
            let outer = span_with("test.outer", &[("k", "v".into())]);
            {
                let _inner = span("test.inner");
                event("test.ev", &[("n", 7u64.into())]);
            }
            drop(outer);
        });
        assert!(!tracing_active(), "scope must unwind");
        assert_eq!(collector.span_names(), vec!["test.outer", "test.inner"]);
        assert_eq!(collector.children_of("test.outer"), vec!["test.inner"]);
        assert_eq!(collector.children_of("test.inner"), vec!["test.ev"]);
        // Span ids are sink-allocated starting at 1.
        let recs = collector.records();
        match &recs[0] {
            TraceRecord::SpanStart { id, parent, .. } => {
                assert_eq!(*id, 1);
                assert!(parent.is_none());
            }
            other => panic!("expected span_start, got {other:?}"),
        }
        // Start/end pairing balances.
        let starts = recs
            .iter()
            .filter(|r| matches!(r, TraceRecord::SpanStart { .. }))
            .count();
        let ends = recs
            .iter()
            .filter(|r| matches!(r, TraceRecord::SpanEnd { .. }))
            .count();
        assert_eq!(starts, ends);
    }

    #[test]
    fn global_sink_install_and_clear() {
        // Scoped test runs in parallel threads; the global sink is
        // shared, so keep this self-contained and restore state.
        let collector = Arc::new(Collector::new());
        install_global(collector.clone());
        {
            let _g = span("test.global");
        }
        clear_global();
        assert!(collector.spans_named("test.global") >= 1);
    }

    #[test]
    fn innermost_scoped_sink_wins() {
        let a = Arc::new(Collector::new());
        let b = Arc::new(Collector::new());
        with_sink(a.clone(), || {
            with_sink(b.clone(), || {
                let _g = span("test.nested_sinks");
            });
            let _g = span("test.outer_sink");
        });
        assert_eq!(a.span_names(), vec!["test.outer_sink"]);
        assert_eq!(b.span_names(), vec!["test.nested_sinks"]);
    }
}
