//! Differential suite: the IR dependence mirror vs the AST metagraph.
//!
//! The same fence the interpreter-vs-executor pair uses, applied to the
//! two slicers: `rca_metagraph::build_metagraph` (textual AST walk) and
//! `rca_analysis::DepGraph` (slot-indexed IR walk) must produce the same
//! `(module, subprogram, canonical)` node universe and the same edge set
//! on the pristine model and on every paper experiment variant.

use rca_analysis::DepGraph;
use rca_fortran::parse_source;
use rca_metagraph::build_metagraph;
use rca_model::{generate, Experiment, ModelConfig, ModelSource};
use rca_sim::compile_sources;

type Rendered = (String, Option<String>, String);

fn metagraph_nodes_edges(
    files: &[rca_fortran::SourceFile],
) -> (Vec<Rendered>, Vec<(Rendered, Rendered)>) {
    let mg = build_metagraph(files);
    let render = |n| {
        (
            mg.module_name_of(n).to_string(),
            mg.subprogram_of(n).map(str::to_string),
            mg.canonical_of(n).to_string(),
        )
    };
    let mut nodes: Vec<Rendered> = mg.graph.nodes().map(render).collect();
    nodes.sort();
    let mut edges: Vec<(Rendered, Rendered)> = mg
        .graph
        .edges()
        .map(|(a, b)| (render(a), render(b)))
        .collect();
    edges.sort();
    (nodes, edges)
}

fn depgraph_nodes_edges(
    files: &[rca_fortran::SourceFile],
) -> (Vec<Rendered>, Vec<(Rendered, Rendered)>) {
    let prog = compile_sources(files).expect("sources compile");
    let dg = DepGraph::build(&prog);
    (dg.rendered_nodes(), dg.rendered_edges())
}

fn assert_mirror(files: &[rca_fortran::SourceFile], label: &str) {
    let (mg_nodes, mg_edges) = metagraph_nodes_edges(files);
    let (dg_nodes, dg_edges) = depgraph_nodes_edges(files);
    let only_mg: Vec<_> = mg_nodes.iter().filter(|n| !dg_nodes.contains(n)).collect();
    let only_dg: Vec<_> = dg_nodes.iter().filter(|n| !mg_nodes.contains(n)).collect();
    assert!(
        only_mg.is_empty() && only_dg.is_empty(),
        "{label}: node universes differ\n  metagraph-only: {only_mg:?}\n  depgraph-only: {only_dg:?}"
    );
    let only_mg: Vec<_> = mg_edges.iter().filter(|e| !dg_edges.contains(e)).collect();
    let only_dg: Vec<_> = dg_edges.iter().filter(|e| !mg_edges.contains(e)).collect();
    assert!(
        only_mg.is_empty() && only_dg.is_empty(),
        "{label}: edge sets differ\n  metagraph-only: {only_mg:?}\n  depgraph-only: {only_dg:?}"
    );
}

fn assert_mirror_model(model: &ModelSource, label: &str) {
    let (asts, errs) = model.parse();
    assert!(errs.is_empty(), "{label}: {errs:?}");
    assert_mirror(&asts, label);
}

#[test]
fn mirror_matches_metagraph_on_pristine_model() {
    let model = generate(&ModelConfig::test());
    assert_mirror_model(&model, "pristine");
}

#[test]
fn mirror_matches_metagraph_on_all_experiments() {
    let model = generate(&ModelConfig::test());
    for e in Experiment::ALL {
        assert_mirror_model(&model.apply(e), e.name());
    }
}

#[test]
fn mirror_matches_metagraph_at_medium_scale() {
    let model = generate(&ModelConfig::medium());
    assert_mirror_model(&model, "medium");
}

fn parse_one(src: &str) -> Vec<rca_fortran::SourceFile> {
    let (ast, errs) = parse_source("test.F90", src);
    assert!(errs.is_empty(), "{errs:?}");
    vec![ast]
}

#[test]
fn arrays_are_atomic_in_both() {
    let files = parse_one(
        "module m\n\
         contains\n\
         subroutine s(a, b, i)\n\
         real(r8) :: a(4), b(4)\n\
         integer :: i\n\
         a(i) = b(i) + 1.0_r8\n\
         end subroutine s\n\
         end module m\n",
    );
    assert_mirror(&files, "arrays-atomic");
    // The subscript `i` must feed neither side: arrays are whole-variable
    // nodes (§4.2).
    let prog = compile_sources(&files).expect("compiles");
    let dg = DepGraph::build(&prog);
    let a = dg.find("m", Some("s"), "a").expect("node a");
    let b = dg.find("m", Some("s"), "b").expect("node b");
    assert!(dg.preds_of(a).contains(&b));
    // A subscript-only variable never even becomes a node.
    assert!(dg.find("m", Some("s"), "i").is_none());
}

#[test]
fn intrinsics_localize_per_call_site_in_both() {
    let files = parse_one(
        "module m\n\
         contains\n\
         subroutine s(x, y)\n\
         real(r8) :: x, y\n\
         x = max(y, 0.0_r8)\n\
         y = max(x, 1.0_r8)\n\
         end subroutine s\n\
         end module m\n",
    );
    assert_mirror(&files, "intrinsic-localized");
    let prog = compile_sources(&files).expect("compiles");
    let dg = DepGraph::build(&prog);
    // Two distinct localized nodes, one per line.
    assert!(dg.find("m", Some("s"), "max_l5").is_some());
    assert!(dg.find("m", Some("s"), "max_l6").is_some());
}

#[test]
fn intents_orient_subroutine_edges_in_both() {
    let files = parse_one(
        "module m\n\
         contains\n\
         subroutine inner(p, q)\n\
         real(r8), intent(in) :: p\n\
         real(r8), intent(out) :: q\n\
         q = p * 2.0_r8\n\
         end subroutine inner\n\
         subroutine outer(u, v)\n\
         real(r8) :: u, v\n\
         call inner(u, v)\n\
         end subroutine outer\n\
         end module m\n",
    );
    assert_mirror(&files, "intent-oriented");
    let prog = compile_sources(&files).expect("compiles");
    let dg = DepGraph::build(&prog);
    let p = dg.find("m", Some("inner"), "p").expect("dummy p");
    let q = dg.find("m", Some("inner"), "q").expect("dummy q");
    let u = dg.find("m", Some("outer"), "u").expect("actual u");
    let v = dg.find("m", Some("outer"), "v").expect("actual v");
    assert!(dg.preds_of(p).contains(&u), "in-intent: actual -> dummy");
    assert!(dg.preds_of(v).contains(&q), "out-intent: dummy -> actual");
    assert!(
        !dg.preds_of(u).contains(&p),
        "no reverse edge for intent(in)"
    );
}

#[test]
fn derived_type_fields_flow_both_directions_in_both() {
    let files = parse_one(
        "module m\n\
         contains\n\
         subroutine s(state, t, w)\n\
         type(physics_state) :: state\n\
         real(r8) :: t, w\n\
         t = state%temp(1)\n\
         state%omega(1) = w\n\
         end subroutine s\n\
         end module m\n",
    );
    assert_mirror(&files, "derived-fields");
    let prog = compile_sources(&files).expect("compiles");
    let dg = DepGraph::build(&prog);
    let state = dg.find("m", Some("s"), "state").expect("base node");
    let temp = dg.find("m", Some("s"), "temp").expect("read field");
    let omega = dg.find("m", Some("s"), "omega").expect("written field");
    assert!(dg.preds_of(temp).contains(&state), "read: base -> field");
    assert!(dg.preds_of(state).contains(&omega), "write: field -> base");
}

#[test]
fn use_renames_resolve_to_origin_module_in_both() {
    let files = parse_one(
        "module phys_const\n\
         real(r8), parameter :: gravit = 9.8_r8\n\
         end module phys_const\n\
         module m\n\
         use phys_const, only: g => gravit\n\
         contains\n\
         subroutine s(x)\n\
         real(r8) :: x\n\
         x = g * 2.0_r8\n\
         end subroutine s\n\
         end module m\n",
    );
    assert_mirror(&files, "use-rename");
    let prog = compile_sources(&files).expect("compiles");
    let dg = DepGraph::build(&prog);
    // The rename resolves to the origin module's node, not a local.
    let gravit = dg.find("phys_const", None, "gravit").expect("origin node");
    let x = dg.find("m", Some("s"), "x").expect("x");
    assert!(dg.preds_of(x).contains(&gravit));
    assert!(dg.find("m", Some("s"), "g").is_none(), "no phantom local");
}

#[test]
fn outfld_registers_io_without_edges_in_both() {
    let files = parse_one(
        "module m\n\
         contains\n\
         subroutine s(t)\n\
         real(r8) :: t(4)\n\
         call outfld('T', t, 4)\n\
         end subroutine s\n\
         end module m\n",
    );
    assert_mirror(&files, "outfld-registry");
    let prog = compile_sources(&files).expect("compiles");
    let dg = DepGraph::build(&prog);
    let t = dg.find("m", Some("s"), "t").expect("internal node");
    assert!(dg.preds_of(t).is_empty(), "outfld adds no edges");
    let names: Vec<&str> = dg
        .io_internal()
        .iter()
        .map(|&v| dg.symbols().var(v))
        .collect();
    assert_eq!(names, ["t"], "internal variable registered for I/O");
}

#[test]
fn function_results_fan_out_over_candidates_in_both() {
    let files = parse_one(
        "module m\n\
         contains\n\
         function f(a) result(r)\n\
         real(r8) :: a, r\n\
         r = a + 1.0_r8\n\
         end function f\n\
         subroutine s(x, y)\n\
         real(r8) :: x, y\n\
         x = f(y)\n\
         end subroutine s\n\
         end module m\n",
    );
    assert_mirror(&files, "function-call");
    let prog = compile_sources(&files).expect("compiles");
    let dg = DepGraph::build(&prog);
    let a = dg.find("m", Some("f"), "a").expect("dummy a");
    let r = dg.find("m", Some("f"), "r").expect("result r");
    let x = dg.find("m", Some("s"), "x").expect("x");
    let y = dg.find("m", Some("s"), "y").expect("y");
    assert!(dg.preds_of(a).contains(&y), "actual -> dummy");
    assert!(dg.preds_of(x).contains(&r), "result -> assignment target");
}

#[test]
fn static_slice_is_deterministic() {
    let model = generate(&ModelConfig::test());
    let (asts, _) = model.parse();
    let prog = compile_sources(&asts).expect("compiles");
    let a = DepGraph::build(&prog).static_slice(&["nctend", "dum"], None);
    let b = DepGraph::build(&prog).static_slice(&["nctend", "dum"], None);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}
