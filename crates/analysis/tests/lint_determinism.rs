//! Property: lint output is a pure function of the model — byte-identical
//! JSON across repeated runs, across independently built analyses, and
//! across concurrent threads. The campaign diffs recorded lint baselines
//! byte-for-byte, so any nondeterminism (hash-order iteration, racy
//! accumulation) is a CI-poisoning bug.

use proptest::prelude::*;
use rca_analysis::ModelAnalysis;
use rca_model::{generate, patch_sites, ModelConfig, ModelSource, PatchSite};
use rca_sim::compile_model;
use std::sync::{Arc, OnceLock};

fn base_model() -> &'static (ModelSource, Vec<PatchSite>) {
    static M: OnceLock<(ModelSource, Vec<PatchSite>)> = OnceLock::new();
    M.get_or_init(|| {
        let m = generate(&ModelConfig::test());
        let sites = patch_sites(&m);
        (m, sites)
    })
}

/// Renders the full lint report to its canonical JSON bytes.
fn lint_json(model: &ModelSource) -> String {
    let program = compile_model(model).expect("model compiles");
    let analysis = ModelAnalysis::build(program);
    serde_json::to_string_pretty(&analysis.lint().json_doc("prop")).expect("render")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lint_json_is_byte_identical_across_runs(seed in any::<u64>()) {
        // Derive a model variant from the seed: every fourth case lints
        // the pristine model, the rest lint a seeded dead-store mutant.
        let (base, sites) = base_model();
        let model = if seed.is_multiple_of(4) {
            base.clone()
        } else {
            let site = &sites[(seed as usize / 4) % sites.len()];
            let indent: String = site.text.chars().take_while(|c| *c == ' ').collect();
            let rhs = &site.text[site.text.find(" = ").expect("assignment") + 3..];
            base.with_patched_line(
                &site.file,
                site.line,
                &format!("{indent}lint_mut_{} = {rhs}", site.target),
            )
        };
        let a = lint_json(&model);
        let b = lint_json(&model);
        prop_assert_eq!(&a, &b, "independent builds rendered different JSON");
    }

    #[test]
    fn lint_json_is_byte_identical_across_threads(seed in any::<u64>()) {
        let (base, _) = base_model();
        let program = compile_model(base).expect("model compiles");
        let analysis = Arc::new(ModelAnalysis::build(program));
        let reference =
            serde_json::to_string_pretty(&analysis.lint().json_doc("prop")).expect("render");
        let workers = 2 + (seed % 3) as usize;
        let rendered: Vec<String> = std::thread::scope(|scope| {
            (0..workers)
                .map(|_| {
                    let a = Arc::clone(&analysis);
                    scope.spawn(move || {
                        serde_json::to_string_pretty(&a.lint().json_doc("prop"))
                            .expect("render")
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        for r in &rendered {
            prop_assert_eq!(r, &reference, "concurrent lint rendered different JSON");
        }
    }
}
