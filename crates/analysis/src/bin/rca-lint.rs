//! `rca-lint` — static defect detection over the generated climate model.
//!
//! ```text
//! rca-lint [--scale test|medium|paper] [--all-experiments] [--json PATH]
//!          [--assert-clean] [--mutate-seed S] [--min-findings N]
//!          [--threads N] [--trace-out PATH] [--metrics] [--quiet]
//! ```
//!
//! Default mode lints the pristine generated model; `--all-experiments`
//! additionally lints every paper experiment variant. `--assert-clean`
//! exits nonzero if any linted model has warnings (infos never gate).
//!
//! `--mutate-seed S` is the CI smoke path: it injects one seeded
//! dead-store mutation at a random patch site (the assigned variable is
//! renamed to a fresh `lint_mut_*` local, which is then provably never
//! read) and `--min-findings N` asserts the linter gained at least `N`
//! warnings over the pristine baseline.
//!
//! Output JSON is byte-deterministic for a given model and seed,
//! regardless of `--threads`. `--trace-out` streams build/lint phase
//! spans and per-target `lint.report` events as JSONL telemetry;
//! `--metrics` prints the counter and phase-profile snapshot to stderr.
//! Neither flag changes a byte of the JSON artifact.

use std::process::ExitCode;
use std::sync::Arc;

use rca_analysis::ModelAnalysis;
use rca_model::{generate, patch_sites, Experiment, ModelConfig, ModelSource};
use rca_sim::compile_model;
use serde::{Json, Serialize};

struct Args {
    scale: String,
    all_experiments: bool,
    json: Option<String>,
    assert_clean: bool,
    mutate_seed: Option<u64>,
    min_findings: usize,
    trace_out: Option<String>,
    metrics: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rca-lint [--scale test|medium|paper] [--all-experiments] [--json PATH]\n\
         \x20               [--assert-clean] [--mutate-seed S] [--min-findings N]\n\
         \x20               [--threads N] [--trace-out PATH] [--metrics] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: "test".to_string(),
        all_experiments: false,
        json: None,
        assert_clean: false,
        mutate_seed: None,
        min_findings: 1,
        trace_out: None,
        metrics: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale"),
            "--all-experiments" => args.all_experiments = true,
            "--json" => args.json = Some(value("--json")),
            "--assert-clean" => args.assert_clean = true,
            "--mutate-seed" => {
                args.mutate_seed = Some(value("--mutate-seed").parse().unwrap_or_else(|_| usage()));
            }
            "--min-findings" => {
                args.min_findings = value("--min-findings").parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                // Analysis is single-threaded by construction; the flag
                // exists so determinism checks can vary it and diff output.
                std::env::set_var("RAYON_NUM_THREADS", value("--threads"));
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--metrics" => args.metrics = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    args
}

/// xorshift64* step, the same generator family the campaign planner uses.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Injects one guaranteed-dead store: the assignment at a seeded patch
/// site is redirected to a fresh local that nothing reads.
fn mutate(model: &ModelSource, seed: u64) -> (ModelSource, String) {
    let sites = patch_sites(model);
    assert!(!sites.is_empty(), "model has no patch sites");
    let mut state = seed ^ 0x9E3779B97F4A7C15;
    // Warm up so small seeds do not correlate with site order.
    xorshift(&mut state);
    let site = &sites[(xorshift(&mut state) % sites.len() as u64) as usize];
    let eq = site.text.find(" = ").expect("patch sites are assignments");
    let indent: String = site
        .text
        .chars()
        .take_while(|c| c.is_whitespace())
        .collect();
    let rhs = &site.text[eq + 3..];
    let new_line = format!("{indent}lint_mut_{} = {rhs}", site.target);
    let label = format!(
        "{}::{} line {}: `{}` -> `{}`",
        site.module,
        site.subprogram,
        site.line + 1,
        site.text.trim(),
        new_line.trim()
    );
    (
        model.with_patched_line(&site.file, site.line, &new_line),
        label,
    )
}

fn lint_model(model: &ModelSource) -> Result<rca_analysis::LintReport, String> {
    let program = compile_model(model).map_err(|e| format!("compile failed: {e:?}"))?;
    Ok(ModelAnalysis::build(Arc::clone(&program)).lint())
}

fn main() -> ExitCode {
    let args = parse_args();
    // The trace sink is thread-scoped: install it around the whole run so
    // build/lint spans and per-target events land in one JSONL stream.
    match args.trace_out.clone() {
        None => run(&args),
        Some(path) => {
            let writer = match rca_obs::JsonlWriter::create(&path) {
                Ok(w) => Arc::new(w),
                Err(e) => {
                    eprintln!("cannot open trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let code = rca_obs::with_sink(writer.clone(), || run(&args));
            if let Err(e) = writer.finish() {
                eprintln!("cannot flush trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
            if !args.quiet {
                eprintln!("trace written to {path}");
            }
            code
        }
    }
}

fn run(args: &Args) -> ExitCode {
    let config = match args.scale.as_str() {
        "test" => ModelConfig::test(),
        "medium" => ModelConfig::medium(),
        "paper" => ModelConfig::paper(),
        other => {
            eprintln!("unknown scale: {other}");
            usage()
        }
    };
    let base = generate(&config);

    // (label, model) pairs to lint, in a fixed order.
    let mut targets: Vec<(String, ModelSource)> = Vec::new();
    if let Some(seed) = args.mutate_seed {
        let (mutant, desc) = mutate(&base, seed);
        if !args.quiet {
            println!("mutation: {desc}");
        }
        targets.push((format!("mutant-seed-{seed}"), mutant));
    } else {
        targets.push(("pristine".to_string(), base.clone()));
        if args.all_experiments {
            for e in Experiment::ALL {
                targets.push((e.name().to_string(), base.apply(e)));
            }
        }
    }

    // The mutant gate is a *delta* over the pristine baseline, so it
    // stays meaningful even if a future model revision is not clean.
    let baseline_warnings = if args.mutate_seed.is_some() {
        match lint_model(&base) {
            Ok(r) => r.warning_count(),
            Err(e) => {
                eprintln!("rca-lint: pristine model {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        0
    };

    let mut docs: Vec<Json> = Vec::new();
    let mut total_warnings = 0usize;
    let mut mutant_delta = 0usize;
    for (label, model) in &targets {
        let report = match lint_model(model) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("rca-lint: {label}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !args.quiet {
            println!(
                "{label}: {} warning(s), {} info(s)",
                report.warning_count(),
                report.info_count()
            );
            for f in &report.findings {
                let loc = if f.line > 0 {
                    format!(":{}", f.line)
                } else {
                    String::new()
                };
                println!(
                    "  [{}] {} {}::{}{loc} {}",
                    f.severity.name(),
                    f.lint,
                    f.module,
                    f.subprogram,
                    f.message
                );
            }
        }
        if rca_obs::tracing_active() {
            rca_obs::event(
                "lint.report",
                &[
                    ("target", label.as_str().into()),
                    ("warnings", report.warning_count().into()),
                    ("infos", report.info_count().into()),
                ],
            );
        }
        total_warnings += report.warning_count();
        mutant_delta = report.warning_count().saturating_sub(baseline_warnings);
        docs.push(report.json_doc(label));
    }

    if let Some(path) = &args.json {
        let doc = Json::obj([
            ("tool", "rca-lint".to_json()),
            ("scale", args.scale.to_json()),
            ("reports", Json::Arr(docs)),
        ]);
        let mut text = serde_json::to_string_pretty(&doc).expect("json render is infallible");
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            println!("report written to {path}");
        }
    }

    if args.metrics {
        eprint!("{}", rca_obs::metrics_snapshot().render());
        let phases = rca_obs::phase_snapshot();
        if !phases.is_empty() {
            eprint!("{}", phases.render());
        }
    }

    let mut ok = true;
    if args.assert_clean && total_warnings > 0 {
        eprintln!("ASSERTION FAILED: expected zero warnings, found {total_warnings}");
        ok = false;
    }
    if args.mutate_seed.is_some() && mutant_delta < args.min_findings {
        eprintln!(
            "ASSERTION FAILED: mutant produced {mutant_delta} new warning(s), expected >= {}",
            args.min_findings
        );
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
