//! The lint catalog and its deterministic JSON rendering.
//!
//! Every lint is **definite by construction** — a finding means the
//! defect holds on every execution path the analysis models — so the
//! bundled paper models gate CI at zero warnings (`--assert-clean`).
//! Informational findings (`ConstFoldable`) report missed optimization,
//! not defects, and do not trip the gate.
//!
//! Output is byte-deterministic: findings are fully sorted, keys are
//! emitted in fixed insertion order, and nothing in the pipeline depends
//! on thread count or hash-map iteration.

use serde::{Json, Serialize};

use crate::absint::HazardKind;

/// Finding severity. Warnings gate `--assert-clean`; infos do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A definite defect.
    Warning,
    /// A missed-optimization / hygiene note.
    Info,
}

impl Severity {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// One diagnostic, string-keyed for rendering (ids resolve at the edge).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Stable lint slug (`dead-store`, `uninit-read`, ...).
    pub lint: &'static str,
    /// Owning module.
    pub module: String,
    /// Owning subprogram (empty for module/model scope).
    pub subprogram: String,
    /// Source line (0 when the finding has no single line).
    pub line: u32,
    /// Affected variable/output name, if any.
    pub variable: String,
    /// Human-readable one-liner.
    pub message: String,
    /// Severity class.
    pub severity: Severity,
}

impl Finding {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lint", self.lint.to_json()),
            ("severity", self.severity.name().to_json()),
            ("module", self.module.to_json()),
            ("subprogram", self.subprogram.to_json()),
            ("line", u64::from(self.line).to_json()),
            ("variable", self.variable.to_json()),
            ("message", self.message.to_json()),
        ])
    }
}

/// Hazard kind → lint slug, severity, message template.
pub fn hazard_lint(kind: HazardKind) -> (&'static str, Severity, &'static str) {
    match kind {
        HazardKind::DivByZero => (
            "div-by-zero",
            Severity::Warning,
            "denominator is provably zero on every path",
        ),
        HazardKind::SqrtNegative => (
            "sqrt-domain",
            Severity::Warning,
            "sqrt argument is provably negative on every path",
        ),
        HazardKind::LogDomain => (
            "log-domain",
            Severity::Warning,
            "log argument is provably non-positive on every path",
        ),
        HazardKind::ConstFoldable => (
            "const-foldable",
            Severity::Info,
            "subexpression has a provably constant value the compiler did not fold",
        ),
    }
}

/// A full lint run: sorted findings plus severity counts.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, fully sorted (lint, module, subprogram, line,
    /// variable, message).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Seals the report: full sort + dedup.
    pub fn seal(mut findings: Vec<Finding>) -> LintReport {
        findings.sort();
        findings.dedup();
        LintReport { findings }
    }

    /// Number of warning-severity findings (the `--assert-clean` gate).
    pub fn warning_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Number of info-severity findings.
    pub fn info_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Info)
            .count()
    }

    /// The canonical JSON value for one model's report.
    pub fn json_doc(&self, model_label: &str) -> Json {
        let findings: Vec<Json> = self.findings.iter().map(Finding::to_json).collect();
        Json::obj([
            ("model", model_label.to_json()),
            ("warnings", (self.warning_count() as u64).to_json()),
            ("infos", (self.info_count() as u64).to_json()),
            ("findings", Json::Arr(findings)),
        ])
    }

    /// Renders the canonical JSON document. Byte-identical across runs
    /// and thread counts for the same model.
    pub fn to_json(&self, model_label: &str) -> String {
        let doc = Json::obj([
            ("tool", "rca-lint".to_json()),
            ("report", self.json_doc(model_label)),
        ]);
        let mut s = serde_json::to_string_pretty(&doc).expect("json render is infallible");
        s.push('\n');
        s
    }
}
