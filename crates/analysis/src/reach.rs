//! Interprocedural reachability over pre-resolved call targets.
//!
//! The host drives a run through exactly two entry points (`cam_init`,
//! then `cam_run_step` per step — see `rca_sim::runner`); everything a
//! campaign can observe hangs off that call tree. Procedures outside it
//! are dead code, and outputs recorded only there can never appear in a
//! history.

use rca_sim::{CExpr, CStmt, CallForm, EId, LocalTemplate, Program};

/// The subprogram names the host invokes directly.
pub const ENTRY_ROOTS: &[&str] = &["cam_init", "cam_run_step"];

fn expr_sites(prog: &Program, e: EId, out: &mut Vec<u32>) {
    match &prog.ir_exprs()[e as usize] {
        CExpr::Real(_)
        | CExpr::Int(_)
        | CExpr::Str(_)
        | CExpr::Logical(_)
        | CExpr::Var { .. }
        | CExpr::ErrorExpr { .. } => {}
        CExpr::Index { sub, fallback, .. } => {
            expr_sites(prog, *sub, out);
            match fallback.as_deref() {
                Some(CallForm::Function(site)) => {
                    out.push(*site);
                    for &a in &prog.ir_sites()[*site as usize].args {
                        expr_sites(prog, a, out);
                    }
                }
                Some(CallForm::Intrinsic(_, args)) => {
                    for &a in args {
                        expr_sites(prog, a, out);
                    }
                }
                _ => {}
            }
        }
        CExpr::CallFn { site } => {
            out.push(*site);
            for &a in &prog.ir_sites()[*site as usize].args {
                expr_sites(prog, a, out);
            }
        }
        CExpr::Intrinsic { args, .. } => {
            for &a in args {
                expr_sites(prog, a, out);
            }
        }
        CExpr::DerivedVar { sub, .. } => {
            if let Some(s) = sub {
                expr_sites(prog, *s, out);
            }
        }
        CExpr::DerivedExpr { base, sub, .. } => {
            expr_sites(prog, *base, out);
            if let Some(s) = sub {
                expr_sites(prog, *s, out);
            }
        }
        CExpr::Unary { e, .. } => expr_sites(prog, *e, out),
        CExpr::Binary { l, r, .. } => {
            expr_sites(prog, *l, out);
            expr_sites(prog, *r, out);
        }
        CExpr::MaybeFma { a, b, c, .. } => {
            expr_sites(prog, *a, out);
            expr_sites(prog, *b, out);
            expr_sites(prog, *c, out);
        }
    }
}

fn stmt_sites(prog: &Program, stmts: &[CStmt], out: &mut Vec<u32>) {
    for s in stmts {
        match s {
            CStmt::Assign { value, .. } => expr_sites(prog, *value, out),
            CStmt::Call { site, .. } => {
                out.push(*site);
                for &a in &prog.ir_sites()[*site as usize].args {
                    expr_sites(prog, a, out);
                }
            }
            CStmt::Outfld { data, ncol, .. } => {
                expr_sites(prog, *data, out);
                if let Some(n) = ncol {
                    expr_sites(prog, *n, out);
                }
            }
            CStmt::RandomNumber { current, .. } => expr_sites(prog, *current, out),
            CStmt::PbufSet { idx, data, .. } => {
                expr_sites(prog, *idx, out);
                expr_sites(prog, *data, out);
            }
            CStmt::PbufGet { idx, current, .. } => {
                expr_sites(prog, *idx, out);
                expr_sites(prog, *current, out);
            }
            CStmt::If { arms, .. } => {
                for (cond, block) in arms {
                    if let Some(c) = cond {
                        expr_sites(prog, *c, out);
                    }
                    stmt_sites(prog, block, out);
                }
            }
            CStmt::Do {
                start,
                end,
                step,
                body,
                ..
            } => {
                expr_sites(prog, *start, out);
                expr_sites(prog, *end, out);
                if let Some(st) = step {
                    expr_sites(prog, *st, out);
                }
                stmt_sites(prog, body, out);
            }
            CStmt::DoWhile { cond, body, .. } => {
                expr_sites(prog, *cond, out);
                stmt_sites(prog, body, out);
            }
            CStmt::Return | CStmt::Exit | CStmt::Cycle | CStmt::Nop | CStmt::ErrorStmt { .. } => {}
        }
    }
}

/// Call sites referenced anywhere in a procedure (body, declaration
/// templates, array extents).
pub fn proc_callees(prog: &Program, proc_index: u32) -> Vec<u32> {
    let proc = &prog.ir_procs()[proc_index as usize];
    let mut sites = Vec::new();
    for (_, line, tmpl) in &proc.inits {
        let _ = line;
        match tmpl {
            LocalTemplate::Int(Some(e))
            | LocalTemplate::Logic(Some(e))
            | LocalTemplate::Char(Some(e))
            | LocalTemplate::RealVal(Some(e)) => expr_sites(prog, *e, &mut sites),
            LocalTemplate::Array(extents) => {
                for &e in extents {
                    expr_sites(prog, e, &mut sites);
                }
            }
            _ => {}
        }
    }
    stmt_sites(prog, &proc.body, &mut sites);
    let mut callees: Vec<u32> = sites
        .into_iter()
        .map(|s| prog.ir_sites()[s as usize].proc)
        .collect();
    callees.sort_unstable();
    callees.dedup();
    callees
}

/// Procedures reachable from the named entry points over resolved call
/// targets.
pub fn reachable_procs(prog: &Program, roots: &[&str]) -> Vec<bool> {
    let n = prog.ir_procs().len();
    let mut seen = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for root in roots {
        if let Some(i) = prog.entry_proc_index(root) {
            if !seen[i as usize] {
                seen[i as usize] = true;
                stack.push(i);
            }
        }
    }
    while let Some(p) = stack.pop() {
        for c in proc_callees(prog, p) {
            if !seen[c as usize] {
                seen[c as usize] = true;
                stack.push(c);
            }
        }
    }
    seen
}
