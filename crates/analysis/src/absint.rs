//! Simple interval/sign abstract interpretation for numeric-hazard lints.
//!
//! A structured walk over each procedure body tracking per-slot value
//! intervals (`[lo, hi]`, constants as degenerate intervals). Module
//! globals that are **never written anywhere** in the program — Fortran
//! `parameter`s and effectively-constant configuration — contribute their
//! initial values, which is what gives the analysis teeth: `max(eps, x)`
//! proves a denominator positive, `2.0 * pi` folds.
//!
//! Soundness over precision, everywhere:
//! - loops invalidate every slot their body may assign before the body is
//!   walked (a one-shot widening to ⊤), so loop-carried values never look
//!   tighter than they are;
//! - `if` arms are walked on cloned states and joined by interval hull;
//! - anything untracked (arrays, derived fields, cross-procedure values)
//!   reads as ⊤.
//!
//! Hazards are reported only when *definite* on the abstract state: a
//! denominator that is exactly `[0, 0]`, a `sqrt` argument entirely
//! negative, a `log` argument bounded ≤ 0. "Might be zero" is silent by
//! design — the clean-model gate (`rca-lint --assert-clean`) depends on
//! zero false positives.

use rca_sim::{CExpr, CPlace, CStmt, EId, Intrin, LocalTemplate, Op, Program, Value, VarBind};

/// A closed interval over f64 (`NEG_INFINITY..INFINITY` = ⊤).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// The unbounded interval.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Degenerate constant interval.
    pub fn constant(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Whether the interval is a single finite value.
    pub fn as_const(&self) -> Option<f64> {
        (self.lo == self.hi && self.lo.is_finite()).then_some(self.lo)
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn guard(self) -> Interval {
        if self.lo.is_nan() || self.hi.is_nan() || self.lo > self.hi {
            Interval::TOP
        } else {
            Interval {
                lo: self.lo,
                hi: self.hi,
            }
        }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
        .guard()
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo - o.hi,
            hi: self.hi - o.lo,
        }
        .guard()
    }

    fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in c {
            if v.is_nan() {
                return Interval::TOP;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval { lo, hi }.guard()
    }

    fn div(self, o: Interval) -> Interval {
        // Only safe when the denominator is bounded away from zero.
        if o.lo > 0.0 || o.hi < 0.0 {
            let c = [
                self.lo / o.lo,
                self.lo / o.hi,
                self.hi / o.lo,
                self.hi / o.hi,
            ];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for v in c {
                if v.is_nan() {
                    return Interval::TOP;
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
            Interval { lo, hi }.guard()
        } else {
            Interval::TOP
        }
    }

    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Monotone map over both bounds.
    fn map_monotone(self, f: impl Fn(f64) -> f64) -> Interval {
        Interval {
            lo: f(self.lo),
            hi: f(self.hi),
        }
        .guard()
    }
}

/// One definite numeric hazard found by the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Division whose denominator is exactly zero on every path.
    DivByZero,
    /// `sqrt` of an argument that is negative on every path.
    SqrtNegative,
    /// `log`/`log10` of an argument bounded ≤ 0.
    LogDomain,
    /// Composite subexpression with a provably constant value the
    /// compiler's literal folding missed (informational).
    ConstFoldable,
}

/// Hazard report: kind plus source line.
#[derive(Debug, Clone, Copy)]
pub struct Hazard {
    /// What was detected.
    pub kind: HazardKind,
    /// Source line of the containing statement.
    pub line: u32,
}

/// Global slots never written by any statement in any procedure, with
/// their (scalar numeric) initial values.
pub fn const_globals(prog: &Program) -> Vec<Option<f64>> {
    let mut written = vec![false; prog.global_count()];
    let mark_place = |place: &CPlace, written: &mut Vec<bool>| match place {
        CPlace::Var { bind } | CPlace::Elem { bind, .. } | CPlace::Derived { bind, .. } => {
            match bind {
                VarBind::Global(g) | VarBind::LocalOrGlobal(_, g) => written[*g as usize] = true,
                VarBind::Local(_) => {}
            }
        }
        CPlace::Invalid { .. } => {}
    };
    fn scan(stmts: &[CStmt], f: &mut impl FnMut(&CPlace)) {
        for s in stmts {
            match s {
                CStmt::Assign { place, .. }
                | CStmt::RandomNumber { place, .. }
                | CStmt::PbufGet { place, .. } => f(place),
                CStmt::If { arms, .. } => {
                    for (_, b) in arms {
                        scan(b, f);
                    }
                }
                CStmt::Do { body, .. } | CStmt::DoWhile { body, .. } => scan(body, f),
                _ => {}
            }
        }
    }
    for p in prog.ir_procs() {
        scan(&p.body, &mut |place| mark_place(place, &mut written));
    }
    // Copy-out writebacks also target caller places.
    for site in prog.ir_sites() {
        for (_, place) in &site.copyout {
            mark_place(place, &mut written);
        }
    }
    (0..prog.global_count())
        .map(|g| {
            if written[g] {
                return None;
            }
            match prog.global_initial(g as u32) {
                Value::Real(v) => Some(*v),
                Value::Int(v) => Some(*v as f64),
                _ => None,
            }
        })
        .collect()
}

struct Walker<'p> {
    prog: &'p Program,
    global_const: &'p [Option<f64>],
    env: Vec<Option<Interval>>,
    hazards: Vec<Hazard>,
}

impl<'p> Walker<'p> {
    fn read_bind(&self, bind: VarBind) -> Interval {
        match bind {
            VarBind::Local(s) => self.env[s as usize].unwrap_or(Interval::TOP),
            VarBind::Global(g) => {
                self.global_const[g as usize].map_or(Interval::TOP, Interval::constant)
            }
            VarBind::LocalOrGlobal(..) => Interval::TOP,
        }
    }

    /// Whether the expression is a literal (already folded at compile
    /// time — never reported as foldable).
    fn is_literal(&self, e: EId) -> bool {
        matches!(
            self.prog.ir_exprs()[e as usize],
            CExpr::Real(_) | CExpr::Int(_) | CExpr::Str(_) | CExpr::Logical(_)
        )
    }

    fn eval(&mut self, e: EId, line: u32) -> Interval {
        let prog = self.prog;
        match &prog.ir_exprs()[e as usize] {
            CExpr::Real(v) => Interval::constant(*v),
            CExpr::Int(v) => Interval::constant(*v as f64),
            CExpr::Str(_) | CExpr::Logical(_) => Interval::TOP,
            CExpr::Var { bind, .. } => self.read_bind(*bind),
            CExpr::Index { sub, .. } => {
                self.eval(*sub, line);
                Interval::TOP
            }
            CExpr::CallFn { site } => {
                for &a in &prog.ir_sites()[*site as usize].args {
                    self.eval(a, line);
                }
                Interval::TOP
            }
            CExpr::Intrinsic { which, args } => {
                let vals: Vec<Interval> = args.iter().map(|&a| self.eval(a, line)).collect();
                self.intrinsic(*which, &vals, line)
            }
            CExpr::DerivedVar { sub, .. } => {
                if let Some(s) = sub {
                    self.eval(*s, line);
                }
                Interval::TOP
            }
            CExpr::DerivedExpr { base, sub, .. } => {
                self.eval(*base, line);
                if let Some(s) = sub {
                    self.eval(*s, line);
                }
                Interval::TOP
            }
            CExpr::Unary { op, e: inner } => {
                let v = self.eval(*inner, line);
                let out = match op {
                    Op::Sub => v.neg(),
                    Op::Add => v,
                    _ => Interval::TOP,
                };
                if out.as_const().is_some() && !self.is_literal(*inner) {
                    self.hazard(HazardKind::ConstFoldable, line);
                }
                out
            }
            CExpr::Binary { op, l, r } => {
                let lv = self.eval(*l, line);
                let rv = self.eval(*r, line);
                self.binary(*op, lv, rv, *l, *r, line)
            }
            CExpr::MaybeFma { op, a, b, c, .. } => {
                // Fused or not, the value is a*b ± c over the same leaves.
                let av = self.eval(*a, line);
                let bv = self.eval(*b, line);
                let cv = self.eval(*c, line);
                let prod = av.mul(bv);
                match op {
                    Op::Add => prod.add(cv),
                    Op::Sub => prod.sub(cv),
                    _ => Interval::TOP,
                }
            }
            CExpr::ErrorExpr { .. } => Interval::TOP,
        }
    }

    fn binary(
        &mut self,
        op: Op,
        lv: Interval,
        rv: Interval,
        l: EId,
        r: EId,
        line: u32,
    ) -> Interval {
        let out = match op {
            Op::Add => lv.add(rv),
            Op::Sub => lv.sub(rv),
            Op::Mul => lv.mul(rv),
            Op::Div => {
                if rv.lo == 0.0 && rv.hi == 0.0 {
                    self.hazard(HazardKind::DivByZero, line);
                }
                lv.div(rv)
            }
            _ => Interval::TOP,
        };
        // A composite arithmetic node with a provably constant value that
        // still exists in the IR was missed by literal folding.
        if matches!(op, Op::Add | Op::Sub | Op::Mul | Op::Div)
            && out.as_const().is_some()
            && !(self.is_literal(l) && self.is_literal(r))
        {
            self.hazard(HazardKind::ConstFoldable, line);
        }
        out
    }

    fn intrinsic(&mut self, which: Intrin, vals: &[Interval], line: u32) -> Interval {
        let a = vals.first().copied().unwrap_or(Interval::TOP);
        match which {
            Intrin::Sqrt => {
                if a.hi < 0.0 {
                    self.hazard(HazardKind::SqrtNegative, line);
                }
                Interval {
                    lo: a.lo.max(0.0).sqrt(),
                    hi: a.hi.max(0.0).sqrt(),
                }
                .guard()
            }
            Intrin::Log | Intrin::Log10 => {
                if a.hi <= 0.0 {
                    self.hazard(HazardKind::LogDomain, line);
                }
                if a.lo > 0.0 {
                    a.map_monotone(|v| {
                        if which == Intrin::Log {
                            v.ln()
                        } else {
                            v.log10()
                        }
                    })
                } else {
                    Interval::TOP
                }
            }
            Intrin::Exp => a.map_monotone(f64::exp),
            Intrin::Abs => {
                let hi = a.lo.abs().max(a.hi.abs());
                let lo = if a.lo <= 0.0 && a.hi >= 0.0 {
                    0.0
                } else {
                    a.lo.abs().min(a.hi.abs())
                };
                Interval { lo, hi }.guard()
            }
            Intrin::Min => vals
                .iter()
                .copied()
                .reduce(|x, y| Interval {
                    lo: x.lo.min(y.lo),
                    hi: x.hi.min(y.hi),
                })
                .unwrap_or(Interval::TOP),
            Intrin::Max => vals
                .iter()
                .copied()
                .reduce(|x, y| Interval {
                    lo: x.lo.max(y.lo),
                    hi: x.hi.max(y.hi),
                })
                .unwrap_or(Interval::TOP),
            Intrin::Tanh | Intrin::Sin | Intrin::Cos => Interval { lo: -1.0, hi: 1.0 },
            Intrin::Atan => Interval {
                lo: -std::f64::consts::FRAC_PI_2,
                hi: std::f64::consts::FRAC_PI_2,
            },
            Intrin::Real => a,
            Intrin::Floor => a.map_monotone(f64::floor),
            Intrin::Nint => a.map_monotone(f64::round),
            Intrin::Int => a.map_monotone(f64::trunc),
            Intrin::Epsilon => Interval::constant(f64::EPSILON),
            Intrin::Tiny => Interval::constant(f64::MIN_POSITIVE),
            Intrin::Huge => Interval::constant(f64::MAX),
            Intrin::Size => Interval {
                lo: 0.0,
                hi: f64::INFINITY,
            },
            Intrin::Sign => {
                let m = a.lo.abs().max(a.hi.abs());
                Interval { lo: -m, hi: m }.guard()
            }
            Intrin::Mod | Intrin::Sum | Intrin::Maxval | Intrin::Minval => Interval::TOP,
        }
    }

    fn hazard(&mut self, kind: HazardKind, line: u32) {
        // One report per (kind, line) keeps nested-expression walks from
        // flooding.
        if !self
            .hazards
            .iter()
            .any(|h| h.kind == kind && h.line == line)
        {
            self.hazards.push(Hazard { kind, line });
        }
    }

    fn assign_place(&mut self, place: &CPlace, val: Interval, line: u32) {
        match place {
            CPlace::Var {
                bind: VarBind::Local(s),
            } => self.env[*s as usize] = Some(val),
            CPlace::Var { .. } => {}
            CPlace::Elem { bind, sub, .. } => {
                self.eval(*sub, line);
                self.invalidate_bind(*bind);
            }
            CPlace::Derived { bind, sub, .. } => {
                if let Some(s) = sub {
                    self.eval(*s, line);
                }
                self.invalidate_bind(*bind);
            }
            CPlace::Invalid { .. } => {}
        }
    }

    fn invalidate_bind(&mut self, bind: VarBind) {
        if let VarBind::Local(s) | VarBind::LocalOrGlobal(s, _) = bind {
            self.env[s as usize] = Some(Interval::TOP);
        }
    }

    fn invalidate_place(&mut self, place: &CPlace) {
        match place {
            CPlace::Var { bind } | CPlace::Elem { bind, .. } | CPlace::Derived { bind, .. } => {
                self.invalidate_bind(*bind);
            }
            CPlace::Invalid { .. } => {}
        }
    }

    /// Slots a statement list may assign (loop pre-invalidation).
    fn collect_assigned(&self, stmts: &[CStmt], out: &mut Vec<u32>) {
        let slot_of = |place: &CPlace| match place {
            CPlace::Var { bind } | CPlace::Elem { bind, .. } | CPlace::Derived { bind, .. } => {
                match bind {
                    VarBind::Local(s) | VarBind::LocalOrGlobal(s, _) => Some(*s),
                    VarBind::Global(_) => None,
                }
            }
            CPlace::Invalid { .. } => None,
        };
        for s in stmts {
            match s {
                CStmt::Assign { place, .. }
                | CStmt::RandomNumber { place, .. }
                | CStmt::PbufGet { place, .. } => out.extend(slot_of(place)),
                CStmt::Call { site, .. } => {
                    for (_, place) in &self.prog.ir_sites()[*site as usize].copyout {
                        out.extend(slot_of(place));
                    }
                }
                CStmt::If { arms, .. } => {
                    for (_, b) in arms {
                        self.collect_assigned(b, out);
                    }
                }
                CStmt::Do { var, body, .. } => {
                    out.push(*var);
                    self.collect_assigned(body, out);
                }
                CStmt::DoWhile { body, .. } => self.collect_assigned(body, out),
                _ => {}
            }
        }
    }

    fn walk(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            match s {
                CStmt::Assign { place, value, line } => {
                    let v = self.eval(*value, *line);
                    self.assign_place(place, v, *line);
                }
                CStmt::Call { site, line } => {
                    for &a in &self.prog.ir_sites()[*site as usize].args {
                        self.eval(a, *line);
                    }
                    let copyout = self.prog.ir_sites()[*site as usize].copyout.clone();
                    for (_, place) in &copyout {
                        self.invalidate_place(place);
                    }
                }
                CStmt::Outfld {
                    data, ncol, line, ..
                } => {
                    self.eval(*data, *line);
                    if let Some(n) = ncol {
                        self.eval(*n, *line);
                    }
                }
                CStmt::RandomNumber {
                    current: _,
                    place,
                    line,
                } => {
                    // Uniform deviate: [0, 1).
                    self.assign_place(place, Interval { lo: 0.0, hi: 1.0 }, *line);
                }
                CStmt::PbufSet { idx, data, line } => {
                    self.eval(*idx, *line);
                    self.eval(*data, *line);
                }
                CStmt::PbufGet {
                    idx,
                    current: _,
                    place,
                    line,
                } => {
                    self.eval(*idx, *line);
                    self.assign_place(place, Interval::TOP, *line);
                    self.invalidate_place(place);
                }
                CStmt::If { arms, line } => {
                    let entry = self.env.clone();
                    let mut merged: Option<Vec<Option<Interval>>> = None;
                    let mut has_else = false;
                    for (cond, block) in arms {
                        if let Some(c) = cond {
                            self.eval(*c, *line);
                        } else {
                            has_else = true;
                        }
                        self.env = entry.clone();
                        self.walk(block);
                        merged = Some(match merged {
                            None => self.env.clone(),
                            Some(m) => join_env(&m, &self.env),
                        });
                    }
                    let mut m = merged.unwrap_or_else(|| entry.clone());
                    if !has_else {
                        m = join_env(&m, &entry);
                    }
                    self.env = m;
                }
                CStmt::Do {
                    var,
                    start,
                    end,
                    step,
                    body,
                    line,
                } => {
                    let sv = self.eval(*start, *line);
                    let ev = self.eval(*end, *line);
                    if let Some(st) = step {
                        self.eval(*st, *line);
                    }
                    let mut assigned = Vec::new();
                    self.collect_assigned(body, &mut assigned);
                    for s in assigned {
                        self.env[s as usize] = Some(Interval::TOP);
                    }
                    self.env[*var as usize] = Some(sv.hull(&ev));
                    self.walk(body);
                    self.env[*var as usize] = Some(Interval::TOP);
                }
                CStmt::DoWhile { cond, body, line } => {
                    let mut assigned = Vec::new();
                    self.collect_assigned(body, &mut assigned);
                    for s in assigned {
                        self.env[s as usize] = Some(Interval::TOP);
                    }
                    self.eval(*cond, *line);
                    self.walk(body);
                }
                CStmt::Return | CStmt::Exit | CStmt::Cycle | CStmt::Nop => {}
                CStmt::ErrorStmt { .. } => {}
            }
        }
    }
}

/// Joins two environments by interval hull (`None` = unset stays unset
/// only when both sides agree).
fn join_env(a: &[Option<Interval>], b: &[Option<Interval>]) -> Vec<Option<Interval>> {
    a.iter()
        .zip(b)
        .map(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => Some(x.hull(y)),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        })
        .collect()
}

/// Runs the hazard walk over one procedure; returns definite hazards in
/// source order.
pub fn proc_hazards(prog: &Program, proc_index: u32, global_const: &[Option<f64>]) -> Vec<Hazard> {
    let proc = &prog.ir_procs()[proc_index as usize];
    let mut w = Walker {
        prog,
        global_const,
        env: vec![None; proc.n_locals],
        hazards: Vec::new(),
    };
    // Declaration templates seed the environment (implicit zero for
    // scalars without initializers, exactly as frame init does).
    for (slot, decl_line, tmpl) in &proc.inits {
        let v = match tmpl {
            LocalTemplate::Int(None) | LocalTemplate::RealVal(None) => {
                Some(Interval::constant(0.0))
            }
            LocalTemplate::Int(Some(e)) | LocalTemplate::RealVal(Some(e)) => {
                Some(w.eval(*e, *decl_line))
            }
            _ => Some(Interval::TOP),
        };
        w.env[*slot as usize] = v;
    }
    w.walk(&proc.body);
    w.hazards.sort_by_key(|h| (h.line, h.kind as u32));
    w.hazards
}
