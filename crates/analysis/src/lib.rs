//! # rca-analysis — the static analysis plane
//!
//! The paper's feasibility argument (§4) is that *static* compiler-style
//! analysis shrinks root-cause search from millions of lines to a few
//! hundred candidate nodes before anything dynamic runs. This crate is
//! that plane for the reproduction: a reusable dataflow framework over
//! the slot-indexed [`Program`] IR, and three clients built on it.
//!
//! - [`dataflow`]: per-procedure CFGs with ordered use/def events, plus
//!   worklist solvers — reaching definitions, def-use chains, liveness.
//! - [`deps`]: an interprocedural dependence graph that independently
//!   re-implements the metagraph's §4.2 edge rules from the IR; its
//!   [`DepGraph::static_slice`] is the *second slicer*, cross-checked
//!   node-for-node against `rca_core::backward_slice` by the
//!   differential suite.
//! - [`reach`]: call-graph reachability from the host entry points.
//! - [`absint`]: interval/sign abstract interpretation for definite
//!   numeric hazards.
//! - [`lints`]: the detector catalog with deterministic JSON output
//!   (`rca-lint` CLI); warnings are definite defects and gate CI at
//!   zero on the bundled paper models.
//!
//! [`ModelAnalysis`] bundles all of it for one compiled program; the
//! campaign uses [`ModelAnalysis::classify_site`] as the static
//! observability pre-filter that rejects provably-dead injection sites
//! (and must agree with the metagraph filter on every candidate).

pub mod absint;
pub mod dataflow;
pub mod deps;
pub mod lints;
pub mod reach;

use std::sync::Arc;

use rca_sim::{CStmt, Program, SampleSpec};

pub use deps::{DepGraph, SiteClass, Triple};
pub use lints::{Finding, LintReport, Severity};

/// Static analysis results for one compiled program: the dependence
/// graph, per-procedure dataflow, reachability, and the lint catalog.
#[derive(Debug)]
pub struct ModelAnalysis {
    program: Arc<Program>,
    deps: DepGraph,
    observable: Vec<bool>,
    reachable: Vec<bool>,
    flows: Vec<dataflow::ProcFlow>,
    global_const: Vec<Option<f64>>,
}

impl ModelAnalysis {
    /// Runs every analysis over the program.
    pub fn build(program: Arc<Program>) -> ModelAnalysis {
        rca_obs::phase_scope("phase.analysis_build", || {
            rca_obs::counter_inc!("analysis.builds", 1);
            let deps = DepGraph::build(&program);
            let observable = deps.output_observable();
            let reachable = reach::reachable_procs(&program, reach::ENTRY_ROOTS);
            let flows: Vec<dataflow::ProcFlow> = (0..program.ir_procs().len() as u32)
                .map(|p| dataflow::analyze_proc(&program, p))
                .collect();
            let global_const = absint::const_globals(&program);
            ModelAnalysis {
                program,
                deps,
                observable,
                reachable,
                flows,
                global_const,
            }
        })
    }

    /// The analyzed program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The IR-level dependence graph (the independent slicer).
    pub fn deps(&self) -> &DepGraph {
        &self.deps
    }

    /// Per-procedure dataflow results, indexed like `ir_procs`.
    pub fn flows(&self) -> &[dataflow::ProcFlow] {
        &self.flows
    }

    /// Whether procedure `i` is reachable from the host entry points.
    pub fn proc_reachable(&self, i: u32) -> bool {
        self.reachable[i as usize]
    }

    /// The independent backward slice (see [`DepGraph::static_slice`]).
    pub fn static_slice(
        &self,
        criteria: &[&str],
        restrict: Option<&str>,
    ) -> Vec<(String, Option<String>, String)> {
        self.deps.static_slice(criteria, restrict)
    }

    /// Static observability pre-filter: classifies one mutation site by
    /// whether its target can reach any history output.
    pub fn classify_site(&self, module: &str, subprogram: &str, target: &str) -> SiteClass {
        self.deps
            .classify_site(&self.observable, module, subprogram, target)
    }

    /// Runs the full lint catalog.
    pub fn lint(&self) -> LintReport {
        rca_obs::phase_scope("phase.lint", || {
            rca_obs::counter_inc!("analysis.lints", 1);
            let mut findings = Vec::new();
            self.lint_dataflow(&mut findings);
            self.lint_reachability(&mut findings);
            self.lint_hazards(&mut findings);
            LintReport::seal(findings)
        })
    }

    /// Validates runtime sample specs against the program: unknown
    /// modules, subprograms, or variables are findings (specs silently
    /// sampling nothing corrupt Algorithm 5.4 step 7).
    pub fn check_sample_specs(&self, specs: &[SampleSpec]) -> LintReport {
        let mut findings = Vec::new();
        for spec in specs {
            let ok = match &spec.subprogram {
                None => self.program.global_slot(&spec.module, &spec.name).is_some(),
                Some(sub) => match self.program.proc_index(&spec.module, sub) {
                    None => false,
                    Some(p) => self.program.ir_procs()[p as usize]
                        .local_names
                        .iter()
                        .any(|n| n.as_ref() == spec.name.as_ref()),
                },
            };
            if !ok {
                findings.push(Finding {
                    lint: "unused-sample-spec",
                    module: spec.module.to_string(),
                    subprogram: spec.subprogram.as_deref().unwrap_or("").to_string(),
                    line: 0,
                    variable: spec.name.to_string(),
                    message: "sample spec resolves to no variable in the program".to_string(),
                    severity: Severity::Warning,
                });
            }
        }
        LintReport::seal(findings)
    }

    fn lint_dataflow(&self, findings: &mut Vec<Finding>) {
        for (pi, flow) in self.flows.iter().enumerate() {
            let proc = &self.program.ir_procs()[pi];
            for u in &flow.uninit {
                let name = &proc.local_names[u.slot as usize];
                findings.push(Finding {
                    lint: "uninit-read",
                    module: proc.module.to_string(),
                    subprogram: proc.name.to_string(),
                    line: u.line,
                    variable: name.to_string(),
                    message: format!("`{name}` is read but no assignment reaches on any path"),
                    severity: Severity::Warning,
                });
            }
            let read = flow.slots_read();
            for d in flow.dead_stores(&self.program) {
                let name = &proc.local_names[d.slot as usize];
                // A store no use observes is a definite defect when the
                // variable is never read at all; when other stores to it
                // are live (a reused temporary overwritten before its next
                // read), it is a redundant-store hygiene note.
                let (lint, message, severity) = if read[d.slot as usize] {
                    (
                        "redundant-store",
                        format!("value assigned to `{name}` is overwritten before any read"),
                        Severity::Info,
                    )
                } else {
                    (
                        "dead-store",
                        format!("`{name}` is assigned but never read"),
                        Severity::Warning,
                    )
                };
                findings.push(Finding {
                    lint,
                    module: proc.module.to_string(),
                    subprogram: proc.name.to_string(),
                    line: d.line,
                    variable: name.to_string(),
                    message,
                    severity,
                });
            }
        }
    }

    fn lint_reachability(&self, findings: &mut Vec<Finding>) {
        // Unreachable procedures.
        for (pi, proc) in self.program.ir_procs().iter().enumerate() {
            if self.reachable[pi] {
                continue;
            }
            findings.push(Finding {
                lint: "unreachable-proc",
                module: proc.module.to_string(),
                subprogram: proc.name.to_string(),
                line: 0,
                variable: String::new(),
                message: format!(
                    "`{}` is never called from the host entry points ({})",
                    proc.name,
                    reach::ENTRY_ROOTS.join(", ")
                ),
                severity: Severity::Warning,
            });
        }
        // Outputs recorded only in unreachable procedures can never
        // appear in a run history.
        let n_outputs = self.program.output_count();
        let mut live_output = vec![false; n_outputs];
        fn scan_outflds(stmts: &[CStmt], mark: &mut impl FnMut(u32)) {
            for s in stmts {
                match s {
                    CStmt::Outfld { out, .. } => mark(*out),
                    CStmt::If { arms, .. } => {
                        for (_, b) in arms {
                            scan_outflds(b, mark);
                        }
                    }
                    CStmt::Do { body, .. } | CStmt::DoWhile { body, .. } => {
                        scan_outflds(body, mark);
                    }
                    _ => {}
                }
            }
        }
        for (pi, proc) in self.program.ir_procs().iter().enumerate() {
            if !self.reachable[pi] {
                continue;
            }
            scan_outflds(&proc.body, &mut |o| live_output[o as usize] = true);
        }
        for (o, name) in self.program.output_names().iter().enumerate() {
            if !live_output[o] {
                findings.push(Finding {
                    lint: "unused-output",
                    module: String::new(),
                    subprogram: String::new(),
                    line: 0,
                    variable: name.to_string(),
                    message: format!("output `{name}` is only recorded in unreachable procedures"),
                    severity: Severity::Warning,
                });
            }
        }
    }

    fn lint_hazards(&self, findings: &mut Vec<Finding>) {
        for pi in 0..self.program.ir_procs().len() as u32 {
            let proc = &self.program.ir_procs()[pi as usize];
            for h in absint::proc_hazards(&self.program, pi, &self.global_const) {
                let (lint, severity, message) = lints::hazard_lint(h.kind);
                findings.push(Finding {
                    lint,
                    module: proc.module.to_string(),
                    subprogram: proc.name.to_string(),
                    line: h.line,
                    variable: String::new(),
                    message: message.to_string(),
                    severity,
                });
            }
        }
    }
}
