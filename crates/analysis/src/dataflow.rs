//! Per-procedure dataflow framework over the slot-indexed IR.
//!
//! Unlike the dependence mirror in [`crate::deps`] (which reproduces the
//! metagraph's §4.2 *static* edge rules, control flow ignored), this
//! module models **runtime semantics**: a real control-flow graph per
//! procedure — `if` arms, `do`/`do while` loops with back edges, `exit` /
//! `cycle` / `return` — and ordered use/def events per basic block, with
//! classic worklist solvers on top:
//!
//! - **reaching definitions** (forward, def-id bitvectors, strong defs
//!   kill) — powers def-use chains and the uninitialized-read lint;
//! - **def-use chains** — every definition mapped to the uses its value
//!   can reach;
//! - **liveness** (backward, slot bitvectors) — powers the dead-store
//!   lint.
//!
//! The domain is the procedure's frame slots. Global reads/writes are
//! recorded as events (so chains stay inspectable) but solvers track
//! locals only: cross-procedure global flow belongs to the dependence
//! graph, and the lints built here restrict themselves to provable
//! frame-local facts.

use rca_sim::{CExpr, CPlace, CProc, CStmt, EId, LocalTemplate, Program, VarBind};

/// A tracked storage location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Frame slot of the procedure under analysis.
    Local(u32),
    /// Module global slot.
    Global(u32),
}

/// Why a definition event exists (lints select on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefOrigin {
    /// Dummy binding at procedure entry.
    Entry,
    /// Declaration template (all declared locals are initialized at frame
    /// entry, implicit zero for scalars without initializers).
    Init,
    /// Explicit assignment statement.
    Assign,
    /// Call-site copy-out writeback.
    CopyOut,
    /// `random_number` / `pbuf_get_field` write.
    IntrinsicWrite,
    /// `do` loop variable (set before the first test, again per
    /// iteration).
    DoVar,
}

/// One ordered use/def event inside a basic block.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A read. `certain` means the read unconditionally consults the
    /// local frame slot (a scalar `Var` read with a pure-local binding) —
    /// the only reads the uninitialized-read lint may flag.
    Use { loc: Loc, line: u32, certain: bool },
    /// A write. `strong` means the whole location is overwritten
    /// (scalar assignment); element/field writes are weak.
    Def {
        loc: Loc,
        line: u32,
        strong: bool,
        origin: DefOrigin,
    },
}

/// A basic block: ordered events plus successor edges.
#[derive(Debug, Default)]
pub struct Block {
    /// Ordered use/def events.
    pub events: Vec<Event>,
    /// Successor block ids.
    pub succs: Vec<u32>,
}

/// Control-flow graph of one procedure.
#[derive(Debug)]
pub struct Cfg {
    /// Blocks; block 0 is the entry, block 1 the synthetic exit.
    pub blocks: Vec<Block>,
    /// Frame slot count (solver domain).
    pub n_locals: usize,
}

impl Cfg {
    /// Entry block id.
    pub const ENTRY: u32 = 0;
    /// Synthetic exit block id.
    pub const EXIT: u32 = 1;

    /// Blocks reachable from entry (unreachable code is excluded from
    /// lint reporting).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![Self::ENTRY];
        seen[Self::ENTRY as usize] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b as usize].succs {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

/// Fixed-width bitset (solver state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// All-zero set over `n` bits.
    pub fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Sets bit `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Tests bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; reports whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// One local-slot definition site (solver def-id space).
#[derive(Debug, Clone, Copy)]
pub struct DefInfo {
    /// Containing block.
    pub block: u32,
    /// Event index within the block.
    pub event: u32,
    /// Defined frame slot.
    pub slot: u32,
    /// Whole-location overwrite?
    pub strong: bool,
    /// Source line (0 for synthetic entry defs).
    pub line: u32,
    /// Provenance.
    pub origin: DefOrigin,
}

/// One recorded use of a local slot (def-use chain element).
#[derive(Debug, Clone, Copy)]
pub struct UseRef {
    /// Containing block.
    pub block: u32,
    /// Event index within the block.
    pub event: u32,
    /// Read frame slot.
    pub slot: u32,
    /// Source line.
    pub line: u32,
}

/// A read no definition can reach on any path.
#[derive(Debug, Clone, Copy)]
pub struct UninitRead {
    /// Read frame slot.
    pub slot: u32,
    /// Source line.
    pub line: u32,
}

/// Dataflow results for one procedure.
#[derive(Debug)]
pub struct ProcFlow {
    /// Index into `Program::ir_procs`.
    pub proc: u32,
    /// The control-flow graph.
    pub cfg: Cfg,
    /// All local definitions, in block/event order.
    pub defs: Vec<DefInfo>,
    /// Def-use chains: `du[d]` = uses reached by definition `d`.
    pub du: Vec<Vec<UseRef>>,
    /// Reads of pure-local scalars with an empty reaching-definition set
    /// (in entry-reachable blocks only).
    pub uninit: Vec<UninitRead>,
    /// Liveness: per block, the slots live on entry.
    pub live_in: Vec<BitSet>,
    /// Liveness: per block, the slots live on exit.
    pub live_out: Vec<BitSet>,
}

struct CfgBuilder<'p> {
    prog: &'p Program,
    proc: &'p CProc,
    blocks: Vec<Block>,
    cur: u32,
}

struct LoopCtx {
    head: u32,
    after: u32,
}

impl<'p> CfgBuilder<'p> {
    fn new_block(&mut self) -> u32 {
        let id = self.blocks.len() as u32;
        self.blocks.push(Block::default());
        id
    }

    fn push(&mut self, ev: Event) {
        self.blocks[self.cur as usize].events.push(ev);
    }

    fn link(&mut self, from: u32, to: u32) {
        self.blocks[from as usize].succs.push(to);
    }

    fn use_of(&mut self, bind: VarBind, line: u32, certain: bool) {
        match bind {
            VarBind::Local(s) => self.push(Event::Use {
                loc: Loc::Local(s),
                line,
                certain,
            }),
            VarBind::LocalOrGlobal(s, g) => {
                // Reads consult the slot when set, the global otherwise:
                // record both, neither certain.
                self.push(Event::Use {
                    loc: Loc::Local(s),
                    line,
                    certain: false,
                });
                self.push(Event::Use {
                    loc: Loc::Global(g),
                    line,
                    certain: false,
                });
            }
            VarBind::Global(g) => self.push(Event::Use {
                loc: Loc::Global(g),
                line,
                certain: false,
            }),
        }
    }

    /// Copy-out writebacks after a call: the caller place is written
    /// unconditionally once the callee returns.
    fn site_copyout(&mut self, site: u32, line: u32) {
        let copyout = &self.prog.ir_sites()[site as usize].copyout;
        for (_, place) in copyout {
            self.place_def(place, line, DefOrigin::CopyOut);
        }
    }

    fn site_args(&mut self, site: u32, line: u32) {
        let args = &self.prog.ir_sites()[site as usize].args;
        for &a in args {
            self.expr(a, line);
        }
    }

    /// Runtime-semantics expression walk: everything evaluated before the
    /// statement acts is a use; calls embed their argument uses and
    /// copy-out defs in evaluation order.
    fn expr(&mut self, e: EId, line: u32) {
        match &self.prog.ir_exprs()[e as usize] {
            CExpr::Real(_) | CExpr::Int(_) | CExpr::Str(_) | CExpr::Logical(_) => {}
            CExpr::Var { bind, .. } => {
                let certain = matches!(bind, VarBind::Local(_));
                self.use_of(*bind, line, certain);
            }
            CExpr::Index {
                bind,
                sub,
                fallback,
                ..
            } => {
                self.use_of(*bind, line, false);
                self.expr(*sub, line);
                if let Some(f) = fallback.as_deref() {
                    match f {
                        rca_sim::CallForm::Function(site) => {
                            // Either path may run; the call's effects are
                            // recorded (weakly, via copy-out places).
                            self.site_args(*site, line);
                            self.site_copyout(*site, line);
                        }
                        rca_sim::CallForm::Intrinsic(_, args) => {
                            for &a in args {
                                self.expr(a, line);
                            }
                        }
                        rca_sim::CallForm::Unknown => {}
                    }
                }
            }
            CExpr::CallFn { site } => {
                self.site_args(*site, line);
                self.site_copyout(*site, line);
            }
            CExpr::Intrinsic { args, .. } => {
                for &a in args {
                    self.expr(a, line);
                }
            }
            CExpr::DerivedVar { bind, sub, .. } => {
                let certain = matches!(bind, VarBind::Local(_));
                self.use_of(*bind, line, certain);
                if let Some(s) = sub {
                    self.expr(*s, line);
                }
            }
            CExpr::DerivedExpr { base, sub, .. } => {
                self.expr(*base, line);
                if let Some(s) = sub {
                    self.expr(*s, line);
                }
            }
            CExpr::Unary { e, .. } => self.expr(*e, line),
            CExpr::Binary { l, r, .. } => {
                self.expr(*l, line);
                self.expr(*r, line);
            }
            CExpr::MaybeFma { a, b, c, .. } => {
                self.expr(*a, line);
                self.expr(*b, line);
                self.expr(*c, line);
            }
            CExpr::ErrorExpr { .. } => {}
        }
    }

    fn place_def(&mut self, place: &CPlace, line: u32, origin: DefOrigin) {
        match place {
            CPlace::Var { bind } => match *bind {
                VarBind::Local(s) => self.push(Event::Def {
                    loc: Loc::Local(s),
                    line,
                    strong: true,
                    origin,
                }),
                VarBind::LocalOrGlobal(s, g) => {
                    // The write lands on whichever of the two is active:
                    // weak on both.
                    self.push(Event::Def {
                        loc: Loc::Local(s),
                        line,
                        strong: false,
                        origin,
                    });
                    self.push(Event::Def {
                        loc: Loc::Global(g),
                        line,
                        strong: false,
                        origin,
                    });
                }
                VarBind::Global(g) => self.push(Event::Def {
                    loc: Loc::Global(g),
                    line,
                    strong: true,
                    origin,
                }),
            },
            CPlace::Elem { bind, sub, .. } => {
                // Element write: the rest of the array survives — read
                // plus weak def.
                self.expr(*sub, line);
                self.use_of(*bind, line, false);
                self.weak_def_of(*bind, line, origin);
            }
            CPlace::Derived { bind, sub, .. } => {
                if let Some(s) = sub {
                    self.expr(*s, line);
                }
                self.use_of(*bind, line, false);
                self.weak_def_of(*bind, line, origin);
            }
            CPlace::Invalid { .. } => {}
        }
    }

    fn weak_def_of(&mut self, bind: VarBind, line: u32, origin: DefOrigin) {
        match bind {
            VarBind::Local(s) => self.push(Event::Def {
                loc: Loc::Local(s),
                line,
                strong: false,
                origin,
            }),
            VarBind::LocalOrGlobal(s, g) => {
                self.push(Event::Def {
                    loc: Loc::Local(s),
                    line,
                    strong: false,
                    origin,
                });
                self.push(Event::Def {
                    loc: Loc::Global(g),
                    line,
                    strong: false,
                    origin,
                });
            }
            VarBind::Global(g) => self.push(Event::Def {
                loc: Loc::Global(g),
                line,
                strong: false,
                origin,
            }),
        }
    }

    fn stmts(&mut self, body: &'p [CStmt], loops: &mut Vec<LoopCtx>) {
        for stmt in body {
            match stmt {
                CStmt::Assign { place, value, line } => {
                    self.expr(*value, *line);
                    self.place_def(place, *line, DefOrigin::Assign);
                }
                CStmt::Call { site, line } => {
                    self.site_args(*site, *line);
                    self.site_copyout(*site, *line);
                }
                CStmt::Outfld {
                    data, ncol, line, ..
                } => {
                    self.expr(*data, *line);
                    if let Some(n) = ncol {
                        self.expr(*n, *line);
                    }
                }
                CStmt::RandomNumber {
                    current,
                    place,
                    line,
                } => {
                    self.expr(*current, *line);
                    self.place_def(place, *line, DefOrigin::IntrinsicWrite);
                }
                CStmt::PbufSet { idx, data, line } => {
                    self.expr(*idx, *line);
                    self.expr(*data, *line);
                }
                CStmt::PbufGet {
                    idx,
                    current,
                    place,
                    line,
                } => {
                    self.expr(*idx, *line);
                    self.expr(*current, *line);
                    self.place_def(place, *line, DefOrigin::IntrinsicWrite);
                }
                CStmt::If { arms, line } => {
                    let join = self.new_block();
                    let mut has_else = false;
                    for (cond, block) in arms {
                        match cond {
                            Some(c) => {
                                self.expr(*c, *line);
                                let body = self.new_block();
                                let next = self.new_block();
                                self.link(self.cur, body);
                                self.link(self.cur, next);
                                self.cur = body;
                                self.stmts(block, loops);
                                self.link(self.cur, join);
                                self.cur = next;
                            }
                            None => {
                                has_else = true;
                                self.stmts(block, loops);
                                self.link(self.cur, join);
                                // Continuation after an else never falls
                                // through.
                                self.cur = self.new_block();
                            }
                        }
                    }
                    if !has_else {
                        self.link(self.cur, join);
                    }
                    self.cur = join;
                }
                CStmt::Do {
                    var,
                    start,
                    end,
                    step,
                    body,
                    line,
                } => {
                    // Bounds evaluate once; the loop variable is assigned
                    // before the first test and again per iteration.
                    self.expr(*start, *line);
                    self.expr(*end, *line);
                    if let Some(s) = step {
                        self.expr(*s, *line);
                    }
                    self.push(Event::Def {
                        loc: Loc::Local(*var),
                        line: *line,
                        strong: true,
                        origin: DefOrigin::DoVar,
                    });
                    let head = self.new_block();
                    let body_block = self.new_block();
                    let after = self.new_block();
                    self.link(self.cur, head);
                    self.blocks[head as usize].events.push(Event::Def {
                        loc: Loc::Local(*var),
                        line: *line,
                        strong: true,
                        origin: DefOrigin::DoVar,
                    });
                    self.link(head, body_block);
                    self.link(head, after);
                    self.cur = body_block;
                    loops.push(LoopCtx { head, after });
                    self.stmts(body, loops);
                    loops.pop();
                    self.link(self.cur, head);
                    self.cur = after;
                }
                CStmt::DoWhile { cond, body, line } => {
                    let head = self.new_block();
                    let body_block = self.new_block();
                    let after = self.new_block();
                    self.link(self.cur, head);
                    self.cur = head;
                    self.expr(*cond, *line);
                    self.link(head, body_block);
                    self.link(head, after);
                    self.cur = body_block;
                    loops.push(LoopCtx { head, after });
                    self.stmts(body, loops);
                    loops.pop();
                    self.link(self.cur, head);
                    self.cur = after;
                }
                CStmt::Return => {
                    self.link(self.cur, Cfg::EXIT);
                    self.cur = self.new_block();
                }
                CStmt::Exit => {
                    if let Some(l) = loops.last() {
                        let after = l.after;
                        self.link(self.cur, after);
                    } else {
                        self.link(self.cur, Cfg::EXIT);
                    }
                    self.cur = self.new_block();
                }
                CStmt::Cycle => {
                    if let Some(l) = loops.last() {
                        let head = l.head;
                        self.link(self.cur, head);
                    } else {
                        self.link(self.cur, Cfg::EXIT);
                    }
                    self.cur = self.new_block();
                }
                CStmt::Nop => {}
                CStmt::ErrorStmt { .. } => {
                    // A deferred runtime error aborts the run.
                    self.link(self.cur, Cfg::EXIT);
                    self.cur = self.new_block();
                }
            }
        }
    }
}

/// Builds the CFG of one procedure, entry events (dummy bindings, then
/// declaration templates in order) included.
pub fn build_cfg(prog: &Program, proc_index: u32) -> Cfg {
    let proc = &prog.ir_procs()[proc_index as usize];
    let mut b = CfgBuilder {
        prog,
        proc,
        blocks: vec![Block::default(), Block::default()],
        cur: Cfg::ENTRY,
    };
    for &slot in &b.proc.arg_slots {
        b.push(Event::Def {
            loc: Loc::Local(slot),
            line: 0,
            strong: true,
            origin: DefOrigin::Entry,
        });
    }
    // Declaration templates run in order; initializer expressions are
    // evaluated before their slot is set, so a template reading a
    // later-declared local is a visible uninitialized read.
    for (slot, decl_line, tmpl) in &proc.inits {
        match tmpl {
            LocalTemplate::Int(Some(e))
            | LocalTemplate::Logic(Some(e))
            | LocalTemplate::Char(Some(e))
            | LocalTemplate::RealVal(Some(e)) => b.expr(*e, *decl_line),
            LocalTemplate::Array(extents) => {
                for &e in extents {
                    b.expr(e, *decl_line);
                }
            }
            _ => {}
        }
        b.push(Event::Def {
            loc: Loc::Local(*slot),
            line: *decl_line,
            strong: true,
            origin: DefOrigin::Init,
        });
    }
    let mut loops = Vec::new();
    b.stmts(&proc.body, &mut loops);
    b.link(b.cur, Cfg::EXIT);
    Cfg {
        blocks: b.blocks,
        n_locals: proc.n_locals,
    }
}

/// Runs reaching definitions + def-use chains + liveness for one
/// procedure.
pub fn analyze_proc(prog: &Program, proc_index: u32) -> ProcFlow {
    let cfg = build_cfg(prog, proc_index);
    let proc = &prog.ir_procs()[proc_index as usize];
    let nb = cfg.blocks.len();

    // ---- Def enumeration (local slots only). -------------------------
    let mut defs: Vec<DefInfo> = Vec::new();
    let mut defs_by_slot: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_locals];
    for (bi, block) in cfg.blocks.iter().enumerate() {
        for (ei, ev) in block.events.iter().enumerate() {
            if let Event::Def {
                loc: Loc::Local(s),
                line,
                strong,
                origin,
            } = *ev
            {
                let id = defs.len() as u32;
                defs.push(DefInfo {
                    block: bi as u32,
                    event: ei as u32,
                    slot: s,
                    strong,
                    line,
                    origin,
                });
                defs_by_slot[s as usize].push(id);
            }
        }
    }
    let nd = defs.len();
    let slot_mask: Vec<BitSet> = defs_by_slot
        .iter()
        .map(|ids| {
            let mut m = BitSet::new(nd);
            for &i in ids {
                m.insert(i as usize);
            }
            m
        })
        .collect();

    // ---- Reaching definitions (forward). -----------------------------
    let apply = |state: &mut BitSet, block: u32, ev: &Event, id_at: &mut u32| {
        if let Event::Def {
            loc: Loc::Local(s),
            strong,
            ..
        } = *ev
        {
            let _ = block;
            if strong {
                state.subtract(&slot_mask[s as usize]);
            }
            state.insert(*id_at as usize);
            *id_at += 1;
        }
    };
    // GEN/KILL via a block-local pass, then the worklist.
    let mut rd_in: Vec<BitSet> = (0..nb).map(|_| BitSet::new(nd)).collect();
    let mut rd_out: Vec<BitSet> = (0..nb).map(|_| BitSet::new(nd)).collect();
    // Def ids are in block order, so a per-block scan can recover them by
    // counting.
    let mut first_def_of_block: Vec<u32> = vec![0; nb];
    {
        let mut c = 0u32;
        for (bi, block) in cfg.blocks.iter().enumerate() {
            first_def_of_block[bi] = c;
            for ev in &block.events {
                if matches!(
                    ev,
                    Event::Def {
                        loc: Loc::Local(_),
                        ..
                    }
                ) {
                    c += 1;
                }
            }
        }
    }
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (bi, block) in cfg.blocks.iter().enumerate() {
        for &s in &block.succs {
            preds[s as usize].push(bi as u32);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nb {
            let mut inset = BitSet::new(nd);
            for &pi in &preds[bi] {
                inset.union_with(&rd_out[pi as usize]);
            }
            let mut out = inset.clone();
            let mut id_at = first_def_of_block[bi];
            for ev in &cfg.blocks[bi].events {
                apply(&mut out, bi as u32, ev, &mut id_at);
            }
            if rd_in[bi] != inset {
                rd_in[bi] = inset;
            }
            if out != rd_out[bi] {
                rd_out[bi] = out;
                changed = true;
            }
        }
    }

    // ---- Def-use chains + uninitialized reads. -----------------------
    let reachable = cfg.reachable();
    let is_arg = |s: u32| proc.arg_slots.contains(&s);
    let mut du: Vec<Vec<UseRef>> = vec![Vec::new(); nd];
    let mut uninit: Vec<UninitRead> = Vec::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let mut state = rd_in[bi].clone();
        let mut id_at = first_def_of_block[bi];
        for (ei, ev) in block.events.iter().enumerate() {
            match *ev {
                Event::Use {
                    loc: Loc::Local(s),
                    line,
                    certain,
                } => {
                    let mut any = false;
                    for d in state.iter_ones() {
                        if defs[d].slot == s {
                            du[d].push(UseRef {
                                block: bi as u32,
                                event: ei as u32,
                                slot: s,
                                line,
                            });
                            any = true;
                        }
                    }
                    if !any && certain && reachable[bi] && !is_arg(s) {
                        uninit.push(UninitRead { slot: s, line });
                    }
                }
                _ => apply(&mut state, bi as u32, ev, &mut id_at),
            }
        }
    }

    // ---- Liveness (backward, slot domain). ---------------------------
    let mut live_in: Vec<BitSet> = (0..nb).map(|_| BitSet::new(cfg.n_locals)).collect();
    let mut live_out: Vec<BitSet> = (0..nb).map(|_| BitSet::new(cfg.n_locals)).collect();
    // Dummies and the function result escape through copy-out / return.
    let mut exit_live = BitSet::new(cfg.n_locals);
    for &s in &proc.arg_slots {
        exit_live.insert(s as usize);
    }
    if let Some(r) = proc.result_slot {
        exit_live.insert(r as usize);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let mut out = if bi as u32 == Cfg::EXIT {
                exit_live.clone()
            } else {
                BitSet::new(cfg.n_locals)
            };
            for &s in &cfg.blocks[bi].succs {
                out.union_with(&live_in[s as usize]);
            }
            let mut inset = out.clone();
            for ev in cfg.blocks[bi].events.iter().rev() {
                match *ev {
                    Event::Use {
                        loc: Loc::Local(s), ..
                    } => inset.insert(s as usize),
                    Event::Def {
                        loc: Loc::Local(s),
                        strong: true,
                        ..
                    } => inset.remove(s as usize),
                    _ => {}
                }
            }
            live_out[bi] = out;
            if inset != live_in[bi] {
                live_in[bi] = inset;
                changed = true;
            }
        }
    }

    ProcFlow {
        proc: proc_index,
        cfg,
        defs,
        du,
        uninit,
        live_in,
        live_out,
    }
}

impl ProcFlow {
    /// Dead stores: explicit scalar assignments to pure frame locals
    /// (never dummies, never the function result) whose value no use can
    /// observe — in entry-reachable code.
    pub fn dead_stores(&self, prog: &Program) -> Vec<DefInfo> {
        let proc = &prog.ir_procs()[self.proc as usize];
        let reachable = self.cfg.reachable();
        let mut out = Vec::new();
        for (d, info) in self.defs.iter().enumerate() {
            if !matches!(info.origin, DefOrigin::Assign) || !info.strong {
                continue;
            }
            if proc.arg_slots.contains(&info.slot) || proc.result_slot == Some(info.slot) {
                continue;
            }
            if !reachable[info.block as usize] {
                continue;
            }
            if self.du[d].is_empty() {
                out.push(*info);
            }
        }
        out
    }

    /// Which frame slots have *any* read event anywhere in the procedure
    /// (certain or not). Distinguishes a dead store to an otherwise-live
    /// variable (a redundant store, hygiene) from a store to a variable
    /// nothing ever reads (a definite defect).
    pub fn slots_read(&self) -> Vec<bool> {
        let mut read = vec![false; self.cfg.n_locals];
        for b in &self.cfg.blocks {
            for ev in &b.events {
                if let Event::Use {
                    loc: Loc::Local(s), ..
                } = ev
                {
                    read[*s as usize] = true;
                }
            }
        }
        read
    }
}
