//! Interprocedural dependence graph extracted from the compiled IR.
//!
//! This is a **second, independent implementation** of the metagraph's
//! §4.2 edge rules: where `rca_metagraph::builder` walks the AST with
//! textual scope resolution, this walk runs over the slot-indexed
//! [`Program`] and recovers the same `(module, subprogram, canonical)`
//! node universe from pre-resolved bindings. The differential suite in
//! `rca-core` holds the two node-for-node on every paper experiment —
//! the same fence the interpreter-vs-executor pair uses.
//!
//! Mirrored rules (paper §4.2 / §5.1):
//! - arrays are atomic: subscripts are ignored, subscript-only variables
//!   never become nodes;
//! - intrinsics localize per call site (`max_l42`);
//! - user calls fan out over *all* same-name candidates, actual-argument
//!   sources flow into dummy nodes, intents orient the edges;
//! - derived-type reads flow base → field, writes flow field → base;
//! - `outfld` populates the I/O registry without graph edges;
//! - control flow (if conditions, do headers) carries no data edges.
//!
//! Known, deliberate divergences (absent from the generated model, and
//! fenced by the differential suite): unknown external subroutines
//! (`ErrorStmt` here, bidirectional hub there), `random_seed` (no-op here,
//! isolated node there), variables shadowing intrinsic names, and array
//! locals with declaration initializers (the IR folds those away).

use std::collections::HashMap;
use std::collections::HashSet;

use rca_ident::{ModuleId, SymbolTable, VarId};
use rca_sim::{
    ArgFlow, CExpr, CPlace, CProc, CStmt, CallForm, EId, LocalTemplate, Program, VarBind,
};

/// Dependence-graph node identity: module, owning subprogram (`None` for
/// module scope), canonical variable name — all interned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Owning module.
    pub module: ModuleId,
    /// Owning subprogram name (`None` = module-scope variable).
    pub sub: Option<VarId>,
    /// Canonical variable name (field name for derived-type elements).
    pub canonical: VarId,
}

/// Classification of a mutation site against output reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// The assigned variable has a static dependence path to an `outfld`
    /// internal variable: a perturbation here is observable.
    Observable,
    /// The node exists but no path reaches any history output: a
    /// perturbation here is provably dead (it would corrupt campaign
    /// ground truth with unobservable "bugs").
    Dead,
    /// The assigned variable never became a dependence node (for example
    /// a statement form the graph does not model).
    Unmapped,
}

/// The IR-level dependence graph. Reverse adjacency only: every client —
/// slicing, output reachability, site classification — walks backward.
#[derive(Debug)]
pub struct DepGraph {
    syms: SymbolTable,
    nodes: Vec<Triple>,
    index: HashMap<Triple, u32>,
    preds: Vec<Vec<u32>>,
    by_canonical: HashMap<VarId, Vec<u32>>,
    io_internal: Vec<VarId>,
    edge_count: usize,
}

/// Per-subprogram resolution context (the IR analogue of the builder's
/// `Scope`: declared names resolve locally before any binding is
/// consulted).
struct ProcCtx<'p> {
    module: ModuleId,
    sub: VarId,
    declared: HashSet<&'p str>,
    /// Index of the proc being walked (place bindings name slots through
    /// its `local_names`).
    proc_index: usize,
}

struct Mirror<'p> {
    prog: &'p Program,
    syms: SymbolTable,
    nodes: Vec<Triple>,
    index: HashMap<Triple, u32>,
    preds: Vec<Vec<u32>>,
    io_internal: Vec<VarId>,
    /// Raw program module id → interned [`ModuleId`].
    module_sym: Vec<ModuleId>,
    /// Global slot → node index (pre-created, like module decls).
    global_nodes: Vec<u32>,
    /// Subprogram name → function candidates / subroutine candidates
    /// (the IR analogue of `ProcTable::candidates`).
    fn_cands: HashMap<&'p str, Vec<u32>>,
    sub_cands: HashMap<&'p str, Vec<u32>>,
}

impl<'p> Mirror<'p> {
    fn node(&mut self, t: Triple) -> u32 {
        if let Some(&i) = self.index.get(&t) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(t);
        self.preds.push(Vec::new());
        self.index.insert(t, i);
        i
    }

    fn edge(&mut self, src: u32, dst: u32) {
        self.preds[dst as usize].push(src);
    }

    fn local_node(&mut self, ctx: &ProcCtx<'p>, name: &str) -> u32 {
        let canonical = self.syms.intern_var(name);
        self.node(Triple {
            module: ctx.module,
            sub: Some(ctx.sub),
            canonical,
        })
    }

    /// Mirrors `Builder::resolve_var`: declared names are subprogram-local;
    /// everything else follows the pre-resolved binding (globals carry
    /// their origin module through `use` renames), and unresolved names
    /// become implicit locals.
    fn resolve(&mut self, ctx: &ProcCtx<'p>, bind: VarBind, name: &str) -> u32 {
        if ctx.declared.contains(name) {
            return self.local_node(ctx, name);
        }
        match bind {
            VarBind::Global(g) | VarBind::LocalOrGlobal(_, g) => self.global_nodes[g as usize],
            VarBind::Local(_) => self.local_node(ctx, name),
        }
    }

    fn localized(&mut self, ctx: &ProcCtx<'p>, base: &str, line: u32) -> u32 {
        let name = format!("{base}_l{line}");
        self.local_node(ctx, &name)
    }

    /// Mirrors the intrinsic branch of `expr_sources`: inputs feed a
    /// per-call-site node which is the sole source.
    fn intrinsic_node(&mut self, ctx: &ProcCtx<'p>, name: &str, args: &[EId], line: u32) -> u32 {
        let inode = self.localized(ctx, name, line);
        let mut srcs = Vec::new();
        for &a in args {
            self.expr_sources(ctx, a, line, &mut srcs);
        }
        for s in srcs {
            self.edge(s, inode);
        }
        inode
    }

    /// Mirrors the user-function branch: argument sources map into every
    /// candidate's dummies; each candidate's result node flows out.
    fn function_call(&mut self, ctx: &ProcCtx<'p>, site: u32, line: u32, out: &mut Vec<u32>) {
        let prog = self.prog;
        let s = &prog.ir_sites()[site as usize];
        let name: &'p str = &prog.ir_procs()[s.proc as usize].name;
        let cands = self.fn_cands.get(name).cloned().unwrap_or_default();
        let mut arg_srcs: Vec<Vec<u32>> = Vec::with_capacity(s.args.len());
        for &a in &s.args {
            let mut srcs = Vec::new();
            self.expr_sources(ctx, a, line, &mut srcs);
            arg_srcs.push(srcs);
        }
        for cand in cands {
            let cp: &'p CProc = &prog.ir_procs()[cand as usize];
            let cmod = self.module_sym[cp.module_id as usize];
            let csub = self.syms.intern_var(&cp.name);
            for (i, srcs) in arg_srcs.iter().enumerate() {
                let Some(&slot) = cp.arg_slots.get(i) else {
                    continue;
                };
                let canonical = self.syms.intern_var(&cp.local_names[slot as usize]);
                let dnode = self.node(Triple {
                    module: cmod,
                    sub: Some(csub),
                    canonical,
                });
                for &s in srcs {
                    self.edge(s, dnode);
                }
            }
            let rslot = cp.result_slot.unwrap_or(0);
            let canonical = self.syms.intern_var(&cp.local_names[rslot as usize]);
            let rnode = self.node(Triple {
                module: cmod,
                sub: Some(csub),
                canonical,
            });
            out.push(rnode);
        }
    }

    /// Mirrors `Builder::expr_sources` over the expression arena.
    fn expr_sources(&mut self, ctx: &ProcCtx<'p>, e: EId, line: u32, out: &mut Vec<u32>) {
        let prog = self.prog;
        match &prog.ir_exprs()[e as usize] {
            CExpr::Real(_) | CExpr::Int(_) | CExpr::Str(_) | CExpr::Logical(_) => {}
            CExpr::Var { bind, name } => {
                let n = self.resolve(ctx, *bind, name);
                out.push(n);
            }
            CExpr::Index {
                bind,
                name,
                fallback,
                ..
            } => match fallback.as_deref() {
                Some(CallForm::Function(site)) if !ctx.declared.contains(name.as_ref()) => {
                    self.function_call(ctx, *site, line, out);
                }
                Some(CallForm::Intrinsic(which, args)) if !ctx.declared.contains(name.as_ref()) => {
                    let inode = self.intrinsic_node(ctx, which.name(), args, line);
                    out.push(inode);
                }
                // Arrays are atomic: the reference is the whole variable,
                // subscripts carry index (not value) information.
                _ => {
                    let n = self.resolve(ctx, *bind, name);
                    out.push(n);
                }
            },
            CExpr::CallFn { site } => self.function_call(ctx, *site, line, out),
            CExpr::Intrinsic { which, args } => {
                let inode = self.intrinsic_node(ctx, which.name(), args, line);
                out.push(inode);
            }
            CExpr::DerivedVar {
                bind, name, field, ..
            } => {
                // Read a%b: the aggregate feeds the element node.
                let fnode = self.local_node(ctx, field);
                let bnode = self.resolve(ctx, *bind, name);
                self.edge(bnode, fnode);
                out.push(fnode);
            }
            CExpr::DerivedExpr { base, field, .. } => {
                let fnode = self.local_node(ctx, field);
                let mut base_srcs = Vec::new();
                self.expr_sources(ctx, *base, line, &mut base_srcs);
                for b in base_srcs {
                    self.edge(b, fnode);
                }
                out.push(fnode);
            }
            CExpr::Unary { e, .. } => self.expr_sources(ctx, *e, line, out),
            CExpr::Binary { l, r, .. } => {
                self.expr_sources(ctx, *l, line, out);
                self.expr_sources(ctx, *r, line, out);
            }
            // The fused form reads exactly the operands of the unfused
            // `a*b ± c` tree.
            CExpr::MaybeFma { a, b, c, .. } => {
                self.expr_sources(ctx, *a, line, out);
                self.expr_sources(ctx, *b, line, out);
                self.expr_sources(ctx, *c, line, out);
            }
            CExpr::ErrorExpr { .. } => {}
        }
    }

    /// Mirrors `Builder::target_node` for assignment places, emitting the
    /// write-direction derived edge (`field → base`).
    fn target_from_place(&mut self, ctx: &ProcCtx<'p>, place: &'p CPlace) -> Option<u32> {
        let prog = self.prog;
        match place {
            CPlace::Var { bind } => {
                let name: &'p str = match *bind {
                    VarBind::Local(s) | VarBind::LocalOrGlobal(s, _) => {
                        &prog.ir_procs()[ctx.proc_index].local_names[s as usize]
                    }
                    VarBind::Global(g) => &prog.global_origins()[g as usize].1,
                };
                Some(self.resolve(ctx, *bind, name))
            }
            CPlace::Elem { bind, name, .. } => Some(self.resolve(ctx, *bind, name)),
            CPlace::Derived {
                bind, name, field, ..
            } => {
                let fnode = self.local_node(ctx, field);
                let bnode = self.resolve(ctx, *bind, name);
                self.edge(fnode, bnode);
                Some(fnode)
            }
            CPlace::Invalid { .. } => None,
        }
    }

    /// Mirrors `Builder::target_node` for out-intent actual arguments.
    fn target_from_expr(&mut self, ctx: &ProcCtx<'p>, e: EId) -> Option<u32> {
        let prog = self.prog;
        match &prog.ir_exprs()[e as usize] {
            CExpr::Var { bind, name } => Some(self.resolve(ctx, *bind, name)),
            CExpr::Index { bind, name, .. } => Some(self.resolve(ctx, *bind, name)),
            CExpr::CallFn { site } => {
                let name: &'p str =
                    &prog.ir_procs()[prog.ir_sites()[*site as usize].proc as usize].name;
                Some(self.local_node(ctx, name))
            }
            CExpr::DerivedVar {
                bind, name, field, ..
            } => {
                let fnode = self.local_node(ctx, field);
                let bnode = self.resolve(ctx, *bind, name);
                self.edge(fnode, bnode);
                Some(fnode)
            }
            CExpr::DerivedExpr { base, field, .. } => {
                let fnode = self.local_node(ctx, field);
                if let Some(b) = self.target_from_expr(ctx, *base) {
                    self.edge(fnode, b);
                }
                Some(fnode)
            }
            _ => None,
        }
    }

    /// Mirrors the known-subroutine branch of `process_call`: intents
    /// orient edges per candidate, extra actuals beyond the dummy list are
    /// skipped.
    fn subroutine_call(&mut self, ctx: &ProcCtx<'p>, site: u32, line: u32) {
        let prog = self.prog;
        let s = &prog.ir_sites()[site as usize];
        let name: &'p str = &prog.ir_procs()[s.proc as usize].name;
        let cands = self.sub_cands.get(name).cloned().unwrap_or_default();
        for cand in cands {
            let cp: &'p CProc = &prog.ir_procs()[cand as usize];
            let cmod = self.module_sym[cp.module_id as usize];
            let csub = self.syms.intern_var(&cp.name);
            for (i, &arg) in s.args.iter().enumerate() {
                let Some(&slot) = cp.arg_slots.get(i) else {
                    continue;
                };
                let flow = cp.arg_flows.get(i).copied().unwrap_or(ArgFlow::Unknown);
                let canonical = self.syms.intern_var(&cp.local_names[slot as usize]);
                let dnode = self.node(Triple {
                    module: cmod,
                    sub: Some(csub),
                    canonical,
                });
                if !matches!(flow, ArgFlow::Out) {
                    let mut srcs = Vec::new();
                    self.expr_sources(ctx, arg, line, &mut srcs);
                    for s in srcs {
                        self.edge(s, dnode);
                    }
                }
                if !matches!(flow, ArgFlow::In) {
                    if let Some(t) = self.target_from_expr(ctx, arg) {
                        self.edge(dnode, t);
                    }
                }
            }
        }
    }

    /// Mirrors the I/O-registry branch: the first argument with a
    /// canonical name is the internal variable; its reference is walked
    /// (so the node exists) but produces no assignment edges.
    fn outfld(&mut self, ctx: &ProcCtx<'p>, data: EId, ncol: Option<EId>, line: u32) {
        let prog = self.prog;
        for cand in std::iter::once(data).chain(ncol) {
            let canonical = match &prog.ir_exprs()[cand as usize] {
                CExpr::Var { name, .. } | CExpr::Index { name, .. } => Some(name.clone()),
                CExpr::DerivedVar { field, .. } | CExpr::DerivedExpr { field, .. } => {
                    Some(field.clone())
                }
                CExpr::CallFn { site } => Some(
                    prog.ir_procs()[prog.ir_sites()[*site as usize].proc as usize]
                        .name
                        .clone(),
                ),
                CExpr::Intrinsic { which, .. } => Some(Arc::from(which.name())),
                _ => None,
            };
            if let Some(c) = canonical {
                let mut srcs = Vec::new();
                self.expr_sources(ctx, cand, line, &mut srcs);
                let id = self.syms.intern_var(&c);
                self.io_internal.push(id);
                return;
            }
        }
    }

    fn stmts(&mut self, ctx: &ProcCtx<'p>, body: &'p [CStmt]) {
        for stmt in body {
            match stmt {
                CStmt::Assign { place, value, line } => {
                    // An unresolvable target skips the whole statement,
                    // sources included.
                    let Some(t) = self.target_from_place(ctx, place) else {
                        continue;
                    };
                    let mut srcs = Vec::new();
                    self.expr_sources(ctx, *value, *line, &mut srcs);
                    for s in srcs {
                        self.edge(s, t);
                    }
                }
                CStmt::Call { site, line } => self.subroutine_call(ctx, *site, *line),
                CStmt::Outfld {
                    data, ncol, line, ..
                } => self.outfld(ctx, *data, *ncol, *line),
                CStmt::RandomNumber { place, line, .. } => {
                    let gnode = self.localized(ctx, "random_number", *line);
                    if let Some(t) = self.target_from_place(ctx, place) {
                        self.edge(gnode, t);
                    }
                }
                CStmt::PbufSet { idx, data, line } => {
                    let hub = self.localized(ctx, "pbuf_set_field", *line);
                    let mut srcs = Vec::new();
                    self.expr_sources(ctx, *idx, *line, &mut srcs);
                    self.expr_sources(ctx, *data, *line, &mut srcs);
                    for s in srcs {
                        self.edge(s, hub);
                    }
                }
                CStmt::PbufGet {
                    idx, place, line, ..
                } => {
                    let hub = self.localized(ctx, "pbuf_get_field", *line);
                    let mut srcs = Vec::new();
                    self.expr_sources(ctx, *idx, *line, &mut srcs);
                    for s in srcs {
                        self.edge(s, hub);
                    }
                    if let Some(t) = self.target_from_place(ctx, place) {
                        self.edge(hub, t);
                    }
                }
                CStmt::If { arms, .. } => {
                    // Conditions carry control, not data.
                    for (_, block) in arms {
                        self.stmts(ctx, block);
                    }
                }
                CStmt::Do { body, .. } | CStmt::DoWhile { body, .. } => self.stmts(ctx, body),
                CStmt::Return | CStmt::Exit | CStmt::Cycle | CStmt::Nop => {}
                CStmt::ErrorStmt { .. } => {}
            }
        }
    }
}

use std::sync::Arc;

impl DepGraph {
    /// Extracts the dependence graph from a compiled program. The
    /// program's interner seeds the graph's symbol table (append-only
    /// extension: every program id stays valid).
    pub fn build(prog: &Program) -> DepGraph {
        let syms: SymbolTable = (**prog.symbols()).clone();
        let mut m = Mirror {
            prog,
            syms,
            nodes: Vec::new(),
            index: HashMap::new(),
            preds: Vec::new(),
            io_internal: Vec::new(),
            module_sym: Vec::new(),
            global_nodes: Vec::new(),
            fn_cands: HashMap::new(),
            sub_cands: HashMap::new(),
        };
        for name in prog.ir_module_names() {
            let id = m.syms.intern_module(name);
            m.module_sym.push(id);
        }
        for (i, p) in prog.ir_procs().iter().enumerate() {
            let key: &str = &p.name;
            if p.result_slot.is_some() {
                m.fn_cands.entry(key).or_default().push(i as u32);
            } else {
                m.sub_cands.entry(key).or_default().push(i as u32);
            }
        }
        // Module declarations first (every module variable exists as a
        // node even without an initializer), then the initializer
        // dependencies the compiler's constant folding erased.
        for g in 0..prog.global_count() {
            let (mid, name) = &prog.global_origins()[g];
            let module = m.module_sym[*mid as usize];
            let canonical = m.syms.intern_var(name);
            let n = m.node(Triple {
                module,
                sub: None,
                canonical,
            });
            m.global_nodes.push(n);
        }
        for &(src, dst) in prog.global_init_deps() {
            let s = m.global_nodes[src as usize];
            let d = m.global_nodes[dst as usize];
            m.edge(s, d);
        }
        // Subprogram bodies, declaration initializers first.
        for (pi, p) in prog.ir_procs().iter().enumerate() {
            let module = m.module_sym[p.module_id as usize];
            let sub = m.syms.intern_var(&p.name);
            let mut declared: HashSet<&str> = HashSet::new();
            for &slot in &p.arg_slots {
                declared.insert(&p.local_names[slot as usize]);
            }
            for d in &p.declared_locals {
                declared.insert(d);
            }
            if let Some(r) = p.result_slot {
                declared.insert(&p.local_names[r as usize]);
            }
            let ctx = ProcCtx {
                module,
                sub,
                declared,
                proc_index: pi,
            };
            for (slot, decl_line, tmpl) in &p.inits {
                let init = match tmpl {
                    LocalTemplate::Int(Some(e))
                    | LocalTemplate::Logic(Some(e))
                    | LocalTemplate::Char(Some(e))
                    | LocalTemplate::RealVal(Some(e)) => Some(*e),
                    _ => None,
                };
                if let Some(e) = init {
                    let name: &str = &p.local_names[*slot as usize];
                    let t = m.resolve(&ctx, VarBind::Local(*slot), name);
                    let mut srcs = Vec::new();
                    m.expr_sources(&ctx, e, *decl_line, &mut srcs);
                    for s in srcs {
                        m.edge(s, t);
                    }
                }
            }
            m.stmts(&ctx, &p.body);
        }
        // Freeze: dedup reverse adjacency, index canonical names.
        let mut edge_count = 0;
        for preds in &mut m.preds {
            preds.sort_unstable();
            preds.dedup();
            edge_count += preds.len();
        }
        let mut by_canonical: HashMap<VarId, Vec<u32>> = HashMap::new();
        for (i, t) in m.nodes.iter().enumerate() {
            by_canonical.entry(t.canonical).or_default().push(i as u32);
        }
        m.io_internal.sort_unstable();
        m.io_internal.dedup();
        DepGraph {
            syms: m.syms,
            nodes: m.nodes,
            index: m.index,
            preds: m.preds,
            by_canonical,
            io_internal: m.io_internal,
            edge_count,
        }
    }

    /// All nodes, in creation order.
    pub fn nodes(&self) -> &[Triple] {
        &self.nodes
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deduplicated edge count.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The graph's symbol table (program interner plus names this walk
    /// appended: localized intrinsics, derived fields, implicit locals).
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// Canonical names of `outfld` internal variables (the I/O registry
    /// seeds for output reachability).
    pub fn io_internal(&self) -> &[VarId] {
        &self.io_internal
    }

    /// Direct predecessors (dependence sources) of a node.
    pub fn preds_of(&self, node: u32) -> &[u32] {
        &self.preds[node as usize]
    }

    /// All nodes whose canonical name matches `name`.
    pub fn nodes_with_canonical(&self, name: &str) -> Vec<u32> {
        let Some(id) = self.syms.var_id(name) else {
            return Vec::new();
        };
        self.by_canonical.get(&id).cloned().unwrap_or_default()
    }

    /// Node lookup by rendered identity.
    pub fn find(&self, module: &str, sub: Option<&str>, name: &str) -> Option<u32> {
        let module = self.syms.module_id(module)?;
        let canonical = self.syms.var_id(name)?;
        let sub = match sub {
            Some(s) => Some(self.syms.var_id(s)?),
            None => None,
        };
        self.index
            .get(&Triple {
                module,
                sub,
                canonical,
            })
            .copied()
    }

    /// Backward closure over dependence edges from `seeds` (inclusive).
    pub fn backward_closure(&self, seeds: &[u32]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &s in seeds {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        while let Some(n) = stack.pop() {
            for &p in &self.preds[n as usize] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Nodes from which some history output is reachable (the static
    /// observability universe): the backward closure from every `outfld`
    /// internal variable's nodes.
    pub fn output_observable(&self) -> Vec<bool> {
        let mut seeds = Vec::new();
        for &v in &self.io_internal {
            if let Some(ns) = self.by_canonical.get(&v) {
                seeds.extend_from_slice(ns);
            }
        }
        self.backward_closure(&seeds)
    }

    /// Classifies one mutation site (strings, as `PatchSite` reports
    /// them) against output reachability. Mirrors the campaign's
    /// metagraph lookup: subprogram-scoped node first, module-scope
    /// fallback.
    pub fn classify_site(
        &self,
        observable: &[bool],
        module: &str,
        subprogram: &str,
        target: &str,
    ) -> SiteClass {
        let node = self
            .find(module, Some(subprogram), target)
            .or_else(|| self.find(module, None, target));
        match node {
            Some(n) if observable[n as usize] => SiteClass::Observable,
            Some(_) => SiteClass::Dead,
            None => SiteClass::Unmapped,
        }
    }

    /// Renders a node to `(module, subprogram, canonical)` strings.
    pub fn render(&self, node: u32) -> (String, Option<String>, String) {
        let t = &self.nodes[node as usize];
        (
            self.syms.module(t.module).to_string(),
            t.sub.map(|s| self.syms.var(s).to_string()),
            self.syms.var(t.canonical).to_string(),
        )
    }

    /// The independent backward slice: union of closures from every
    /// criterion's nodes, optionally restricted to one module, rendered
    /// and sorted. Mirrors `rca_core::backward_slice` node-for-node.
    pub fn static_slice(
        &self,
        criteria: &[&str],
        restrict: Option<&str>,
    ) -> Vec<(String, Option<String>, String)> {
        let mut seeds = Vec::new();
        for c in criteria {
            seeds.extend(self.nodes_with_canonical(c));
        }
        seeds.sort_unstable();
        seeds.dedup();
        let seen = self.backward_closure(&seeds);
        let keep_mod = restrict.and_then(|m| self.syms.module_id(m));
        let mut out: Vec<(String, Option<String>, String)> = Vec::new();
        for (i, t) in self.nodes.iter().enumerate() {
            if !seen[i] {
                continue;
            }
            if restrict.is_some() && keep_mod != Some(t.module) {
                continue;
            }
            out.push(self.render(i as u32));
        }
        out.sort();
        out
    }

    /// Rendered node set (differential-test surface).
    pub fn rendered_nodes(&self) -> Vec<(String, Option<String>, String)> {
        let mut out: Vec<_> = (0..self.nodes.len() as u32)
            .map(|i| self.render(i))
            .collect();
        out.sort();
        out
    }

    /// Rendered edge set as `(src, dst)` triples (differential-test
    /// surface).
    #[allow(clippy::type_complexity)]
    pub fn rendered_edges(
        &self,
    ) -> Vec<(
        (String, Option<String>, String),
        (String, Option<String>, String),
    )> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (dst, preds) in self.preds.iter().enumerate() {
            for &src in preds {
                out.push((self.render(src), self.render(dst as u32)));
            }
        }
        out.sort();
        out
    }
}
