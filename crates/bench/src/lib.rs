//! # rca-bench — harnesses regenerating every table and figure
//!
//! Each `harness = false` bench target prints the rows/series of one paper
//! table or figure next to the paper's own numbers (absolute values differ
//! — the substrate is a synthetic model — but the *shape* must hold).
//! Criterion benches (`perf_*`) measure the pipeline's computational
//! kernels.

use rca_core::{ExperimentSetup, RcaPipeline, RcaSession, RefineOptions, SliceScope};
use rca_model::{generate, Experiment, ModelConfig, ModelSource};
use serde::Json;

/// Scale used by the figure/table harnesses. Override with
/// `RCA_BENCH_SCALE=test|medium|paper`.
pub fn bench_config() -> ModelConfig {
    match std::env::var("RCA_BENCH_SCALE").as_deref() {
        Ok("test") => ModelConfig::test(),
        Ok("paper") => ModelConfig::paper(),
        _ => ModelConfig::medium(),
    }
}

/// Generates the model every harness starts from.
pub fn bench_model() -> ModelSource {
    generate(&bench_config())
}

/// Builds the model + pipeline pair for harnesses that work on the raw
/// metagraph (degree distributions, module ranking).
pub fn bench_pipeline() -> (ModelSource, RcaPipeline) {
    let model = bench_model();
    let pipeline = RcaPipeline::build(&model).expect("pipeline build");
    (model, pipeline)
}

/// Builds the standard harness session over `model` (paper-scale setup,
/// reachability oracle, CAM or unrestricted slice scope).
pub fn bench_session(model: &ModelSource, restrict_cam: bool) -> RcaSession<'_> {
    RcaSession::builder(model)
        .setup(ExperimentSetup::default())
        .refine_options(bench_refine_options())
        .scope(if restrict_cam {
            SliceScope::Cam
        } else {
            SliceScope::AllComponents
        })
        .build()
        .expect("session build")
}

/// Refinement options used by the figure harnesses.
pub fn bench_refine_options() -> RefineOptions {
    RefineOptions::default()
}

/// Writes one `BENCH_*.json` record: pretty-printed with a trailing
/// newline, and with the process-wide phase profile appended under
/// `phase_profile` so every bench records where its wall time and
/// allocations went alongside its headline numbers. Errors are reported,
/// not fatal — a read-only checkout must not kill the bench.
pub fn record_bench(path: &str, record: Json) {
    let mut fields = match record {
        Json::Obj(fields) => fields,
        other => vec![("record".to_string(), other)],
    };
    fields.push(("phase_profile".to_string(), rca_obs::phase_snapshot_json()));
    let text = serde_json::to_string_pretty(&Json::Obj(fields)).expect("json render is infallible");
    match std::fs::write(path, text + "\n") {
        Ok(()) => println!("recorded {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Prints a standard harness header.
pub fn header(id: &str, paper_claim: &str) {
    println!("=== {id} ===");
    println!("paper: {paper_claim}");
    println!();
}

/// Runs one paper experiment end-to-end (statistics → slice → Algorithm
/// 5.4 with the session's oracle) and prints the figure's trace.
pub fn experiment_figure(session: &RcaSession<'_>, experiment: Experiment) {
    let mut stats = session.statistics(experiment).expect("statistics");
    println!(
        "UF-ECT: {} (failure rate {:.0}%)",
        stats.data.verdict,
        stats.data.failure_rate * 100.0
    );
    let n = experiment.table2_outputs().len().clamp(5, 10);
    stats.affected = stats.data.affected_outputs(n);
    println!("selected outputs: {:?}", stats.affected);

    let sliced = stats.slice().expect("slice");
    println!("internal criteria: {:?}", sliced.criteria_names());
    println!(
        "induced subgraph: {} nodes, {} edges",
        sliced.slice.graph.node_count(),
        sliced.slice.graph.edge_count()
    );

    for &b in &session.bug_nodes(experiment) {
        println!("bug node: {}", session.metagraph().display(b));
    }
    let diagnosis = sliced.refine().into_diagnosis();
    println!();
    if let Some(report) = &diagnosis.refinement {
        print!(
            "{}",
            rca_core::refinement_trace(session.metagraph(), report)
        );
    }
    println!(
        "bug instrumented: {} | bug in final subgraph: {}",
        diagnosis.instrumented(),
        diagnosis.localized()
    );
}
