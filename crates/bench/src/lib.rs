//! # rca-bench — harnesses regenerating every table and figure
//!
//! Each `harness = false` bench target prints the rows/series of one paper
//! table or figure next to the paper's own numbers (absolute values differ
//! — the substrate is a synthetic model — but the *shape* must hold).
//! Criterion benches (`perf_*`) measure the pipeline's computational
//! kernels.

use rca_core::{RcaPipeline, RefineOptions};
use rca_model::{generate, ModelConfig, ModelSource};

/// Scale used by the figure/table harnesses. Override with
/// `RCA_BENCH_SCALE=test|medium|paper`.
pub fn bench_config() -> ModelConfig {
    match std::env::var("RCA_BENCH_SCALE").as_deref() {
        Ok("test") => ModelConfig::test(),
        Ok("paper") => ModelConfig::paper(),
        _ => ModelConfig::medium(),
    }
}

/// Builds the model + pipeline pair every harness starts from.
pub fn bench_pipeline() -> (ModelSource, RcaPipeline) {
    let model = generate(&bench_config());
    let pipeline = RcaPipeline::build(&model).expect("pipeline build");
    (model, pipeline)
}

/// Refinement options used by the figure harnesses.
pub fn bench_refine_options() -> RefineOptions {
    RefineOptions::default()
}

/// Prints a standard harness header.
pub fn header(id: &str, paper_claim: &str) {
    println!("=== {id} ===");
    println!("paper: {paper_claim}");
    println!();
}

use rca_core::{
    affected_outputs, induce_slice, refine, refinement_trace, run_statistics, ExperimentSetup,
    ReachabilityOracle,
};
use rca_model::Experiment;

/// Runs one paper experiment end-to-end (statistics → slice → Algorithm
/// 5.4 with the reachability oracle) and prints the figure's trace.
pub fn experiment_figure(model: &ModelSource, pipeline: &RcaPipeline, experiment: Experiment, restrict_cam: bool) {
    let setup = ExperimentSetup::default();
    let data = run_statistics(model, experiment, &setup).expect("statistics");
    println!(
        "UF-ECT: {} (failure rate {:.0}%)",
        data.verdict,
        data.failure_rate * 100.0
    );
    let n = experiment.table2_outputs().len().clamp(5, 10);
    let outputs = affected_outputs(&data, n);
    println!("selected outputs: {outputs:?}");
    let internal = pipeline.outputs_to_internal(&outputs);
    println!("internal criteria: {internal:?}");

    let slice = induce_slice(&pipeline.metagraph, &internal, |m| {
        !restrict_cam || pipeline.is_cam(m)
    });
    println!(
        "induced subgraph: {} nodes, {} edges",
        slice.graph.node_count(),
        slice.graph.edge_count()
    );

    let oracle = ReachabilityOracle::from_sites(&pipeline.metagraph, &experiment.bug_sites());
    let bugs = oracle.bug_nodes.clone();
    for &b in &bugs {
        println!("bug node: {}", pipeline.metagraph.display(b));
    }
    let mut o = oracle;
    let report = refine(
        &pipeline.metagraph,
        &slice,
        &mut o,
        &bugs,
        &bench_refine_options(),
    );
    println!();
    print!("{}", refinement_trace(&pipeline.metagraph, &report));
    println!(
        "bug instrumented: {} | bug in final subgraph: {}",
        report.instrumented(&bugs),
        report.localized(&bugs)
    );
}
