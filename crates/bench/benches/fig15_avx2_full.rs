//! Figure 15 — AVX2 with the CAM restriction lifted.
//!
//! Paper: the same affected-variable list as Fig. 8 but allowing non-CAM
//! nodes (e.g. the land model) produces a larger graph (7796 nodes /
//! 16532 edges at CESM scale) that "manifests the community structure of
//! the CAM core" and reaches the same conclusions after one extra
//! iteration.

use rca_bench::{bench_model, bench_session, experiment_figure, header};
use rca_model::Experiment;

fn main() {
    header(
        "Figure 15: AVX2 without the CAM restriction",
        "larger slice including land nodes, same conclusions",
    );
    let model = bench_model();
    let session = bench_session(&model, false);
    experiment_figure(&session, Experiment::Avx2);
}
