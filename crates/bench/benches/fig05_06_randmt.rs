//! Figures 5 & 6 — RAND-MT iterations.
//!
//! Paper: lasso selects 5 outputs; the induced subgraph (4509 nodes /
//! 9498 edges at CESM scale) splits into two main communities; sampling
//! the PRNG community's central nodes detects **nothing** on iteration 1
//! (no paths from the PRNG taint to the upstream cluster), step 8a then
//! dramatically shrinks the graph, and iteration 2 detects the sources.

use rca_bench::{bench_model, bench_session, experiment_figure, header};
use rca_model::Experiment;

fn main() {
    header(
        "Figure 5/6: RAND-MT iterative refinement",
        "no detection on iteration 1; step 8a reduction; detection afterwards",
    );
    let model = bench_model();
    let session = bench_session(&model, true);
    experiment_figure(&session, Experiment::RandMt);
}
