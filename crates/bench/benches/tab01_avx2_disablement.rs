//! Table 1 — Selective AVX2 disablement vs. UF-ECT failure rate.
//!
//! Paper values: all modules enabled 92%; 50 largest disabled 86%;
//! 50 random disabled 83% (10-sample average); 50 central disabled 8%;
//! all disabled 2%. Shape target: enabled ≳ largest ≈ random ≫ central ≳
//! disabled.

use rca_bench::{bench_pipeline, header};
use rca_core::{avx2_policy, DisablementPolicy, ModuleRanking};
use rca_sim::{outputs_matrix, perturbations, run_ensemble, RunConfig};
use rca_stats::{Ect, EctConfig, Matrix};

fn main() {
    header(
        "Table 1: Selective AVX2 disablement",
        "all-on 92% | largest-50 off 86% | random-50 off 83% | central-50 off 8% | all-off 2%",
    );
    let (model, pipeline) = bench_pipeline();
    let ranking = ModuleRanking::build(&pipeline.metagraph);
    let loc = model.loc_per_module();
    // Scale k like the paper: 50 of 561 modules ≈ 9%; at least enough to
    // cover the core.
    let k = (model.files.len() / 8).max(15);
    let steps = 9u32;

    let ctl = RunConfig {
        steps,
        ..Default::default()
    };
    let ens = run_ensemble(&model, &ctl, &perturbations(48, 1e-14, 0xC1)).expect("ensemble");
    let (_, rows) = outputs_matrix(&ens, steps - 1);
    // Calibration: the FMA signal lives in the mid PCs (10-15); a 3-sigma
    // bound keeps the false-positive (all-off) rate at the paper's ~2%
    // level across unseen initial-condition seeds.
    let ect = Ect::fit(
        &Matrix::from_row_slices(&rows),
        EctConfig {
            n_pcs: 15,
            sigma_factor: 3.0,
            ..Default::default()
        },
    );

    let policies: Vec<(String, DisablementPolicy)> = vec![
        (
            "AVX2 enabled, all modules".into(),
            DisablementPolicy::AllEnabled,
        ),
        (
            format!("AVX2 disabled, {k} largest modules"),
            DisablementPolicy::DisableLargest(k),
        ),
        (
            format!("AVX2 disabled, {k} rand mods (4 sample avg)"),
            DisablementPolicy::DisableRandom(k, 1),
        ),
        (
            format!("AVX2 disabled, {k} central modules"),
            DisablementPolicy::DisableCentral(k),
        ),
        (
            "AVX2 disabled, all modules".into(),
            DisablementPolicy::AllDisabled,
        ),
    ];

    println!("{:<44} {:>14}", "Experiment", "ECT failure rate");
    println!("{}", "-".repeat(60));
    for (label, policy) in policies {
        let rate = match policy {
            DisablementPolicy::DisableRandom(k, _) => {
                // The paper averages 10 random samples; we average 4.
                let mut total = 0.0;
                for seed in 1..=4u64 {
                    total += failure_rate(
                        &model,
                        &ect,
                        &ctl,
                        avx2_policy(DisablementPolicy::DisableRandom(k, seed), &ranking, &loc),
                        steps,
                        seed,
                    );
                }
                total / 4.0
            }
            p => failure_rate(&model, &ect, &ctl, avx2_policy(p, &ranking, &loc), steps, 7),
        };
        println!("{:<44} {:>13.0}%", label, rate * 100.0);
    }
}

fn failure_rate(
    model: &rca_model::ModelSource,
    ect: &Ect,
    ctl: &RunConfig,
    avx2: rca_sim::Avx2Policy,
    steps: u32,
    seed: u64,
) -> f64 {
    let mut cfg = ctl.clone();
    cfg.avx2 = avx2;
    cfg.fma_scale = 1.0; // bit-true FMA
    let runs = run_ensemble(model, &cfg, &perturbations(12, 1e-14, 0xE0 ^ seed)).expect("runs");
    let (_, rows) = outputs_matrix(&runs, steps - 1);
    ect.failure_rate(&Matrix::from_row_slices(&rows), 3)
}
