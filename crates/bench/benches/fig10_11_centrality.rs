//! Figures 10 & 11 — GOFFGRATCH subgraph degree distribution and
//! Hashimoto vs. eigenvector centrality.
//!
//! Paper: the GOFFGRATCH induced subgraph is "approximately scale-free"
//! (Fig. 10); the log-rank curves of Hashimoto non-backtracking and
//! eigenvector centrality track each other closely, with the Hashimoto
//! curve redistributing weight subtly after ~the 300th rank and dropping
//! sharply at the end (nodes excluded by the line graph) (Fig. 11).

use rca_bench::{bench_model, bench_session, header};
use rca_graph::{
    degree_distribution, eigenvector_centrality, fit_power_law, log_rank_series,
    nonbacktracking_centrality, DegreeKind, Direction, PowerIterOptions,
};
use rca_model::Experiment;

fn main() {
    header(
        "Figure 10/11: GOFFGRATCH subgraph degree distribution + centrality comparison",
        "subgraph ~scale-free; Hashimoto ≈ eigenvector until deep ranks, sharp tail drop",
    );
    let model = bench_model();
    let session = bench_session(&model, true);
    let sliced = session
        .statistics(Experiment::GoffGratch)
        .expect("statistics")
        .slice()
        .expect("slice");
    let slice = &sliced.slice;
    println!(
        "GOFFGRATCH subgraph: {} nodes, {} edges (paper: 4243 / 9150 at CESM scale)",
        slice.graph.node_count(),
        slice.graph.edge_count()
    );

    // Figure 10: degree distribution.
    println!("\nFigure 10 series (degree, count):");
    let dist = degree_distribution(&slice.graph, DegreeKind::Total);
    for p in dist.iter().take(25) {
        println!("  {:>5} {:>6}", p.degree, p.count);
    }
    if let Some(fit) = fit_power_law(&slice.graph, DegreeKind::Total, 2) {
        println!("  power-law alpha = {:.3} ± {:.3}", fit.alpha, fit.sigma);
    }

    // Figure 11: log-rank curves.
    let opts = PowerIterOptions::default();
    let ev = eigenvector_centrality(&slice.graph, Direction::In, opts);
    let nb = nonbacktracking_centrality(&slice.graph, Direction::In, opts);
    let ev_series = log_rank_series(&ev);
    let nb_series = log_rank_series(&nb);
    println!(
        "\nFigure 11: ranked-node counts — eigenvector {}, Hashimoto {} (sharp drop: {} nodes excluded)",
        ev_series.len(),
        nb_series.len(),
        ev_series.len().saturating_sub(nb_series.len())
    );
    println!("{:>6} {:>14} {:>14}", "rank", "eigenvector", "hashimoto");
    let n = ev_series.len().max(1);
    for pct in [0usize, 5, 10, 25, 50, 75, 90, 99] {
        let idx = (pct * n / 100).min(n - 1);
        let e = ev_series.get(idx).map_or(0.0, |&(_, v)| v);
        let h = nb_series.get(idx).map_or(0.0, |&(_, v)| v);
        println!("{:>6} {:>14.4e} {:>14.4e}", idx + 1, e, h);
    }

    // Rank agreement in the head (the paper's "no advantage" finding).
    let top = |v: &[f64], k: usize| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
        idx.truncate(k);
        idx
    };
    let k = 20.min(ev.len());
    let ev_top = top(&ev, k);
    let nb_top = top(&nb, k);
    let agree = ev_top.iter().filter(|i| nb_top.contains(i)).count();
    println!("\ntop-{k} rank agreement between the centralities: {agree}/{k}");
}
