//! Campaign throughput: batch-runner diagnoses/sec, sequential vs
//! parallel, recorded into `BENCH_campaign.json`.
//!
//! The batch runner shares one session (metagraph + control ensemble)
//! across all scenarios and fans them out with the rayon compat layer;
//! this harness measures the end-to-end rate both ways and reports the
//! multi-thread speedup. `RCA_BENCH_SCALE=test|medium|paper` sizes the
//! model; `RCA_CAMPAIGN_N` overrides the scenario count.

use rca_bench::{bench_config, header};
use rca_campaign::{run_campaign, CampaignOptions, RunnerOptions};
use rca_core::ExperimentSetup;
use serde::{Json, Serialize as _};

fn main() {
    header(
        "campaign_throughput",
        "batch fan-out must beat sequential diagnosis on multi-core hosts",
    );
    let scale = std::env::var("RCA_BENCH_SCALE").unwrap_or_else(|_| "medium".to_string());
    let scenarios: usize = std::env::var("RCA_CAMPAIGN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if scale == "test" { 12 } else { 16 });
    let model = rca_model::generate(&bench_config());
    let opts = CampaignOptions {
        scenarios,
        seed: 51966,
        ..Default::default()
    };
    let runner = RunnerOptions {
        setup: ExperimentSetup::quick(),
        ..Default::default()
    };

    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let sequential = run_campaign(&model, &opts, &runner).expect("sequential campaign");
    match &saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let parallel = run_campaign(&model, &opts, &runner).expect("parallel campaign");

    // Order determinism: thread count must not change the results.
    let a = serde_json::to_string(&sequential).unwrap();
    let b = serde_json::to_string(&parallel).unwrap();
    assert_eq!(a, b, "scorecard must be identical at any thread count");

    // Chaos axis cost: the same campaign with seeded runtime faults
    // (member retries, quarantine, quorum fitting) relative to the
    // zero-fault run. The zero-fault path itself is guarded elsewhere
    // (empty plans skip the fault machinery entirely and fixed-seed
    // scorecards are byte-diffed in CI); this records what degradation
    // handling costs when faults actually strike.
    let chaos_opts = CampaignOptions {
        runtime_faults: 0xFA17,
        ..opts.clone()
    };
    let chaos = run_campaign(&model, &chaos_opts, &runner).expect("chaos campaign");
    let fault_overhead = chaos.wall_seconds / parallel.wall_seconds.max(1e-9);

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let speedup = parallel.throughput() / sequential.throughput().max(1e-9);
    println!(
        "scenarios: {scenarios} (scale {scale}), localization {:.0}%",
        sequential.summary().localization_rate * 100.0
    );
    println!(
        "sequential: {:.2} s ({:.2} diagnoses/sec)",
        sequential.wall_seconds,
        sequential.throughput()
    );
    println!(
        "parallel ({threads} cores): {:.2} s ({:.2} diagnoses/sec)",
        parallel.wall_seconds,
        parallel.throughput()
    );
    println!("speedup: {speedup:.2}x");
    println!(
        "chaos: {:.2} s (x{fault_overhead:.2} vs zero-fault, {} degraded, {} errors)",
        chaos.wall_seconds,
        chaos.summary().degraded,
        chaos.summary().errors
    );

    let record = Json::obj([
        ("bench", "campaign_throughput".to_json()),
        ("scale", scale.to_json()),
        ("scenarios", scenarios.to_json()),
        ("threads", threads.to_json()),
        (
            "sequential",
            Json::obj([
                ("wall_seconds", sequential.wall_seconds.to_json()),
                ("diagnoses_per_sec", sequential.throughput().to_json()),
            ]),
        ),
        (
            "parallel",
            Json::obj([
                ("wall_seconds", parallel.wall_seconds.to_json()),
                ("diagnoses_per_sec", parallel.throughput().to_json()),
            ]),
        ),
        ("speedup", speedup.to_json()),
        (
            "fault_overhead",
            Json::obj([
                ("wall_seconds", chaos.wall_seconds.to_json()),
                ("ratio_vs_zero_fault", fault_overhead.to_json()),
                ("degraded", chaos.summary().degraded.to_json()),
                ("errors", chaos.summary().errors.to_json()),
            ]),
        ),
        (
            "localization_rate",
            sequential.summary().localization_rate.to_json(),
        ),
    ]);
    rca_bench::record_bench("BENCH_campaign.json", record);
}
