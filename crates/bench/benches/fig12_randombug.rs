//! Figure 12 — RANDOMBUG (supplementary §8.2.1).
//!
//! Paper: array-index error in the assignment writing state%omega;
//! slicing on canonical name "omega" yields a sparse subgraph (628 nodes /
//! 295 edges at CESM scale) with small communities, one of whose most
//! central nodes is the bug itself.

use rca_bench::{bench_model, bench_session, experiment_figure, header};
use rca_model::Experiment;

fn main() {
    header(
        "Figure 12: RANDOMBUG refinement",
        "sparse omega slice; bug is central in a small community",
    );
    let model = bench_model();
    let session = bench_session(&model, true);
    experiment_figure(&session, Experiment::RandomBug);
}
