//! Table 2 — output variables selected per experiment and their internal
//! counterparts.
//!
//! Paper rows: WSUBBUG→wsub; RANDOMBUG→omega; GOFFGRATCH→aqsnow, freqs,
//! cldhgh, precsl, ansnow, cldmed, cloud, cldlow, ccn3, cldtot; DYN3BUG→
//! vv, omega, z3, uu, omegat; RAND-MT→flds, taux, snowhlnd, flns, qrl;
//! AVX2→taux, trefht, snowhlnd, ps, u10, shflx.

use rca_bench::{bench_model, bench_session, header};
use rca_model::Experiment;

fn main() {
    header(
        "Table 2: CAM output variables selected per experiment",
        "selection should overlap the paper's per-experiment output sets",
    );
    let model = bench_model();
    let session = bench_session(&model, true);

    println!(
        "{:<11} {:<7} {:<34} {:<30}",
        "Experiment", "verdict", "selected outputs (ours)", "internal variables"
    );
    println!("{}", "-".repeat(110));
    for experiment in [
        Experiment::WsubBug,
        Experiment::RandomBug,
        Experiment::GoffGratch,
        Experiment::Dyn3Bug,
        Experiment::RandMt,
        Experiment::Avx2,
    ] {
        let stats = session.statistics(experiment).expect("statistics");
        let n = experiment.table2_outputs().len().clamp(1, 10);
        let selected = stats.data.affected_outputs(n);
        let internal = session.pipeline().outputs_to_internal(&selected);
        let paper = experiment.table2_outputs();
        let overlap = selected
            .iter()
            .filter(|s| paper.contains(&s.as_str()))
            .count();
        println!(
            "{:<11} {:<7} {:<34} {:<30}",
            experiment.name(),
            stats.data.verdict.to_string(),
            selected.join(","),
            internal.join(",")
        );
        println!(
            "{:<11} {:<7} paper: {} (overlap {}/{})",
            "",
            "",
            paper.join(","),
            overlap,
            paper.len()
        );
    }
}
