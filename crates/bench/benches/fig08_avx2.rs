//! Figure 8 — AVX2: KGen-flagged variables vs. eigenvector in-centrality.
//!
//! Paper: KGen flags 42 MG-kernel variables with normalized RMS > 1e-12
//! between AVX2 on/off; the induced subgraph's physics community ranks
//! `dum__micro_mg_tend` most central, and four of the five flagged
//! variables present in the subgraph (nctend, qvlat, tlat, nitend) land in
//! the top 15 by in-centrality. This harness prints the centrality listing
//! in the paper's REPL format with flags marked.

use rca_bench::{bench_model, bench_session, header};
use rca_graph::{communities, eigenvector_centrality, Direction, PowerIterOptions};
use rca_model::Experiment;
use rca_sim::{compare_kernel, Avx2Policy, RunConfig};

fn main() {
    header(
        "Figure 8: AVX2 — flagged MG variables in the top in-centrality ranks",
        "dum most central; nctend/qvlat/tlat/nitend in top 15; 42 variables flagged by KGen",
    );
    let model = bench_model();
    let session = bench_session(&model, true);
    let metagraph = session.metagraph();

    // KGen-style kernel comparison.
    let base = RunConfig {
        steps: 9,
        ..Default::default()
    };
    let fma = RunConfig {
        steps: 9,
        avx2: Avx2Policy::AllModules,
        ..Default::default()
    };
    // The paper flags at 1e-12 after ~10^4 kernel operations per variable;
    // our damped kernel holds deltas at 1-3 ulp, so the proportional
    // threshold is 1e-16 (see EXPERIMENTS.md).
    let cmp = compare_kernel(&model, &base, &fma, "micro_mg", 1e-16).expect("kernel");
    println!(
        "KGen comparison: {} of {} micro_mg variables flagged (> 1e-16 nRMS; paper: 42 at 1e-12)",
        cmp.flagged.len(),
        cmp.all.len()
    );
    let flagged_names: Vec<String> = cmp
        .flagged
        .iter()
        .map(|(k, _)| k.rsplit("::").next().unwrap_or(k).to_string())
        .collect();

    // Statistics + slice for the AVX2 experiment, via the typed stages.
    let mut stats = session.statistics(Experiment::Avx2).expect("statistics");
    println!(
        "UF-ECT: {} (failure rate {:.0}%)",
        stats.data.verdict,
        stats.data.failure_rate * 100.0
    );
    stats.affected = stats.data.affected_outputs(6);
    let sliced = stats.slice().expect("slice");
    let slice = &sliced.slice;
    println!(
        "induced subgraph: {} nodes, {} edges",
        slice.graph.node_count(),
        slice.graph.edge_count()
    );

    // Community containing micro_mg nodes; in-centrality listing.
    let comms = communities(&slice.graph, 1, 3);
    let mg_comm = comms
        .iter()
        .max_by_key(|c| {
            c.iter()
                .filter(|&&n| metagraph.module_name_of(slice.to_meta(n)) == "micro_mg")
                .count()
        })
        .expect("communities exist");
    let (cg, cmap) = slice.graph.induced_subgraph(mg_comm);
    let cent = eigenvector_centrality(&cg, Direction::In, PowerIterOptions::default());
    let mut ranked: Vec<(usize, f64)> = cent.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    // The paper's REPL listing is kernel-scoped (every entry carries the
    // __micro_mg_tend suffix): rank the community's micro_mg nodes.
    println!("\n>>> avx2_bluecommunity_incentrality[:16]   (* = KGen-flagged)");
    let mut hits_top15 = 0;
    let mut shown = 0;
    for (local, c) in &ranked {
        let meta = slice.to_meta(cmap[*local]);
        if metagraph.module_name_of(meta) != "micro_mg" {
            continue;
        }
        let name = metagraph.display(meta);
        let canonical = metagraph.canonical_of(meta);
        let flagged = flagged_names.iter().any(|f| f == canonical);
        if flagged && shown < 15 {
            hits_top15 += 1;
        }
        println!("({name}, {c:.6}){}", if flagged { "  *" } else { "" });
        shown += 1;
        if shown >= 16 {
            break;
        }
    }
    println!("\nKGen-flagged variables inside the kernel top 15: {hits_top15} (paper: 4 of 5)");
}
