//! Criterion performance benchmarks of the pipeline's computational
//! kernels: parsing, metagraph compilation, BFS slicing, Girvan-Newman,
//! eigenvector centrality and Brandes betweenness.

use criterion::{criterion_group, criterion_main, Criterion};
use rca_core::{backward_slice, RcaPipeline};
use rca_graph::{
    edge_betweenness, eigenvector_centrality, girvan_newman, nonbacktracking_centrality,
    preferential_attachment, shortest_path_slice, Direction, NodeId, PowerIterOptions,
};
use rca_model::{generate, ModelConfig};

fn bench_graph_kernels(c: &mut Criterion) {
    let g = preferential_attachment(5_000, 3, 42);
    let targets: Vec<NodeId> = (0..10).map(NodeId).collect();
    c.bench_function("bfs_slice_5k_nodes", |b| {
        b.iter(|| shortest_path_slice(&g, &targets));
    });
    c.bench_function("eigenvector_in_centrality_5k", |b| {
        b.iter(|| eigenvector_centrality(&g, Direction::In, PowerIterOptions::default()));
    });
    c.bench_function("nonbacktracking_centrality_5k", |b| {
        b.iter(|| nonbacktracking_centrality(&g, Direction::In, PowerIterOptions::default()));
    });
    let small = preferential_attachment(400, 3, 7);
    c.bench_function("edge_betweenness_400", |b| {
        b.iter(|| edge_betweenness(&small));
    });
    c.bench_function("girvan_newman_400", |b| b.iter(|| girvan_newman(&small, 1)));
}

fn bench_pipeline(c: &mut Criterion) {
    let model = generate(&ModelConfig::test());
    c.bench_function("parse_model", |b| b.iter(|| model.parse()));
    c.bench_function("pipeline_build", |b| {
        b.iter(|| RcaPipeline::build(&model).unwrap());
    });
    let pipeline = RcaPipeline::build(&model).unwrap();
    // Criteria resolve to ids once; the benched loop is the pure id-keyed
    // slicing engine.
    let syms = pipeline.metagraph.symbols().clone();
    let criteria: Vec<_> = ["flwds", "qrl"]
        .iter()
        .filter_map(|n| syms.var_id(n))
        .collect();
    c.bench_function("induce_slice", |b| {
        b.iter(|| backward_slice(&pipeline.metagraph, &criteria, |_| true));
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_kernels, bench_pipeline
);
criterion_main!(kernels);
