//! Figure 7 — GOFFGRATCH first iteration.
//!
//! Paper: lasso selects 10 outputs; induced subgraph 4243 nodes / 9150
//! edges at CESM scale; the largest (physics) community contains the bug
//! and sampling its top-10 central nodes detects a difference on the
//! FIRST iteration; the second iteration stalls ("the induced subgraph
//! equals the community subgraph").

use rca_bench::{bench_model, bench_session, experiment_figure, header};
use rca_model::Experiment;

fn main() {
    header(
        "Figure 7: GOFFGRATCH refinement",
        "bug community sampled and detected on iteration 1",
    );
    let model = bench_model();
    let session = bench_session(&model, true);
    experiment_figure(&session, Experiment::GoffGratch);
}
