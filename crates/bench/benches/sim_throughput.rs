//! Simulation throughput: compiled-engine steps/sec, single-run and
//! ensemble, with the tree-walking interpreter as the reference point —
//! recorded into `BENCH_sim.json` so the perf trajectory of the
//! parse → compile → execute pipeline is tracked next to
//! `BENCH_campaign.json`.
//!
//! `RCA_BENCH_SCALE=test|medium|paper` sizes the model;
//! `RCA_SIM_REPEAT` overrides the timed repetition count.

use rayon::prelude::*;
use rca_bench::{bench_config, header};
use rca_core::{PipelineOptions, RcaPipeline};
use rca_metagraph::NodeKind;
use rca_model::{Component, ModelFile, ModelSource};
use rca_sim::{
    compile_model, perturbations, run_ensemble_program, run_loaded, run_program, specialize_with,
    EnsembleRuns, ExecEngine, Interpreter, RunConfig, SampleSpec, SpecIndex,
};
use serde::{Json, Serialize as _};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation so the ensemble-memory entry can report
/// allocations/member — the store's zero-steady-state claim, measured.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f`, returning its result plus (wall seconds, heap allocations).
fn counted<R>(f: impl FnOnce() -> R) -> (R, f64, u64) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let r = f();
    let wall = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    (r, wall, allocs)
}

fn main() {
    // The counting allocator doubles as the phase-profiler's alloc probe,
    // so `phase_profile` entries in BENCH_sim.json report allocations too.
    rca_obs::set_alloc_probe(|| ALLOCS.load(Ordering::Relaxed));
    header(
        "sim_throughput",
        "the compiled engine must dominate per-run cost; ensembles compile once",
    );
    let scale = std::env::var("RCA_BENCH_SCALE").unwrap_or_else(|_| "medium".to_string());
    let repeat: usize = std::env::var("RCA_SIM_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if scale == "test" { 8 } else { 5 });
    let model = rca_model::generate(&bench_config());
    let cfg = RunConfig {
        steps: 9,
        ..Default::default()
    };

    // Compile once (timed separately: this is the cost a campaign pays
    // once per mutated variant).
    let t0 = Instant::now();
    let program = compile_model(&model).expect("compile");
    let compile_s = t0.elapsed().as_secs_f64();

    // Compiled single runs — bytecode VM (the default engine).
    let t0 = Instant::now();
    for i in 0..repeat {
        run_program(&program, &cfg, i as f64 * 1e-14).expect("compiled run");
    }
    let compiled_s = t0.elapsed().as_secs_f64() / repeat as f64;

    // Slot-indexed tree executor on the same program: the engine tier
    // the VM replaces as default. Same compile, same pooled frames —
    // the delta is pure dispatch (flat instruction array vs host-stack
    // recursion over the statement tree).
    let tree_engine_cfg = RunConfig {
        engine: ExecEngine::Tree,
        ..cfg.clone()
    };
    let t0 = Instant::now();
    for i in 0..repeat {
        run_program(&program, &tree_engine_cfg, i as f64 * 1e-14).expect("tree-engine run");
    }
    let tree_engine_s = t0.elapsed().as_secs_f64() / repeat as f64;

    // Tree-walking reference: parse + load + run per run, exactly the
    // per-run cost `run_model` paid before the compile step existed.
    let t0 = Instant::now();
    for i in 0..repeat {
        let (asts, errs) = model.parse();
        assert!(errs.is_empty(), "{errs:?}");
        let mut interp = Interpreter::load(&asts, cfg.clone()).expect("load");
        run_loaded(&mut interp, &cfg, i as f64 * 1e-14).expect("tree-walk run");
    }
    let tree_s = t0.elapsed().as_secs_f64() / repeat as f64;

    // Ensemble over the shared program (legacy-compatible materializing
    // path, still store-backed underneath).
    let n_members = 16usize;
    let perts = perturbations(n_members, 1e-14, 0xC1);
    let t0 = Instant::now();
    let ens = run_ensemble_program(&program, &cfg, &perts).expect("ensemble");
    let ens_s = t0.elapsed().as_secs_f64();
    assert_eq!(ens.len(), n_members);

    // ----- ensemble memory + throughput: store vs clone-per-run ---------
    //
    // The clone-per-run baseline is what every ensemble member paid
    // before the columnar store: a fresh executor (global arena cloned
    // from the program) and an owned, materialized `RunOutput` per
    // member. The store path fills one contiguous block through pooled,
    // reset executors and materializes nothing. Warm both paths once,
    // then record members/sec and allocations/member.
    let store_members = if scale == "test" { 24 } else { 48 };
    let store_perts = perturbations(store_members, 1e-14, 0xC1);
    let baseline_run = || -> Vec<rca_sim::RunOutput> {
        // Parallel like the store path — the comparison isolates the data
        // plane (arena clones + materialization vs pooled in-place fill),
        // not the thread fan-out.
        store_perts
            .par_iter()
            .map(|&p| run_program(&program, &cfg, p).expect("baseline member"))
            .collect()
    };
    let store_run = || EnsembleRuns::run(&program, &cfg, &store_perts).expect("store ensemble");
    let _ = baseline_run();
    let _ = store_run();
    // Min-of-k wall time: the least-noise estimator on shared hardware
    // (each path's allocation count is deterministic, so one read
    // suffices).
    let reps = 3;
    let (mut baseline_runs, mut base_s, mut base_allocs) = counted(baseline_run);
    let (mut store, mut store_s, mut store_allocs) = counted(store_run);
    for _ in 1..reps {
        let (b, s, a) = counted(baseline_run);
        if s < base_s {
            (baseline_runs, base_s, base_allocs) = (b, s, a);
        }
        let (st, s, a) = counted(store_run);
        if s < store_s {
            (store, store_s, store_allocs) = (st, s, a);
        }
    }
    assert_eq!(baseline_runs.len(), store.members());
    // Same bits either way (spot check the last member's eval plane).
    let last = store.members() - 1;
    for (i, series) in baseline_runs[last].history.iter().enumerate() {
        if let Some(&x) = series.last() {
            let y = store
                .value(last, i, series.len() - 1)
                .expect("written in store");
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "store/baseline diverge at output {i}"
            );
        }
    }
    let base_mps = store_members as f64 / base_s;
    let store_mps = store_members as f64 / store_s;
    let base_apm = base_allocs as f64 / store_members as f64;
    let store_apm = store_allocs as f64 / store_members as f64;
    println!(
        "ensemble store ({store_members} members): clone-per-run {base_mps:.1} members/sec \
         ({base_apm:.0} allocs/member), columnar store {store_mps:.1} members/sec \
         ({store_apm:.0} allocs/member), {:.2}x members/sec",
        store_mps / base_mps
    );

    let steps_per_run = cfg.steps as f64;
    let compiled_sps = steps_per_run / compiled_s;
    let tree_engine_sps = steps_per_run / tree_engine_s;
    let tree_sps = steps_per_run / tree_s;
    let ens_sps = steps_per_run * n_members as f64 / ens_s;
    let speedup = tree_s / compiled_s;
    let vm_over_tree = tree_engine_s / compiled_s;

    println!("model scale: {scale} ({} files)", model.files.len());
    println!(
        "compile: {:.1} ms (once per source variant)",
        compile_s * 1e3
    );
    println!(
        "bytecode VM single run: {:.1} ms ({compiled_sps:.0} steps/sec)",
        compiled_s * 1e3
    );
    println!(
        "tree executor single run: {:.1} ms ({tree_engine_sps:.0} steps/sec)",
        tree_engine_s * 1e3
    );
    println!(
        "tree-walker single run: {:.1} ms ({tree_sps:.0} steps/sec)",
        tree_s * 1e3
    );
    println!("speedup (tree executor / VM): {vm_over_tree:.2}x");
    println!("speedup (tree-walker / VM): {speedup:.2}x");
    println!(
        "ensemble ({n_members} members, shared program): {ens_s:.2} s ({ens_sps:.0} steps/sec aggregate)"
    );
    // Perf floor, CI-enforced: the VM must never regress below the tree
    // executor it replaced as the default engine.
    assert!(
        compiled_sps >= tree_engine_sps,
        "vm_steps_per_sec ({compiled_sps:.0}) fell below tree_steps_per_sec ({tree_engine_sps:.0})"
    );

    // ----- step-kernel microbench: ns per element, VM vs tree -----------
    //
    // One elementwise loop over a 4096-wide column pair, isolated from
    // the rest of the model: the compiled column step-kernel against the
    // tree executor walking the same statements element-at-a-time. This
    // is the per-element price of the innermost tier.
    let kern_width = 4096usize;
    let kern_steps = 32u32;
    let kern_model = ModelSource {
        files: vec![ModelFile {
            name: "kernbench.F90".to_string(),
            component: Component::Cam,
            source: format!(
                r#"
module kernbench
  implicit none
  real :: a({kern_width})
  real :: b({kern_width})
contains
  subroutine cam_init(pert)
    real, intent(in) :: pert
    integer :: i
    do i = 1, {kern_width}
      a(i) = 0.001 * i + pert
      b(i) = 0.002 * i - 1.0
    end do
  end subroutine cam_init
  subroutine cam_run_step()
    integer :: i
    do i = 1, {kern_width}
      a(i) = a(i) + 0.25 * (tanh(b(i)) - a(i))
      b(i) = b(i) * 0.999 + 0.001 * a(i)
    end do
    call outfld('KBA', a, {kern_width})
  end subroutine cam_run_step
end module kernbench
"#
            ),
        }],
        config: bench_config(),
    };
    let kern_program = compile_model(&kern_model).expect("kernbench compile");
    assert_eq!(
        kern_program.kernel_count(),
        1,
        "microbench loop must kernelize"
    );
    let kern_cfg = RunConfig {
        steps: kern_steps,
        ..Default::default()
    };
    let kern_tree_cfg = RunConfig {
        engine: ExecEngine::Tree,
        ..kern_cfg.clone()
    };
    let elems = f64::from(kern_steps) * kern_width as f64 * 2.0;
    let time_engine = |cfg: &RunConfig| {
        run_program(&kern_program, cfg, 0.0).expect("warm");
        let reps = 5;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            run_program(&kern_program, cfg, 0.0).expect("kernbench run");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best * 1e9 / elems
    };
    let kern_vm_ns = time_engine(&kern_cfg);
    let kern_tree_ns = time_engine(&kern_tree_cfg);
    println!(
        "step kernel ({kern_width}-wide, 2 stmts): VM {kern_vm_ns:.1} ns/elem, \
         tree {kern_tree_ns:.1} ns/elem ({:.2}x)",
        kern_tree_ns / kern_vm_ns
    );
    println!(
        "bytecode: {} instrs, {} column kernels",
        program.instr_count(),
        program.kernel_count()
    );

    // ----- column-kernel microbench: ns per outputs-wide plane op -------
    //
    // The chunked keep-refine and gather kernels run once per member per
    // assembly; time them on a plane exactly as wide as this program's
    // output table.
    let outputs = program.output_count().max(1);
    let plane: Vec<f64> = (0..outputs)
        .map(|i| match i % 17 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => i as f64 * 0.5,
        })
        .collect();
    let written: Vec<u32> = (0..outputs as u32).map(|i| 3 + i % 7).collect();
    let kern_iters: u32 = if scale == "test" { 20_000 } else { 50_000 };
    let mut keep = vec![true; outputs];
    let t0 = Instant::now();
    for _ in 0..kern_iters {
        rca_stats::kernels::keep_refine(
            std::hint::black_box(&mut keep),
            &written,
            &plane,
            std::hint::black_box(4),
        );
    }
    let refine_ns = t0.elapsed().as_secs_f64() * 1e9 / f64::from(kern_iters);
    let ids = rca_stats::kernels::keep_to_ids(&keep);
    let mut gathered: Vec<f64> = Vec::with_capacity(ids.len());
    let t0 = Instant::now();
    for _ in 0..kern_iters {
        gathered.clear();
        rca_stats::kernels::gather_into(std::hint::black_box(&mut gathered), &plane, &ids);
    }
    let gather_ns = t0.elapsed().as_secs_f64() * 1e9 / f64::from(kern_iters);
    println!(
        "column kernels ({outputs}-wide plane): keep-refine {refine_ns:.0} ns/plane, \
         gather({}) {gather_ns:.0} ns/plane",
        ids.len()
    );

    // ----- oracle-differs microbench: string-keyed vs id-keyed ----------
    //
    // The refinement oracle's per-iteration data plane, isolated from the
    // (identical-cost) simulation runs: the pre-identity-plane design
    // built owned `String` specs, formatted `module::sub::name` keys, and
    // looked captures up in per-run keyed maps; the id-keyed design
    // clones interned `Arc<str>` refcounts and compares sample buffers
    // positionally. Both layers produce the same detect vector here.
    let pipeline = RcaPipeline::build_with_program(&model, &program, &PipelineOptions::default())
        .expect("pipeline");
    let mg = &pipeline.metagraph;
    let nodes: Vec<_> = mg
        .graph
        .nodes()
        .filter(|&n| mg.meta_of(n).kind == NodeKind::Variable)
        .take(200)
        .collect();
    let syms = mg.symbols();
    let specs: Vec<SampleSpec> = nodes
        .iter()
        .map(|&n| {
            let meta = mg.meta_of(n);
            SampleSpec {
                module: syms.module_arc(meta.module),
                subprogram: meta.subprogram.map(|s| syms.var_arc(s)),
                name: syms.var_arc(meta.canonical),
            }
        })
        .collect();
    let sample_cfg = RunConfig {
        steps: 3,
        sample_step: Some(2),
        samples: specs,
        ..Default::default()
    };
    let ctl_run = run_program(&program, &sample_cfg, 0.0).expect("control run");
    let exp_run = run_program(&program, &sample_cfg, 1e-12).expect("experimental run");
    let tolerance = 1e-12;
    let queries: usize = if scale == "test" { 100 } else { 400 };

    // Id-keyed: interned spec construction + positional buffer compare.
    let t0 = Instant::now();
    let mut detect_id = Vec::new();
    for _ in 0..queries {
        detect_id = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let meta = mg.meta_of(n);
                let _spec = (
                    syms.module_arc(meta.module),
                    meta.subprogram.map(|s| syms.var_arc(s)),
                    syms.var_arc(meta.canonical),
                );
                let (Some(a), Some(b)) = (ctl_run.samples[i].as_ref(), exp_run.samples[i].as_ref())
                else {
                    return false;
                };
                a.iter().zip(b).any(|(&x, &y)| {
                    let s = x.abs().max(y.abs()).max(1e-300);
                    ((x - y).abs() / s) > tolerance
                })
            })
            .collect();
    }
    let id_us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;

    // String-keyed baseline: owned-String specs, formatted keys, per-run
    // keyed maps rebuilt for both runs of every query (what each pair of
    // instrumented runs returned before the identity plane).
    let t0 = Instant::now();
    let mut detect_str = Vec::new();
    for _ in 0..queries {
        let keys: Vec<String> = nodes
            .iter()
            .map(|&n| {
                let meta = mg.meta_of(n);
                let module = syms.module(meta.module).to_string();
                let sub = meta
                    .subprogram
                    .map(|s| syms.var(s).to_string())
                    .unwrap_or_default();
                let name = syms.var(meta.canonical).to_string();
                format!("{module}::{sub}::{name}")
            })
            .collect();
        let ctl_map: HashMap<&str, &Vec<f64>> = keys
            .iter()
            .enumerate()
            .filter_map(|(i, k)| ctl_run.samples[i].as_ref().map(|v| (k.as_str(), v)))
            .collect();
        let exp_map: HashMap<&str, &Vec<f64>> = keys
            .iter()
            .enumerate()
            .filter_map(|(i, k)| exp_run.samples[i].as_ref().map(|v| (k.as_str(), v)))
            .collect();
        detect_str = keys
            .iter()
            .map(|k| {
                let (Some(a), Some(b)) = (ctl_map.get(k.as_str()), exp_map.get(k.as_str())) else {
                    return false;
                };
                a.iter().zip(b.iter()).any(|(&x, &y)| {
                    let s = x.abs().max(y.abs()).max(1e-300);
                    ((x - y).abs() / s) > tolerance
                })
            })
            .collect();
    }
    let str_us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;
    assert_eq!(detect_id, detect_str, "keying layers must agree");

    let differs_speedup = str_us / id_us;
    println!(
        "oracle differs data plane ({} nodes): string-keyed {str_us:.1} us/query, \
         id-keyed {id_us:.1} us/query ({differs_speedup:.2}x)",
        nodes.len()
    );

    // ----- oracle fastpath microbench: specialized vs full query --------
    //
    // The refinement hot loop's whole-query cost. A full `differs` query
    // is two complete model runs (control + experimental) with capture
    // instrumentation; the fast path runs the same pair on a program
    // specialized to the backward slice of the capture set, truncated at
    // the sample step. Steady-state per-query cost is measured with the
    // specialized program pre-built, matching the sampler's per-spec-set
    // cache; the one-time specialize cost is recorded separately. Both
    // paths must produce identical difference verdicts — the bench
    // cross-checks every query before trusting the timings.
    let slice_nodes = 24.min(sample_cfg.samples.len());
    let slice_specs: Vec<SampleSpec> = sample_cfg.samples[..slice_nodes].to_vec();
    let oracle_steps = cfg.steps;
    let oracle_sample_step = 2u32;
    let full_cfg = RunConfig {
        steps: oracle_steps,
        sample_step: Some(oracle_sample_step),
        samples: slice_specs.clone(),
        ..Default::default()
    };
    let t0 = Instant::now();
    let spec_index = SpecIndex::build(&program);
    let specialized = specialize_with(&spec_index, &program, &slice_specs)
        .expect("refinement-shaped capture set must be separable");
    let specialize_ms = t0.elapsed().as_secs_f64() * 1e3;
    let spec_cfg = RunConfig {
        steps: oracle_steps.min(oracle_sample_step + 1),
        ..full_cfg.clone()
    };
    let verdicts = |ctl: &rca_sim::RunOutput, exp: &rca_sim::RunOutput| -> Vec<bool> {
        (0..slice_nodes)
            .map(|i| {
                let (Some(a), Some(b)) = (ctl.samples[i].as_ref(), exp.samples[i].as_ref()) else {
                    return false;
                };
                a.iter().zip(b).any(|(&x, &y)| {
                    let s = x.abs().max(y.abs()).max(1e-300);
                    ((x - y).abs() / s) > tolerance
                })
            })
            .collect()
    };
    let fast_queries: usize = if scale == "test" { 40 } else { 12 };
    let time_query = |prog: &std::sync::Arc<rca_sim::Program>, qcfg: &RunConfig| {
        let mut v = Vec::new();
        let mut best = f64::INFINITY;
        for _ in 0..fast_queries {
            let t0 = Instant::now();
            let ctl = run_program(prog, qcfg, 0.0).expect("control query run");
            let exp = run_program(prog, qcfg, 1e-12).expect("experimental query run");
            best = best.min(t0.elapsed().as_secs_f64());
            v = verdicts(&ctl, &exp);
        }
        (best * 1e6, v)
    };
    let (full_query_us, full_verdicts) = time_query(&program, &full_cfg);
    let (spec_query_us, spec_verdicts) = time_query(&specialized.program, &spec_cfg);
    assert_eq!(
        full_verdicts, spec_verdicts,
        "specialized query verdicts diverged from the full program"
    );
    let fastpath_speedup = full_query_us / spec_query_us;
    println!(
        "oracle fastpath ({slice_nodes}-node capture set): full {full_query_us:.0} us/query, \
         specialized {spec_query_us:.0} us/query ({fastpath_speedup:.2}x), \
         {:.0}% stmts pruned, specialize {specialize_ms:.1} ms once",
        specialized.pruned_fraction() * 100.0
    );
    // Perf floor, CI-enforced: slice-specialized queries must beat the
    // full-program pair by >=2x at every scale (measured ~7x at test
    // scale, ~75x at paper scale — the floor leaves headroom for noisy
    // shared runners, not for a regression).
    assert!(
        fastpath_speedup >= 2.0,
        "specialized query speedup {fastpath_speedup:.2}x fell below the 2x floor"
    );

    let record = Json::obj([
        ("bench", "sim_throughput".to_json()),
        ("scale", scale.to_json()),
        ("steps", cfg.steps.to_json()),
        ("compile_seconds", compile_s.to_json()),
        (
            "compiled",
            Json::obj([
                ("run_seconds", compiled_s.to_json()),
                ("steps_per_sec", compiled_sps.to_json()),
            ]),
        ),
        (
            "tree_walker",
            Json::obj([
                ("run_seconds", tree_s.to_json()),
                ("steps_per_sec", tree_sps.to_json()),
            ]),
        ),
        ("speedup", speedup.to_json()),
        (
            "engines",
            Json::obj([
                ("vm_steps_per_sec", compiled_sps.to_json()),
                ("tree_steps_per_sec", tree_engine_sps.to_json()),
                ("vm_over_tree", vm_over_tree.to_json()),
            ]),
        ),
        (
            "bytecode",
            Json::obj([
                ("instr_count", program.instr_count().to_json()),
                ("kernel_count", program.kernel_count().to_json()),
            ]),
        ),
        (
            "step_kernel",
            Json::obj([
                ("width", kern_width.to_json()),
                ("vm_ns_per_elem", kern_vm_ns.to_json()),
                ("tree_ns_per_elem", kern_tree_ns.to_json()),
                ("vm_over_tree", (kern_tree_ns / kern_vm_ns).to_json()),
            ]),
        ),
        (
            "kernels",
            Json::obj([
                ("plane_width", outputs.to_json()),
                ("keep_refine_ns_per_plane", refine_ns.to_json()),
                ("gather_ns_per_plane", gather_ns.to_json()),
                ("gather_kept", ids.len().to_json()),
            ]),
        ),
        (
            "ensemble",
            Json::obj([
                ("members", n_members.to_json()),
                ("wall_seconds", ens_s.to_json()),
                ("steps_per_sec", ens_sps.to_json()),
            ]),
        ),
        (
            "ensemble_store",
            Json::obj([
                ("members", store_members.to_json()),
                (
                    "clone_per_run",
                    Json::obj([
                        ("wall_seconds", base_s.to_json()),
                        ("members_per_sec", base_mps.to_json()),
                        ("allocs_per_member", base_apm.to_json()),
                    ]),
                ),
                (
                    "columnar_store",
                    Json::obj([
                        ("wall_seconds", store_s.to_json()),
                        ("members_per_sec", store_mps.to_json()),
                        ("allocs_per_member", store_apm.to_json()),
                    ]),
                ),
                ("members_per_sec_gain", (store_mps / base_mps).to_json()),
                (
                    "allocs_per_member_ratio",
                    (base_apm / store_apm.max(1.0)).to_json(),
                ),
            ]),
        ),
        (
            "oracle_differs",
            Json::obj([
                ("nodes", nodes.len().to_json()),
                ("queries", queries.to_json()),
                ("string_keyed_us_per_query", str_us.to_json()),
                ("id_keyed_us_per_query", id_us.to_json()),
                ("speedup", differs_speedup.to_json()),
            ]),
        ),
        (
            "oracle_fastpath",
            Json::obj([
                ("capture_nodes", slice_nodes.to_json()),
                ("full_us_per_query", full_query_us.to_json()),
                ("specialized_us_per_query", spec_query_us.to_json()),
                ("speedup", fastpath_speedup.to_json()),
                ("pruned_fraction", specialized.pruned_fraction().to_json()),
                ("stmts_total", specialized.stmts_total.to_json()),
                ("stmts_kept", specialized.stmts_kept.to_json()),
                ("specialize_ms_once", specialize_ms.to_json()),
            ]),
        ),
    ]);
    rca_bench::record_bench("BENCH_sim.json", record);
}
