//! Simulation throughput: compiled-engine steps/sec, single-run and
//! ensemble, with the tree-walking interpreter as the reference point —
//! recorded into `BENCH_sim.json` so the perf trajectory of the
//! parse → compile → execute pipeline is tracked next to
//! `BENCH_campaign.json`.
//!
//! `RCA_BENCH_SCALE=test|medium|paper` sizes the model;
//! `RCA_SIM_REPEAT` overrides the timed repetition count.

use rca_bench::{bench_config, header};
use rca_sim::{
    compile_model, perturbations, run_ensemble_program, run_loaded, run_program, Interpreter,
    RunConfig,
};
use serde::{Json, Serialize as _};
use std::time::Instant;

fn main() {
    header(
        "sim_throughput",
        "the compiled engine must dominate per-run cost; ensembles compile once",
    );
    let scale = std::env::var("RCA_BENCH_SCALE").unwrap_or_else(|_| "medium".to_string());
    let repeat: usize = std::env::var("RCA_SIM_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if scale == "test" { 8 } else { 5 });
    let model = rca_model::generate(&bench_config());
    let cfg = RunConfig {
        steps: 9,
        ..Default::default()
    };

    // Compile once (timed separately: this is the cost a campaign pays
    // once per mutated variant).
    let t0 = Instant::now();
    let program = compile_model(&model).expect("compile");
    let compile_s = t0.elapsed().as_secs_f64();

    // Compiled single runs.
    let t0 = Instant::now();
    for i in 0..repeat {
        run_program(&program, &cfg, i as f64 * 1e-14).expect("compiled run");
    }
    let compiled_s = t0.elapsed().as_secs_f64() / repeat as f64;

    // Tree-walking reference: parse + load + run per run, exactly the
    // per-run cost `run_model` paid before the compile step existed.
    let t0 = Instant::now();
    for i in 0..repeat {
        let (asts, errs) = model.parse();
        assert!(errs.is_empty(), "{errs:?}");
        let mut interp = Interpreter::load(&asts, cfg.clone()).expect("load");
        run_loaded(&mut interp, &cfg, i as f64 * 1e-14).expect("tree-walk run");
    }
    let tree_s = t0.elapsed().as_secs_f64() / repeat as f64;

    // Ensemble over the shared program.
    let n_members = 16usize;
    let perts = perturbations(n_members, 1e-14, 0xC1);
    let t0 = Instant::now();
    let ens = run_ensemble_program(&program, &cfg, &perts).expect("ensemble");
    let ens_s = t0.elapsed().as_secs_f64();
    assert_eq!(ens.len(), n_members);

    let steps_per_run = cfg.steps as f64;
    let compiled_sps = steps_per_run / compiled_s;
    let tree_sps = steps_per_run / tree_s;
    let ens_sps = steps_per_run * n_members as f64 / ens_s;
    let speedup = tree_s / compiled_s;

    println!("model scale: {scale} ({} files)", model.files.len());
    println!(
        "compile: {:.1} ms (once per source variant)",
        compile_s * 1e3
    );
    println!(
        "compiled single run: {:.1} ms ({compiled_sps:.0} steps/sec)",
        compiled_s * 1e3
    );
    println!(
        "tree-walker single run: {:.1} ms ({tree_sps:.0} steps/sec)",
        tree_s * 1e3
    );
    println!("speedup (tree-walker / compiled): {speedup:.2}x");
    println!(
        "ensemble ({n_members} members, shared program): {:.2} s ({ens_sps:.0} steps/sec aggregate)",
        ens_s
    );

    let record = Json::obj([
        ("bench", "sim_throughput".to_json()),
        ("scale", scale.to_json()),
        ("steps", cfg.steps.to_json()),
        ("compile_seconds", compile_s.to_json()),
        (
            "compiled",
            Json::obj([
                ("run_seconds", compiled_s.to_json()),
                ("steps_per_sec", compiled_sps.to_json()),
            ]),
        ),
        (
            "tree_walker",
            Json::obj([
                ("run_seconds", tree_s.to_json()),
                ("steps_per_sec", tree_sps.to_json()),
            ]),
        ),
        ("speedup", speedup.to_json()),
        (
            "ensemble",
            Json::obj([
                ("members", n_members.to_json()),
                ("wall_seconds", ens_s.to_json()),
                ("steps_per_sec", ens_sps.to_json()),
            ]),
        ),
    ]);
    let path = "BENCH_sim.json";
    let text = serde_json::to_string_pretty(&record).unwrap() + "\n";
    match std::fs::write(path, &text) {
        Ok(()) => println!("recorded {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
