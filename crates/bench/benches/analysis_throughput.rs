//! Static analysis throughput: dependence-graph nodes/sec and full lint
//! sweeps/sec over the compiled IR, recorded into `BENCH_analysis.json`.
//!
//! The paper's feasibility claim is that static analysis is *cheap*
//! relative to the dynamic pipeline it prunes — a campaign re-analyzes
//! every mutant model, so `ModelAnalysis::build` sits on the planning
//! path. This harness measures build rate (graph nodes/sec) and lint
//! rate (full catalog sweeps/sec), and asserts the output is identical
//! across repeated runs (the determinism CI gates on).
//! `RCA_BENCH_SCALE=test|medium|paper` sizes the model.

use rca_analysis::ModelAnalysis;
use rca_bench::{bench_config, header};
use rca_sim::compile_model;
use serde::{Json, Serialize as _};
use std::time::Instant;

fn main() {
    header(
        "analysis_throughput",
        "static analysis must stay cheap relative to the dynamic pipeline it prunes",
    );
    let scale = std::env::var("RCA_BENCH_SCALE").unwrap_or_else(|_| "medium".to_string());
    let model = rca_model::generate(&bench_config());
    let program = compile_model(&model).expect("model compiles");

    // Build throughput: full analysis (dep graph + dataflow + reach +
    // intervals) per pass, reported as graph nodes/sec.
    let build_iters: usize = if scale == "paper" { 3 } else { 10 };
    let t0 = Instant::now();
    let mut analysis = ModelAnalysis::build(program.clone());
    for _ in 1..build_iters {
        analysis = ModelAnalysis::build(program.clone());
    }
    let build_secs = t0.elapsed().as_secs_f64() / build_iters as f64;
    let nodes = analysis.deps().node_count();
    let edges = analysis.deps().edge_count();
    let nodes_per_sec = nodes as f64 / build_secs.max(1e-12);

    // Lint throughput: full catalog sweeps over the built analysis.
    let lint_iters: usize = if scale == "paper" { 5 } else { 20 };
    let reference = serde_json::to_string(&analysis.lint().json_doc("bench")).unwrap();
    let t0 = Instant::now();
    for _ in 0..lint_iters {
        let report = analysis.lint();
        let rendered = serde_json::to_string(&report.json_doc("bench")).unwrap();
        assert_eq!(rendered, reference, "lint output must be deterministic");
    }
    let lint_secs = t0.elapsed().as_secs_f64() / lint_iters as f64;
    let lints_per_sec = 1.0 / lint_secs.max(1e-12);
    let findings = analysis.lint().findings.len();

    println!("scale: {scale}, graph: {nodes} nodes / {edges} edges");
    println!(
        "build: {:.1} ms/pass ({:.0} nodes/sec)",
        build_secs * 1e3,
        nodes_per_sec
    );
    println!(
        "lint:  {:.1} ms/sweep ({:.1} sweeps/sec, {findings} findings)",
        lint_secs * 1e3,
        lints_per_sec
    );

    let record = Json::obj([
        ("bench", "analysis_throughput".to_json()),
        ("scale", scale.to_json()),
        ("nodes", nodes.to_json()),
        ("edges", edges.to_json()),
        ("build_seconds", build_secs.to_json()),
        ("nodes_per_sec", nodes_per_sec.to_json()),
        ("lint_seconds", lint_secs.to_json()),
        ("lints_per_sec", lints_per_sec.to_json()),
        ("findings", findings.to_json()),
    ]);
    rca_bench::record_bench("BENCH_analysis.json", record);
}
