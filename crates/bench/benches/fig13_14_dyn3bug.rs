//! Figures 13 & 14 — DYN3BUG iterations (supplementary §8.2.2).
//!
//! Paper: hydrostatic-pressure bug in the dynamics core; slice 5999 nodes
//! / 11495 edges at CESM scale; Girvan-Newman separates the dynamics
//! community from the physics community and sampling detects the bug on
//! iteration 1.

use rca_bench::{bench_model, bench_session, experiment_figure, header};
use rca_model::Experiment;

fn main() {
    header(
        "Figure 13/14: DYN3BUG refinement",
        "dynamics community separated from physics; detected on iteration 1",
    );
    let model = bench_model();
    let session = bench_session(&model, true);
    experiment_figure(&session, Experiment::Dyn3Bug);
}
