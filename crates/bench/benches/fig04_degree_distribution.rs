//! Figures 4 & 9 — degree distribution of the full model digraph.
//!
//! Paper: "The degree distribution of the total CESM graph approximately
//! follows a power law" (~100k nodes / ~170k edges at CESM scale). The
//! harness prints the log-log histogram series and the discrete MLE
//! exponent.

use rca_bench::{bench_pipeline, header};
use rca_graph::{degree_distribution, fit_power_law, DegreeKind};

fn main() {
    header(
        "Figure 4/9: Degree distribution of the model digraph",
        "approximately power-law; CESM graph is ~100k nodes / ~170k edges",
    );
    let (_, pipeline) = bench_pipeline();
    let g = &pipeline.metagraph.graph;
    println!(
        "graph: {} nodes, {} edges ({} modules)",
        g.node_count(),
        g.edge_count(),
        pipeline.metagraph.modules.len()
    );

    let dist = degree_distribution(g, DegreeKind::Total);
    println!(
        "\n{:>7} {:>8} {:>12} {:>12}",
        "degree", "count", "pdf", "ccdf"
    );
    for p in dist.iter().take(40) {
        println!(
            "{:>7} {:>8} {:>12.3e} {:>12.3e}",
            p.degree, p.count, p.pdf, p.ccdf
        );
    }
    if dist.len() > 40 {
        println!("... ({} more rows)", dist.len() - 40);
    }

    for k_min in [2usize, 3, 5] {
        if let Some(fit) = fit_power_law(g, DegreeKind::Total, k_min) {
            println!(
                "power-law MLE (k_min={}): alpha = {:.3} ± {:.3} over {} tail nodes",
                fit.k_min, fit.alpha, fit.sigma, fit.n_tail
            );
        }
    }
}
