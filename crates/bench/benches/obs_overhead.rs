//! Observability overhead: the cost of the telemetry plane when nobody
//! is listening, recorded into `BENCH_obs.json`.
//!
//! The obs crate's contract is that instrumentation left in hot paths is
//! effectively free while no sink is installed — a disabled span is one
//! relaxed atomic load and a branch, a counter increment one relaxed
//! atomic add. This harness measures both per-op costs directly, counts
//! how many obs operations one ensemble fill actually performs (via
//! counter deltas), and asserts the implied overhead on the fill's
//! per-member wall time stays under 2%. It also times the fill with an
//! in-memory collector installed, as the enabled-path reference.
//! `RCA_BENCH_SCALE=test|medium|paper` sizes the model.

use rca_bench::{bench_config, header, record_bench};
use rca_sim::{compile_model, perturbations, EnsembleRuns, RunConfig};
use serde::{Json, Serialize as _};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Min-of-k wall time for one run of `f` (least-noise estimator).
fn min_wall<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    header(
        "obs_overhead",
        "disabled telemetry must cost <2% of the ensemble fill it instruments",
    );
    let scale = std::env::var("RCA_BENCH_SCALE").unwrap_or_else(|_| "medium".to_string());
    let iters: u64 = 1_000_000;

    // Per-op cost of a disabled span: open + drop with no sink installed.
    assert!(!rca_obs::tracing_active(), "bench must start with no sink");
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(rca_obs::span("obs.bench.span"));
    }
    let span_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;

    // Per-op cost of a counter increment (counters are always live —
    // one relaxed atomic add — sink or no sink).
    let t0 = Instant::now();
    for i in 0..iters {
        rca_obs::counter_inc!("obs.bench.count", black_box(i & 1));
    }
    let counter_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    println!("disabled span: {span_ns:.1} ns/op, counter inc: {counter_ns:.1} ns/op");

    // How many obs ops does one ensemble fill actually perform? Count
    // via the counters the fill path itself maintains.
    let model = rca_model::generate(&bench_config());
    let program = compile_model(&model).expect("compile");
    let cfg = RunConfig {
        steps: 9,
        ..Default::default()
    };
    let members = if scale == "test" { 24 } else { 48 };
    let perts = perturbations(members, 1e-14, 0xC1);
    let fill = || EnsembleRuns::run(&program, &cfg, &perts).expect("ensemble fill");
    let _ = fill(); // warm caches and the executor pool

    let count_ops = |snap: &rca_obs::MetricsSnapshot| -> u64 {
        [
            "sim.compiles",
            "executor.builds",
            "executor.resets",
            "executor.runs",
            "ensemble.fills",
            "ensemble.members",
        ]
        .iter()
        .filter_map(|n| snap.counter(n))
        .sum()
    };
    let before = count_ops(&rca_obs::metrics_snapshot());
    let _ = fill();
    let obs_ops = count_ops(&rca_obs::metrics_snapshot()) - before;

    let reps = 3;
    let fill_s = min_wall(reps, fill);
    let member_ns = fill_s * 1e9 / members as f64;
    let ops_per_member = obs_ops as f64 / members as f64;
    // Every op on the fill path is a counter increment; disabled spans
    // are costed too in case future instrumentation adds them.
    let overhead_ns = ops_per_member * counter_ns.max(span_ns);
    let overhead_pct = overhead_ns / member_ns * 100.0;
    println!(
        "ensemble fill ({members} members): {member_ns:.0} ns/member, \
         {ops_per_member:.1} obs ops/member -> {overhead_pct:.4}% disabled overhead"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-sink overhead {overhead_pct:.4}% breaches the 2% budget"
    );

    // Enabled-path reference: the same fill with an in-memory collector
    // scoped in. This is the price a *traced* run pays, not the default.
    let collector = Arc::new(rca_obs::Collector::new());
    let enabled_s = min_wall(reps, || {
        rca_obs::with_sink(collector.clone(), || black_box(fill()))
    });
    let enabled_ratio = enabled_s / fill_s.max(1e-12);
    println!(
        "collector-enabled fill: {:.2} ms vs {:.2} ms disabled ({enabled_ratio:.3}x)",
        enabled_s * 1e3,
        fill_s * 1e3
    );

    record_bench(
        "BENCH_obs.json",
        Json::obj([
            ("bench", "obs_overhead".to_json()),
            ("scale", scale.to_json()),
            ("span_disabled_ns_per_op", span_ns.to_json()),
            ("counter_ns_per_op", counter_ns.to_json()),
            (
                "ensemble_fill",
                Json::obj([
                    ("members", members.to_json()),
                    ("wall_seconds", fill_s.to_json()),
                    ("ns_per_member", member_ns.to_json()),
                    ("obs_ops_per_member", ops_per_member.to_json()),
                    ("disabled_overhead_pct", overhead_pct.to_json()),
                    ("collector_enabled_ratio", enabled_ratio.to_json()),
                ]),
            ),
        ]),
    );
}
