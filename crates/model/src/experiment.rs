//! The paper's six experiments as injectable model variants.
//!
//! Four experiments are **source-level bugs** (applied as string patches to
//! the generated Fortran, exactly as the paper edits CESM source); two are
//! **run-configuration changes** (PRNG substitution, AVX2/FMA enablement)
//! that leave the source untouched.

use serde::{Deserialize, Serialize};

/// Ground-truth location of an injected discrepancy source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugSite {
    /// Module containing the bug.
    pub module: String,
    /// Subprogram containing the bug.
    pub subprogram: String,
    /// Canonical variable name assigned at the bug location.
    pub canonical: String,
}

impl BugSite {
    fn new(module: &str, subprogram: &str, canonical: &str) -> Self {
        BugSite {
            module: module.to_string(),
            subprogram: subprogram.to_string(),
            canonical: canonical.to_string(),
        }
    }
}

/// The experiments of paper §6 and §8.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Experiment {
    /// No modification (ensemble / control runs).
    Control,
    /// §6.1: `wsub` typo, 0.20 → 2.00 in `microp_aero`.
    WsubBug,
    /// §6.2: default PRNG replaced by the Mersenne Twister.
    RandMt,
    /// §6.3: Goff–Gratch boiling-temperature coefficient
    /// 8.1328e-3 → 8.1828e-3.
    GoffGratch,
    /// §6.4: AVX2/FMA instructions enabled (per-module policy set in the
    /// run configuration).
    Avx2,
    /// §8.2.1: array-index error in the assignment writing `state%omega`.
    RandomBug,
    /// §8.2.2: hydrostatic-pressure coefficient bug in the dynamics core.
    Dyn3Bug,
}

impl Experiment {
    /// All experiments in paper order.
    pub const ALL: [Experiment; 7] = [
        Experiment::Control,
        Experiment::WsubBug,
        Experiment::RandMt,
        Experiment::GoffGratch,
        Experiment::Avx2,
        Experiment::RandomBug,
        Experiment::Dyn3Bug,
    ];

    /// Paper-style experiment name.
    pub fn name(&self) -> &'static str {
        match self {
            Experiment::Control => "CONTROL",
            Experiment::WsubBug => "WSUBBUG",
            Experiment::RandMt => "RAND-MT",
            Experiment::GoffGratch => "GOFFGRATCH",
            Experiment::Avx2 => "AVX2",
            Experiment::RandomBug => "RANDOMBUG",
            Experiment::Dyn3Bug => "DYN3BUG",
        }
    }

    /// Source patches `(file, from, to)` realizing the experiment.
    /// Run-configuration experiments return an empty list.
    pub fn source_patches(&self) -> Vec<(&'static str, &'static str, &'static str)> {
        match self {
            Experiment::WsubBug => vec![(
                "microp_aero.F90",
                "wsub(i) = max(0.20_r8 * sqrt(tke_loc(i)), wsubmin)",
                "wsub(i) = max(2.00_r8 * sqrt(tke_loc(i)), wsubmin)",
            )],
            Experiment::GoffGratch => vec![(
                "wv_saturation.F90",
                "e3 = 8.1328e-3_r8",
                "e3 = 8.1828e-3_r8",
            )],
            Experiment::RandomBug => vec![(
                "dyn_update.F90",
                "state%omega(i) = omg_tmp(i)",
                "state%omega(i) = omg_tmp(1)",
            )],
            Experiment::Dyn3Bug => vec![(
                "dycore.F90",
                "state%pmid(i) = 0.5_r8 * (pint(i) + state%ps(i))",
                "state%pmid(i) = 0.55_r8 * (pint(i) + state%ps(i))",
            )],
            Experiment::Control | Experiment::RandMt | Experiment::Avx2 => Vec::new(),
        }
    }

    /// Whether the experiment swaps the PRNG for the Mersenne Twister.
    pub fn uses_mersenne_twister(&self) -> bool {
        matches!(self, Experiment::RandMt)
    }

    /// Whether the experiment enables AVX2/FMA instructions.
    pub fn enables_avx2(&self) -> bool {
        matches!(self, Experiment::Avx2)
    }

    /// Ground-truth bug sites ("for all but one experiment, we introduce a
    /// bug into the source code so that the correct location is known").
    /// For RAND-MT these are "the variables immediately influenced or
    /// defined by the numbers returned from the PRNG"; for AVX2 the sites
    /// are determined at runtime by the KGen-style kernel comparison, so
    /// this returns the kernel's host module variables the paper names.
    pub fn bug_sites(&self) -> Vec<BugSite> {
        match self {
            Experiment::Control => Vec::new(),
            Experiment::WsubBug => {
                vec![BugSite::new("microp_aero", "microp_aero_run", "wsub")]
            }
            Experiment::RandMt => vec![
                BugSite::new("cloud_cover_lw", "cldfrc_lw", "cldovrlp"),
                BugSite::new("cloud_cover_sw", "cldfrc_sw", "swovrlp"),
            ],
            Experiment::GoffGratch => {
                vec![BugSite::new("wv_saturation", "goffgratch_svp", "e3")]
            }
            Experiment::Avx2 => vec![
                BugSite::new("micro_mg", "micro_mg_tend", "nctend"),
                BugSite::new("micro_mg", "micro_mg_tend", "qvlat"),
                BugSite::new("micro_mg", "micro_mg_tend", "tlat"),
                BugSite::new("micro_mg", "micro_mg_tend", "nitend"),
                BugSite::new("micro_mg", "micro_mg_tend", "qsout2"),
            ],
            Experiment::RandomBug => {
                vec![BugSite::new("dyn_update", "dyn_update_state", "omega")]
            }
            Experiment::Dyn3Bug => vec![BugSite::new("dycore", "dyn_run", "pmid")],
        }
    }

    /// The output variables the paper's Table 2 lists as selected for this
    /// experiment (file-output names, lowercase).
    pub fn table2_outputs(&self) -> Vec<&'static str> {
        match self {
            Experiment::Control => vec![],
            Experiment::WsubBug => vec!["wsub"],
            Experiment::RandomBug => vec!["omega"],
            Experiment::GoffGratch => vec![
                "aqsnow", "freqs", "cldhgh", "precsl", "ansnow", "cldmed", "cloud", "cldlow",
                "ccn3", "cldtot",
            ],
            Experiment::Dyn3Bug => vec!["vv", "omega", "z3", "uu", "omegat"],
            Experiment::RandMt => vec!["flds", "taux", "snowhlnd", "flns", "qrl"],
            Experiment::Avx2 => vec!["taux", "trefht", "snowhlnd", "ps", "u10", "shflx"],
        }
    }

    /// The corresponding internal variable names (Table 2, right column).
    pub fn table2_internal(&self) -> Vec<&'static str> {
        match self {
            Experiment::Control => vec![],
            Experiment::WsubBug => vec!["wsub"],
            Experiment::RandomBug => vec!["omega"],
            Experiment::GoffGratch => vec![
                "qsout2", "freqs", "clhgh", "snowl", "nsout2", "clmed", "cld", "cllow", "ccn",
                "cltot",
            ],
            Experiment::Dyn3Bug => vec!["v", "omega", "z3", "u", "t"],
            Experiment::RandMt => vec!["flwds", "wsx", "snowhland", "flns", "qrl"],
            Experiment::Avx2 => vec!["wsx", "tref", "snowhland", "ps", "u10", "shf"],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Experiment::WsubBug.name(), "WSUBBUG");
        assert_eq!(Experiment::RandMt.name(), "RAND-MT");
    }

    #[test]
    fn source_experiments_have_patches() {
        for e in [
            Experiment::WsubBug,
            Experiment::GoffGratch,
            Experiment::RandomBug,
            Experiment::Dyn3Bug,
        ] {
            assert!(!e.source_patches().is_empty(), "{e:?}");
            assert!(!e.bug_sites().is_empty());
        }
    }

    #[test]
    fn config_experiments_have_no_patches() {
        assert!(Experiment::RandMt.source_patches().is_empty());
        assert!(Experiment::Avx2.source_patches().is_empty());
        assert!(Experiment::RandMt.uses_mersenne_twister());
        assert!(Experiment::Avx2.enables_avx2());
    }

    #[test]
    fn table2_columns_align() {
        for e in Experiment::ALL {
            assert_eq!(e.table2_outputs().len(), e.table2_internal().len(), "{e:?}");
        }
    }

    #[test]
    fn goffgratch_patch_is_the_paper_typo() {
        let p = Experiment::GoffGratch.source_patches();
        assert!(p[0].1.contains("8.1328e-3"));
        assert!(p[0].2.contains("8.1828e-3"));
    }
}
