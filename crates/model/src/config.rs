//! Model-generation configuration and scale presets.
//!
//! The real CESM FC5 configuration compiles ~820 modules of which ~561
//! survive coverage filtering into the paper's module quotient graph, with
//! a variable digraph of ~100k nodes / ~170k edges. The generator scales
//! from a fast test model to a bench model of comparable *shape* (module
//! count, scale-free wiring, core/periphery split) via these knobs.

use serde::{Deserialize, Serialize};

/// Configuration for the synthetic climate model generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of grid columns (CAM's `pcols`); every field array has this
    /// length.
    pub pcols: usize,
    /// Procedurally generated physics filler modules (CAM periphery).
    pub n_phys_fillers: usize,
    /// Dynamics filler modules.
    pub n_dyn_fillers: usize,
    /// Land-component filler modules (outside CAM — paper Fig. 15).
    pub n_lnd_fillers: usize,
    /// Subroutines per filler module.
    pub subs_per_filler: usize,
    /// Assignment statements per filler subroutine.
    pub stmts_per_sub: usize,
    /// Module-level work arrays per filler module.
    pub arrays_per_filler: usize,
    /// Every n-th filler module writes one of its arrays to history,
    /// widening the ECT output set beyond the anchor variables.
    pub filler_output_stride: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl ModelConfig {
    /// Small, fast configuration for unit/integration tests.
    pub fn test() -> Self {
        ModelConfig {
            pcols: 8,
            n_phys_fillers: 12,
            n_dyn_fillers: 6,
            n_lnd_fillers: 6,
            subs_per_filler: 2,
            stmts_per_sub: 8,
            arrays_per_filler: 4,
            filler_output_stride: 4,
            seed: 0x5EED,
        }
    }

    /// Paper-scale configuration for benches: a few hundred modules, tens
    /// of thousands of graph nodes.
    pub fn paper() -> Self {
        ModelConfig {
            pcols: 16,
            n_phys_fillers: 220,
            n_dyn_fillers: 80,
            n_lnd_fillers: 80,
            subs_per_filler: 4,
            stmts_per_sub: 14,
            arrays_per_filler: 8,
            filler_output_stride: 8,
            seed: 0x5EED,
        }
    }

    /// Intermediate scale: big enough for meaningful communities, small
    /// enough for debug-build test suites.
    pub fn medium() -> Self {
        ModelConfig {
            pcols: 8,
            n_phys_fillers: 60,
            n_dyn_fillers: 20,
            n_lnd_fillers: 20,
            subs_per_filler: 3,
            stmts_per_sub: 10,
            arrays_per_filler: 6,
            filler_output_stride: 6,
            seed: 0x5EED,
        }
    }

    /// Total number of filler modules.
    pub fn total_fillers(&self) -> usize {
        self.n_phys_fillers + self.n_dyn_fillers + self.n_lnd_fillers
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::test()
    }
}

/// Component membership of a module (the paper restricts experiment
/// subgraphs "to nodes in CAM modules", §6, and lifts the restriction in
/// Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Atmosphere model (CAM): physics + dynamics + shared constants.
    Cam,
    /// Land model.
    Land,
    /// Coupler / driver infrastructure.
    Coupler,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_scale() {
        let t = ModelConfig::test();
        let m = ModelConfig::medium();
        let p = ModelConfig::paper();
        assert!(t.total_fillers() < m.total_fillers());
        assert!(m.total_fillers() < p.total_fillers());
    }

    #[test]
    fn default_is_test_scale() {
        assert_eq!(ModelConfig::default().pcols, ModelConfig::test().pcols);
    }
}
