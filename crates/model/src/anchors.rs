//! Hand-written anchor modules of the synthetic climate model.
//!
//! Each module mirrors a piece of CESM/CAM code the paper names:
//!
//! | module | paper role |
//! |---|---|
//! | `microp_aero` | WSUBBUG site (§6.1): `wsub` computed from TKE and written to file on the next line; isolated from the core through the pbuf indirection, so its slice stays tiny |
//! | `wv_saturation` | GOFFGRATCH site (§6.3): elemental Goff–Gratch saturation vapor pressure with the `8.1328e-3` boiling-temperature coefficient |
//! | `micro_mg` | the Morrison–Gettelman microphysics kernel (§6.4): `dum`, `ratio`, `tlat`, `qniic`, `nctend`, `qvlat`, `nitend`, `qsout2`… with `dum` the reused temporary the paper finds most central; FMA-sensitive cancellation expressions |
//! | `cloud_cover_lw` / `cloud_cover_sw` | RAND-MT sites (§6.2): cloud fractions perturbed by `random_number`; the PRNG-tainted variables sit *downstream* of the module's central cluster, reproducing the paper's first-iteration non-detection |
//! | `dycore` / `dyn_update` | DYN3BUG (hydrostatic pressure, §8.2.2) and RANDOMBUG (array-index error writing `state%omega`, §8.2.1) sites; also the chaotic vorticity term that grows the O(10⁻¹⁴) ensemble perturbations |
//! | `camsrfexch` | surface fields affected by AVX2 (Table 2: `wsx`, `shf`, `tref`, `u10`, `ps`) |
//! | `lnd_main` | land component (outside CAM — Fig. 15's unrestricted subgraph) |
//!
//! All code is in the `rca-fortran` dialect and executes under the
//! `rca-sim` interpreter.

use crate::config::{Component, ModelConfig};

/// One generated source file.
#[derive(Debug, Clone)]
pub struct ModelFile {
    /// Synthetic file name (`micro_mg.F90`).
    pub name: String,
    /// Component membership of the modules within.
    pub component: Component,
    /// Fortran source text.
    pub source: String,
}

/// Emits all anchor modules for `config`.
pub fn anchor_files(config: &ModelConfig) -> Vec<ModelFile> {
    let pcols = config.pcols;
    let mut files = Vec::new();
    let mut push = |name: &str, component: Component, source: String| {
        files.push(ModelFile {
            name: name.to_string(),
            component,
            source,
        });
    };

    push(
        "shr_kind_mod.F90",
        Component::Cam,
        r#"
module shr_kind_mod
  implicit none
  integer, parameter :: shr_kind_r8 = 8
  integer, parameter :: shr_kind_in = 4
end module shr_kind_mod
"#
        .to_string(),
    );

    push(
        "ppgrid.F90",
        Component::Cam,
        format!(
            r#"
module ppgrid
  implicit none
  integer, parameter :: pcols = {pcols}
  integer, parameter :: pver = 1
end module ppgrid
"#
        ),
    );

    push(
        "physconst.F90",
        Component::Cam,
        r#"
module physconst
  use shr_kind_mod, only: r8 => shr_kind_r8
  implicit none
  real(r8), parameter :: gravit = 9.80616_r8
  real(r8), parameter :: rair   = 287.042_r8
  real(r8), parameter :: cpair  = 1004.64_r8
  real(r8), parameter :: latvap = 2501000.0_r8
  real(r8), parameter :: latice = 333700.0_r8
  real(r8), parameter :: tmelt  = 273.15_r8
  real(r8), parameter :: rh2o   = 461.505_r8
  real(r8), parameter :: epsilo = 0.622_r8
  real(r8), parameter :: pi     = 3.14159265358979_r8
  real(r8), parameter :: karman = 0.4_r8
  real(r8), parameter :: rhoh2o = 1000.0_r8
  real(r8), parameter :: zvir   = 0.6078_r8
end module physconst
"#
        .to_string(),
    );

    push(
        "physics_types.F90",
        Component::Cam,
        r#"
module physics_types
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  implicit none
  type physics_state
    real(r8) :: t(pcols)
    real(r8) :: q(pcols)
    real(r8) :: qc(pcols)
    real(r8) :: qi(pcols)
    real(r8) :: nc(pcols)
    real(r8) :: ni(pcols)
    real(r8) :: u(pcols)
    real(r8) :: v(pcols)
    real(r8) :: omega(pcols)
    real(r8) :: ps(pcols)
    real(r8) :: pmid(pcols)
    real(r8) :: zm(pcols)
    real(r8) :: vort(pcols)
  end type physics_state
end module physics_types
"#
        .to_string(),
    );

    push(
        "camstate.F90",
        Component::Cam,
        r#"
module camstate
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use physics_types, only: physics_state
  implicit none
  type(physics_state) :: state
  real(r8), parameter :: deltat = 1800.0_r8
  integer, parameter :: tke_idx = 1
  integer, parameter :: prec_idx = 2
  integer, parameter :: flx_idx = 3
end module camstate
"#
        .to_string(),
    );

    // Vertical diffusion computes TKE and hides it behind the pbuf
    // indirection — exactly why wsub's static slice stays small.
    push(
        "vertical_diffusion.F90",
        Component::Cam,
        r#"
module vertical_diffusion
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state, tke_idx
  use physconst, only: karman
  implicit none
  real(r8) :: tke(pcols)
  real(r8) :: kvh(pcols)
contains
  subroutine vertical_diffusion_tend(ncol)
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: shear
    do i = 1, ncol
      shear = abs(state%u(i)) + abs(state%v(i))
      tke(i) = max(0.01_r8, 0.08_r8 * shear * karman)
      kvh(i) = 10.0_r8 * tke(i) / (tke(i) + 1.0_r8)
    end do
    call pbuf_set_field(tke_idx, tke)
  end subroutine vertical_diffusion_tend
end module vertical_diffusion
"#
        .to_string(),
    );

    // WSUBBUG site. The paper: "The bug consists of a plausible typo
    // (transposing 0.20 to 2.00) in one assignment of wsub in
    // microp_aero.F90. The variable is written to file in the next line."
    push(
        "microp_aero.F90",
        Component::Cam,
        r#"
module microp_aero
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: tke_idx
  implicit none
  real(r8), parameter :: wsubmin = 0.20_r8
  real(r8) :: wsub(pcols)
  real(r8) :: tke_loc(pcols)
contains
  subroutine microp_aero_run(ncol)
    integer, intent(in) :: ncol
    integer :: i
    call pbuf_get_field(tke_idx, tke_loc)
    do i = 1, ncol
      wsub(i) = max(0.20_r8 * sqrt(tke_loc(i)), wsubmin)
    end do
    call outfld('WSUB', wsub, ncol)
  end subroutine microp_aero_run
end module microp_aero
"#
        .to_string(),
    );

    // GOFFGRATCH site: "We change a coefficient of the water boiling
    // temperature from 8.1328e-3 to 8.1828e-3."
    push(
        "wv_saturation.F90",
        Component::Cam,
        r#"
module wv_saturation
  use shr_kind_mod, only: r8 => shr_kind_r8
  use physconst, only: epsilo
  implicit none
  real(r8), parameter :: tboil = 373.16_r8
contains
  elemental real(r8) function goffgratch_svp(t) result(es)
    real(r8), intent(in) :: t
    real(r8) :: ts, e1, e2, e3
    ts = tboil / max(t, 150.0_r8)
    e1 = -7.90298_r8 * (ts - 1.0_r8) + 5.02808_r8 * log10(ts)
    e2 = -1.3816e-7_r8 * (10.0_r8 ** (11.344_r8 * (1.0_r8 - 1.0_r8 / ts)) - 1.0_r8)
    e3 = 8.1328e-3_r8 * (10.0_r8 ** (-3.49149_r8 * (ts - 1.0_r8)) - 1.0_r8)
    es = 101324.6_r8 * 10.0_r8 ** (e1 + e2 + e3)
  end function goffgratch_svp

  real(r8) function qsat_water(t, p) result(qs)
    real(r8), intent(in) :: t
    real(r8), intent(in) :: p
    real(r8) :: es
    es = goffgratch_svp(t)
    es = min(es, 0.5_r8 * p)
    qs = epsilo * es / (p - (1.0_r8 - epsilo) * es)
  end function qsat_water
end module wv_saturation
"#
        .to_string(),
    );

    // The Morrison-Gettelman-style kernel: dum is the reused temporary the
    // paper finds to be the most central node in the AVX2 community; the
    // near-cancellation expressions make the kernel FMA-sensitive.
    push(
        "micro_mg.F90",
        Component::Cam,
        r#"
module micro_mg
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state, deltat
  use physconst, only: latvap, latice, cpair, tmelt, rhoh2o
  use wv_saturation, only: qsat_water
  implicit none
  real(r8) :: tlat(pcols)
  real(r8) :: qvlat(pcols)
  real(r8) :: qctend(pcols)
  real(r8) :: nctend(pcols)
  real(r8) :: qitend(pcols)
  real(r8) :: nitend(pcols)
  real(r8) :: qniic(pcols)
  real(r8) :: qric(pcols)
  real(r8) :: nric(pcols)
  real(r8) :: nsic(pcols)
  real(r8) :: prds(pcols)
  real(r8) :: pre(pcols)
  real(r8) :: mnuccc(pcols)
  real(r8) :: nsagg(pcols)
  real(r8) :: qsout2(pcols)
  real(r8) :: nsout2(pcols)
  real(r8) :: freqs(pcols)
  real(r8) :: snowl(pcols)
  real(r8), parameter :: qsmall = 1.0e-18_r8
contains
  subroutine micro_mg_tend(ncol)
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: dum, ratio, qvs, ssat, gammas, cons, rho, dumc, dumi
    do i = 1, ncol
      qvs = qsat_water(state%t(i), state%pmid(i))
      ssat = state%q(i) - qvs
      gammas = latvap / (cpair * max(state%t(i), 150.0_r8))
      rho = state%pmid(i) / (287.042_r8 * state%t(i))
      cons = 1.0_r8 + gammas * qvs * latvap / (461.505_r8 * state%t(i) * state%t(i))
      ! dum: reused dummy temporary, assigned from many distinct sources.
      dum = ssat / cons
      pre(i) = 0.45_r8 * dum * rho + 0.55_r8 * pre(i)
      dum = state%qc(i) / max(deltat, 1.0_r8)
      qctend(i) = 0.90_r8 * qctend(i) + 0.06_r8 * dum - 0.02_r8 * pre(i)
      dum = state%qi(i) * rho * 0.25_r8
      prds(i) = 0.38_r8 * dum * gammas + 0.62_r8 * prds(i)
      dum = max(qctend(i) * deltat, qsmall)
      dumc = state%qc(i) + qctend(i) * deltat
      dumi = state%qi(i) + qitend(i) * deltat
      ratio = min(max(dumc / max(dumi + dumc, qsmall), 0.0_r8), 1.0_r8)
      dum = ratio * pre(i) + (1.0_r8 - ratio) * prds(i)
      qric(i) = 0.72_r8 * qric(i) + 0.21_r8 * dum * rho
      nric(i) = 0.80_r8 * nric(i) + 0.15_r8 * qric(i) / max(ratio, 0.05_r8)
      qniic(i) = 0.70_r8 * qniic(i) + 0.24_r8 * ratio * qric(i) + 0.06_r8 * prds(i)
      nsic(i) = 0.81_r8 * nsic(i) + 0.13_r8 * qniic(i) * rho
      mnuccc(i) = 0.55_r8 * mnuccc(i) + 0.40_r8 * dum * ratio
      nsagg(i) = 0.77_r8 * nsagg(i) + 0.18_r8 * nsic(i) * ratio
      dum = mnuccc(i) - nsagg(i) * 0.98_r8
      nctend(i) = 0.85_r8 * nctend(i) - 0.10_r8 * dum + 0.04_r8 * nric(i)
      nitend(i) = 0.86_r8 * nitend(i) + 0.09_r8 * dum - 0.03_r8 * nsagg(i)
      qitend(i) = 0.88_r8 * qitend(i) + 0.08_r8 * prds(i) - 0.02_r8 * mnuccc(i)
      dum = pre(i) + prds(i)
      tlat(i) = 0.80_r8 * tlat(i) + 0.18_r8 * latvap * dum + 0.02_r8 * latice * prds(i)
      qvlat(i) = 0.80_r8 * qvlat(i) - 0.17_r8 * dum
      qsout2(i) = 0.75_r8 * qsout2(i) + 0.22_r8 * qniic(i)
      nsout2(i) = 0.76_r8 * nsout2(i) + 0.20_r8 * nsic(i)
      freqs(i) = 0.70_r8 * freqs(i) + 0.25_r8 * min(qsout2(i) * 400.0_r8, 1.0_r8)
      snowl(i) = 0.72_r8 * snowl(i) + 0.23_r8 * qsout2(i) * rhoh2o
    end do
    do i = 1, ncol
      state%t(i) = state%t(i) + tlat(i) * deltat / cpair * 1.0e-6_r8
      state%q(i) = max(state%q(i) + qvlat(i) * deltat * 1.0e-6_r8, qsmall)
      state%qc(i) = max(state%qc(i) + qctend(i) * deltat * 1.0e-6_r8, qsmall)
      state%qi(i) = max(state%qi(i) + qitend(i) * deltat * 1.0e-6_r8, qsmall)
      state%nc(i) = max(state%nc(i) + nctend(i) * deltat * 1.0e-3_r8, qsmall)
      state%ni(i) = max(state%ni(i) + nitend(i) * deltat * 1.0e-3_r8, qsmall)
    end do
    call outfld('AQSNOW', qsout2, ncol)
    call outfld('ANSNOW', nsout2, ncol)
    call outfld('FREQS', freqs, ncol)
    call outfld('PRECSL', snowl, ncol)
  end subroutine micro_mg_tend
end module micro_mg
"#
        .to_string(),
    );

    // Cloud diagnostics: cld/cllow/clmed/clhgh/cltot/ccn — all depend on
    // qsat, so the GOFFGRATCH typo reaches them (Table 2, GOFFGRATCH row).
    push(
        "cloud_diagnostics.F90",
        Component::Cam,
        r#"
module cloud_diagnostics
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state
  use wv_saturation, only: qsat_water
  implicit none
  real(r8) :: cld(pcols)
  real(r8) :: cllow(pcols)
  real(r8) :: clmed(pcols)
  real(r8) :: clhgh(pcols)
  real(r8) :: cltot(pcols)
  real(r8) :: ccn(pcols)
  real(r8) :: relhum(pcols)
contains
  subroutine cloud_diagnostics_calc(ncol)
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: qvs, rhlim
    do i = 1, ncol
      qvs = qsat_water(state%t(i), state%pmid(i))
      relhum(i) = state%q(i) / max(qvs, 1.0e-12_r8)
      rhlim = 0.55_r8
      cld(i) = min(max((relhum(i) - rhlim) / (1.0_r8 - rhlim), 0.0_r8), 1.0_r8)
      cllow(i) = cld(i) * 0.65_r8
      clmed(i) = cld(i) * 0.55_r8 + 0.08_r8 * state%qc(i) * 1000.0_r8
      clhgh(i) = cld(i) * 0.40_r8 + 0.10_r8 * state%qi(i) * 1000.0_r8
      cltot(i) = min(cllow(i) + clmed(i) + clhgh(i), 1.0_r8)
      ccn(i) = 80.0_r8 + 900.0_r8 * state%nc(i) + 120.0_r8 * cld(i)
    end do
    call outfld('CLOUD', cld, ncol)
    call outfld('CLDLOW', cllow, ncol)
    call outfld('CLDMED', clmed, ncol)
    call outfld('CLDHGH', clhgh, ncol)
    call outfld('CLDTOT', cltot, ncol)
    call outfld('CCN3', ccn, ncol)
  end subroutine cloud_diagnostics_calc
end module cloud_diagnostics
"#
        .to_string(),
    );

    // RAND-MT longwave site. The central emissivity cluster feeds the
    // PRNG-perturbed overlap variables, which then flow almost directly to
    // the outputs — so on iteration 1 the community's most central nodes
    // have NO path from the PRNG taint (paper Fig. 5c), and step 8a is
    // required before sampling detects anything (Fig. 6).
    push(
        "cloud_cover_lw.F90",
        Component::Cam,
        r#"
module cloud_cover_lw
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state
  use cloud_diagnostics, only: cld
  implicit none
  real(r8) :: emis(pcols)
  real(r8) :: odap(pcols)
  real(r8) :: tauc(pcols)
  real(r8) :: planck(pcols)
  real(r8) :: gasopac(pcols)
  real(r8) :: cldovrlp(pcols)
  real(r8) :: rnd_lw(pcols)
contains
  subroutine cldfrc_lw(ncol)
    integer, intent(in) :: ncol
    integer :: i
    do i = 1, ncol
      tauc(i) = 0.15_r8 * state%qc(i) * 18000.0_r8 + 0.08_r8 * state%qi(i) * 9000.0_r8
      odap(i) = 0.6_r8 * odap(i) + 0.4_r8 * tauc(i) * cld(i)
      planck(i) = 5.67e-8_r8 * state%t(i) ** 4
      gasopac(i) = 0.35_r8 + 0.22_r8 * state%q(i) * 40.0_r8 + 0.05_r8 * odap(i)
      emis(i) = 1.0_r8 - exp(-1.66_r8 * odap(i) - 0.35_r8 * gasopac(i))
    end do
    call random_number(rnd_lw)
    do i = 1, ncol
      cldovrlp(i) = min(1.0_r8, emis(i) * (0.90_r8 + 0.20_r8 * rnd_lw(i)))
    end do
  end subroutine cldfrc_lw
end module cloud_cover_lw
"#
        .to_string(),
    );

    push(
        "cloud_cover_sw.F90",
        Component::Cam,
        r#"
module cloud_cover_sw
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state
  use cloud_diagnostics, only: cld
  implicit none
  real(r8) :: asym(pcols)
  real(r8) :: ssalb(pcols)
  real(r8) :: tausw(pcols)
  real(r8) :: swovrlp(pcols)
  real(r8) :: rnd_sw(pcols)
contains
  subroutine cldfrc_sw(ncol)
    integer, intent(in) :: ncol
    integer :: i
    do i = 1, ncol
      tausw(i) = 0.12_r8 * state%qc(i) * 21000.0_r8 + 0.02_r8 * state%qi(i) * 14000.0_r8
      asym(i) = 0.85_r8 + 0.02_r8 * cld(i)
      ssalb(i) = 0.999_r8 - 0.01_r8 * tausw(i) / (tausw(i) + 1.0_r8)
    end do
    call random_number(rnd_sw)
    do i = 1, ncol
      swovrlp(i) = min(1.0_r8, cld(i) * (0.90_r8 + 0.20_r8 * rnd_sw(i)))
    end do
  end subroutine cldfrc_sw
end module cloud_cover_sw
"#
        .to_string(),
    );

    // Longwave radiation: flwds (output FLDS), flns, qrl.
    push(
        "radlw.F90",
        Component::Cam,
        r#"
module radlw
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state
  use cloud_cover_lw, only: cldovrlp, emis, planck
  implicit none
  real(r8) :: flwds(pcols)
  real(r8) :: flns(pcols)
  real(r8) :: qrl(pcols)
  real(r8) :: flup(pcols)
contains
  subroutine radlw_run(ncol)
    integer, intent(in) :: ncol
    integer :: i
    do i = 1, ncol
      flup(i) = planck(i) * (1.0_r8 - 0.15_r8 * cldovrlp(i))
      flwds(i) = planck(i) * (0.72_r8 + 0.25_r8 * cldovrlp(i))
      flns(i) = flup(i) - flwds(i)
      qrl(i) = -0.09_r8 * flns(i) / 1004.64_r8 - 0.02_r8 * emis(i)
    end do
    call outfld('FLDS', flwds, ncol)
    call outfld('FLNS', flns, ncol)
    call outfld('QRL', qrl, ncol)
  end subroutine radlw_run
end module radlw
"#
        .to_string(),
    );

    // Shortwave radiation: fsds, qrs (the variables whose absence from the
    // lasso's top five explains the missing shortwave module, §6.2).
    push(
        "radsw.F90",
        Component::Cam,
        r#"
module radsw
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state
  use cloud_cover_sw, only: swovrlp, ssalb
  implicit none
  real(r8) :: fsds(pcols)
  real(r8) :: qrs(pcols)
  real(r8) :: fsns(pcols)
  real(r8), parameter :: scon = 1360.9_r8
contains
  subroutine radsw_run(ncol)
    integer, intent(in) :: ncol
    integer :: i
    do i = 1, ncol
      fsds(i) = scon * 0.25_r8 * (1.0_r8 - 0.45_r8 * swovrlp(i)) * ssalb(i)
      fsns(i) = fsds(i) * 0.93_r8
      qrs(i) = 0.05_r8 * fsns(i) / 1004.64_r8
    end do
    call outfld('FSDS', fsds, ncol)
    call outfld('QRS', qrs, ncol)
  end subroutine radsw_run
end module radsw
"#
        .to_string(),
    );

    // Dynamics core: chaotic vorticity (ensemble-spread amplifier),
    // hydrostatic pressure (DYN3BUG site), omega/z3/wind updates.
    push(
        "dycore.F90",
        Component::Cam,
        r#"
module dycore
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state, deltat
  use physconst, only: rair, gravit, zvir
  implicit none
  real(r8) :: pint(pcols)
  real(r8) :: z3(pcols)
  real(r8) :: tv(pcols)
  real(r8) :: dudt(pcols)
  real(r8) :: dvdt(pcols)
  real(r8), parameter :: hyai = 0.002_r8
contains
  subroutine dyn_run(ncol)
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: tbar, pbar
    do i = 1, ncol
      state%vort(i) = 3.92_r8 * state%vort(i) * (1.0_r8 - state%vort(i))
    end do
    tbar = sum(state%t) / real(ncol)
    pbar = sum(state%ps) / real(ncol)
    do i = 1, ncol
      tv(i) = state%t(i) * (1.0_r8 + zvir * state%q(i))
      pint(i) = 0.9_r8 * state%ps(i) + hyai * 100000.0_r8
      state%pmid(i) = 0.5_r8 * (pint(i) + state%ps(i))
      z3(i) = rair * tv(i) * log(state%ps(i) / state%pmid(i)) / gravit + state%zm(i)
      dudt(i) = 0.02_r8 * (state%vort(i) - 0.5_r8) - 1.0e-6_r8 * (state%pmid(i) - pbar)
      dvdt(i) = 0.015_r8 * (0.5_r8 - state%vort(i)) + 5.0e-7_r8 * (state%pmid(i) - pbar)
      state%u(i) = state%u(i) + deltat * 0.001_r8 * dudt(i)
      state%v(i) = state%v(i) + deltat * 0.001_r8 * dvdt(i)
      state%omega(i) = -0.4_r8 * state%u(i) * (state%t(i) - tbar) * 0.01_r8 - 0.2_r8 * state%v(i) * 0.01_r8
      state%t(i) = state%t(i) + 0.04_r8 * (state%vort(i) - 0.5_r8) + 2.0e-7_r8 * z3(i)
      state%ps(i) = state%ps(i) + 0.5_r8 * (pbar - state%ps(i)) * 0.002_r8 + 0.01_r8 * state%omega(i)
    end do
    call outfld('Z3', z3, ncol)
    call outfld('UU', state%u, ncol)
    call outfld('VV', state%v, ncol)
    call outfld('OMEGAT', state%t, ncol)
  end subroutine dyn_run
end module dycore
"#
        .to_string(),
    );

    // RANDOMBUG site: the omega relaxation writes the derived-type state.
    push(
        "dyn_update.F90",
        Component::Cam,
        r#"
module dyn_update
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state
  implicit none
  real(r8) :: omg_tmp(pcols)
  real(r8) :: omg_old(pcols)
  real(r8), parameter :: wgt = 0.85_r8
contains
  subroutine dyn_update_state(ncol)
    integer, intent(in) :: ncol
    integer :: i
    do i = 1, ncol
      omg_tmp(i) = state%omega(i) * wgt + omg_old(i) * (1.0_r8 - wgt)
    end do
    do i = 1, ncol
      state%omega(i) = omg_tmp(i)
      omg_old(i) = omg_tmp(i)
    end do
    call outfld('OMEGA', state%omega, ncol)
  end subroutine dyn_update_state
end module dyn_update
"#
        .to_string(),
    );

    // Surface exchange: AVX2-affected Table 2 outputs.
    push(
        "camsrfexch.F90",
        Component::Cam,
        r#"
module camsrfexch
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state, flx_idx
  use physconst, only: karman, cpair
  implicit none
  real(r8) :: wsx(pcols)
  real(r8) :: wsy(pcols)
  real(r8) :: shf(pcols)
  real(r8) :: tref(pcols)
  real(r8) :: u10(pcols)
  real(r8) :: rhos(pcols)
contains
  subroutine srfflx_run(ncol)
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: vmag, cdn
    do i = 1, ncol
      rhos(i) = state%ps(i) / (287.042_r8 * state%t(i))
      vmag = sqrt(state%u(i) * state%u(i) + state%v(i) * state%v(i)) + 0.1_r8
      cdn = karman * karman / 49.0_r8
      wsx(i) = -rhos(i) * cdn * vmag * state%u(i)
      wsy(i) = -rhos(i) * cdn * vmag * state%v(i)
      shf(i) = rhos(i) * cpair * cdn * vmag * (288.0_r8 - state%t(i)) * 0.1_r8
      tref(i) = state%t(i) + 0.0098_r8 * 2.0_r8 + shf(i) * 1.0e-5_r8
      u10(i) = state%u(i) * 0.85_r8 + 0.4_r8
    end do
    call pbuf_set_field(flx_idx, shf)
    call outfld('TAUX', wsx, ncol)
    call outfld('SHFLX', shf, ncol)
    call outfld('TREFHT', tref, ncol)
    call outfld('U10', u10, ncol)
    call outfld('PS', state%ps, ncol)
  end subroutine srfflx_run
end module camsrfexch
"#
        .to_string(),
    );

    // Land component (outside CAM; Fig. 15 keeps these nodes).
    push(
        "lnd_main.F90",
        Component::Land,
        r#"
module lnd_main
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use micro_mg, only: snowl
  use camsrfexch, only: tref
  implicit none
  real(r8) :: snowhland(pcols)
  real(r8) :: soiltemp(pcols)
  real(r8) :: lndalb(pcols)
contains
  subroutine lnd_run(ncol)
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: melt
    do i = 1, ncol
      melt = max(tref(i) - 273.15_r8, 0.0_r8) * 2.0e-4_r8
      snowhland(i) = max(snowhland(i) + 0.002_r8 * snowl(i) - melt, 0.0_r8)
      soiltemp(i) = 0.95_r8 * soiltemp(i) + 0.05_r8 * tref(i)
      lndalb(i) = 0.2_r8 + 0.4_r8 * min(snowhland(i), 1.0_r8)
    end do
    call outfld('SNOWHLND', snowhland, ncol)
  end subroutine lnd_run
end module lnd_main
"#
        .to_string(),
    );

    files
}

/// The driver module text is generated last because it must call every
/// filler runner; see `crate::fillers::driver_file`.
pub fn driver_preamble() -> &'static str {
    r#"
module cam_driver
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols
  use camstate, only: state
  use vertical_diffusion, only: vertical_diffusion_tend
  use microp_aero, only: microp_aero_run
  use micro_mg, only: micro_mg_tend
  use cloud_diagnostics, only: cloud_diagnostics_calc
  use cloud_cover_lw, only: cldfrc_lw
  use cloud_cover_sw, only: cldfrc_sw
  use radlw, only: radlw_run
  use radsw, only: radsw_run
  use dycore, only: dyn_run
  use dyn_update, only: dyn_update_state
  use camsrfexch, only: srfflx_run
  use lnd_main, only: lnd_run
"#
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;

    #[test]
    fn all_anchors_parse_cleanly() {
        let files = anchor_files(&ModelConfig::test());
        assert!(files.len() >= 15);
        for f in &files {
            let (ast, errs) = parse_source(&f.name, &f.source);
            assert!(errs.is_empty(), "{}: {errs:?}", f.name);
            assert!(!ast.modules.is_empty(), "{} has no modules", f.name);
        }
    }

    #[test]
    fn wsub_bug_site_present() {
        let files = anchor_files(&ModelConfig::test());
        let micro = files.iter().find(|f| f.name == "microp_aero.F90").unwrap();
        assert!(micro.source.contains("0.20_r8 * sqrt"));
        assert!(micro.source.contains("call outfld('WSUB'"));
    }

    #[test]
    fn goffgratch_coefficient_present() {
        let files = anchor_files(&ModelConfig::test());
        let wv = files
            .iter()
            .find(|f| f.name == "wv_saturation.F90")
            .unwrap();
        assert!(wv.source.contains("8.1328e-3_r8"));
    }

    #[test]
    fn pcols_injected_from_config() {
        let mut cfg = ModelConfig::test();
        cfg.pcols = 23;
        let files = anchor_files(&cfg);
        let grid = files.iter().find(|f| f.name == "ppgrid.F90").unwrap();
        assert!(grid.source.contains("pcols = 23"));
    }

    #[test]
    fn land_is_not_cam() {
        let files = anchor_files(&ModelConfig::test());
        let lnd = files.iter().find(|f| f.name == "lnd_main.F90").unwrap();
        assert_eq!(lnd.component, Component::Land);
    }
}
