//! # rca-model — the synthetic CESM-like climate model
//!
//! The paper's subject is CESM: 1.5M lines of Fortran across ~820 compiled
//! modules. That code base is not available (and far beyond laptop scale),
//! so this crate **generates** a climate model with the same structural
//! skeleton — in real Fortran source text, consumed by `rca-fortran` and
//! executed by `rca-sim`:
//!
//! - hand-written **anchor modules** ([`anchors`]) mirror every piece of
//!   CESM the paper names: `microp_aero` (WSUBBUG), `wv_saturation`
//!   (GOFFGRATCH), the Morrison–Gettelman kernel `micro_mg` with the
//!   paper's variable cast (`dum`, `ratio`, `nctend`, …), PRNG-driven
//!   cloud-cover modules (RAND-MT), the dynamics core (DYN3BUG,
//!   RANDOMBUG), surface exchange, and a land component;
//! - procedurally generated **filler modules** ([`fillers`]) wire up by
//!   preferential attachment to give the graph its scale-free shape;
//! - [`experiment`] injects the paper's six experiments, four as source
//!   patches and two as run-configuration changes;
//! - the generated model is deterministic in `ModelConfig::seed`.

pub mod anchors;
pub mod config;
pub mod experiment;
pub mod fillers;
pub mod sites;

pub use anchors::ModelFile;
pub use config::{Component, ModelConfig};
pub use experiment::{BugSite, Experiment};
pub use sites::{patch_sites, LiteralSpan, PatchSite};

use std::collections::HashMap;

/// A fully generated model: source files plus bookkeeping.
#[derive(Debug, Clone)]
pub struct ModelSource {
    /// All source files (anchors, fillers, driver).
    pub files: Vec<ModelFile>,
    /// The configuration used.
    pub config: ModelConfig,
}

/// Generates the synthetic model for `config`.
pub fn generate(config: &ModelConfig) -> ModelSource {
    let mut files = anchors::anchor_files(config);
    let (fillers, run_calls) = fillers::filler_files(config);
    let driver = fillers::driver_file(config, &fillers, &run_calls);
    files.extend(fillers);
    files.push(driver);
    ModelSource {
        files,
        config: config.clone(),
    }
}

impl ModelSource {
    /// Applies an experiment's source patches, returning the modified
    /// model. Panics if a patch no longer matches (the bug site must
    /// exist exactly once — it is ground truth).
    pub fn apply(&self, experiment: Experiment) -> ModelSource {
        let mut out = self.clone();
        for (file, from, to) in experiment.source_patches() {
            let f = out
                .files
                .iter_mut()
                .find(|f| f.name == file)
                .unwrap_or_else(|| panic!("patch target {file} missing"));
            assert!(
                f.source.contains(from),
                "bug site not found in {file}: {from}"
            );
            f.source = f.source.replacen(from, to, 1);
        }
        out
    }

    /// Parses every file, returning ASTs and accumulated diagnostics.
    pub fn parse(&self) -> (Vec<rca_fortran::SourceFile>, Vec<rca_fortran::ParseError>) {
        let mut asts = Vec::with_capacity(self.files.len());
        let mut errs = Vec::new();
        for f in &self.files {
            let (ast, mut e) = rca_fortran::parse_source(&f.name, &f.source);
            asts.push(ast);
            errs.append(&mut e);
        }
        (asts, errs)
    }

    /// Lines of code per module (nonblank, noncomment), for Table 1's
    /// "50 largest modules" policy.
    pub fn loc_per_module(&self) -> Vec<(String, usize)> {
        self.files
            .iter()
            .map(|f| {
                let loc = f
                    .source
                    .lines()
                    .filter(|l| {
                        let t = l.trim();
                        !t.is_empty() && !t.starts_with('!')
                    })
                    .count();
                (f.name.trim_end_matches(".F90").to_string(), loc)
            })
            .collect()
    }

    /// Component of each module, for CAM-only restriction (§6) and Fig. 15.
    pub fn component_map(&self) -> HashMap<String, Component> {
        self.files
            .iter()
            .map(|f| (f.name.trim_end_matches(".F90").to_string(), f.component))
            .collect()
    }

    /// Total lines of generated Fortran.
    pub fn total_loc(&self) -> usize {
        self.loc_per_module().iter().map(|(_, l)| l).sum()
    }

    /// FNV-1a content hash over every file name and source text.
    ///
    /// Two models hash equal iff their generated Fortran is identical, so
    /// this is the cache key for compiled-program caches: experiment
    /// variants that differ only in run configuration (RAND-MT, AVX2)
    /// share one hash, while any source patch produces a new one.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for f in &self.files {
            eat(f.name.as_bytes());
            eat(&[0]);
            eat(f.source.as_bytes());
            eat(&[0xFF]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_model_parses_without_errors() {
        let model = generate(&ModelConfig::test());
        let (asts, errs) = model.parse();
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(asts.len(), model.files.len());
        // The paper's FC5 setup: anchors + fillers + driver.
        assert!(model.files.len() > 15 + ModelConfig::test().total_fillers());
    }

    #[test]
    fn experiments_apply_cleanly() {
        let model = generate(&ModelConfig::test());
        for e in Experiment::ALL {
            let patched = model.apply(e);
            let (_, errs) = patched.parse();
            assert!(errs.is_empty(), "{e:?}: {errs:?}");
        }
    }

    #[test]
    fn wsubbug_changes_exactly_one_line() {
        let model = generate(&ModelConfig::test());
        let bugged = model.apply(Experiment::WsubBug);
        let orig = &model
            .files
            .iter()
            .find(|f| f.name == "microp_aero.F90")
            .unwrap()
            .source;
        let new = &bugged
            .files
            .iter()
            .find(|f| f.name == "microp_aero.F90")
            .unwrap()
            .source;
        let diffs: Vec<_> = orig
            .lines()
            .zip(new.lines())
            .filter(|(a, b)| a != b)
            .collect();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].1.contains("2.00_r8"));
    }

    #[test]
    fn loc_accounting() {
        let model = generate(&ModelConfig::test());
        let locs = model.loc_per_module();
        assert_eq!(locs.len(), model.files.len());
        assert!(model.total_loc() > 500);
        let largest = locs.iter().map(|(_, l)| *l).max().unwrap();
        assert!(largest > 30);
    }

    #[test]
    fn component_map_covers_all() {
        let model = generate(&ModelConfig::test());
        let map = model.component_map();
        assert_eq!(map["micro_mg"], Component::Cam);
        assert_eq!(map["lnd_main"], Component::Land);
        assert_eq!(map["cam_driver"], Component::Coupler);
    }

    #[test]
    fn content_hash_tracks_source_changes() {
        let model = generate(&ModelConfig::test());
        assert_eq!(model.content_hash(), model.content_hash());
        assert_eq!(
            model.content_hash(),
            generate(&ModelConfig::test()).content_hash(),
            "deterministic generation must hash identically"
        );
        let patched = model.apply(Experiment::WsubBug);
        assert_ne!(model.content_hash(), patched.content_hash());
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&ModelConfig::test());
        let b = generate(&ModelConfig::test());
        for (x, y) in a.files.iter().zip(&b.files) {
            assert_eq!(x.source, y.source, "{}", x.name);
        }
    }
}
