//! Procedurally generated filler modules and the model driver.
//!
//! CESM's bulk is hundreds of peripheral physics/dynamics/land modules;
//! the paper's graph gets its scale-free shape from how they attach to the
//! tightly connected core (§5.2: "CAM contains two main processes ...
//! which taken together feature a set of highly connected modules (the
//! 'core')"). Fillers here wire up by **preferential attachment**: each new
//! module draws inputs from `state`, from core module arrays, and from
//! earlier fillers weighted by how often they have been chosen already —
//! yielding the heavy-tailed degree distribution of Figs. 4/9.
//!
//! Filler numerics are deliberately tame (relaxation toward convex
//! combinations of inputs, tanh-bounded), so the chaotic growth and the
//! FMA-sensitive cancellations stay concentrated in the core anchors, as
//! Table 1's selective-disablement ordering requires.

use crate::anchors::ModelFile;
use crate::config::{Component, ModelConfig};
use std::fmt::Write as _;

/// Deterministic xorshift64* generator for reproducible model synthesis.
pub(crate) struct Xor(u64);

impl Xor {
    pub(crate) fn new(seed: u64) -> Self {
        Xor(seed | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in [0, 1).
    pub(crate) fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n).
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// One attachable data source for filler statements.
#[derive(Clone)]
struct Source {
    /// Expression reading the source at column `i`.
    expr: String,
    /// Module that must be `use`d (module, only-name), if any.
    usage: Option<(String, String)>,
}

/// State-field and core-anchor sources available to physics fillers.
fn core_sources(component: Component) -> Vec<Source> {
    let mk = |expr: &str, usage: Option<(&str, &str)>| Source {
        expr: expr.to_string(),
        usage: usage.map(|(m, n)| (m.to_string(), n.to_string())),
    };
    match component {
        Component::Cam => vec![
            mk("(state%t(i) - 287.0_r8)", None),
            mk("state%q(i) * 80.0_r8", None),
            mk("state%u(i) * 0.1_r8", None),
            mk("state%omega(i)", None),
            mk("tlat(i) * 1.0e-6_r8", Some(("micro_mg", "tlat"))),
            mk("qctend(i) * 1.0e3_r8", Some(("micro_mg", "qctend"))),
            mk("cld(i)", Some(("cloud_diagnostics", "cld"))),
            mk("relhum(i)", Some(("cloud_diagnostics", "relhum"))),
            mk("flwds(i) * 0.003_r8", Some(("radlw", "flwds"))),
            mk("qrl(i) * 10.0_r8", Some(("radlw", "qrl"))),
            mk("fsds(i) * 0.003_r8", Some(("radsw", "fsds"))),
            mk("shf(i) * 0.05_r8", Some(("camsrfexch", "shf"))),
            mk("z3(i) * 0.001_r8", Some(("dycore", "z3"))),
            mk("tke(i)", Some(("vertical_diffusion", "tke"))),
        ],
        Component::Land => vec![
            mk("snowhland(i)", Some(("lnd_main", "snowhland"))),
            mk("soiltemp(i) * 0.003_r8", Some(("lnd_main", "soiltemp"))),
            mk("tref(i) * 0.003_r8", Some(("camsrfexch", "tref"))),
            mk("snowl(i) * 10.0_r8", Some(("micro_mg", "snowl"))),
        ],
        Component::Coupler => vec![],
    }
}

struct FillerSpec {
    prefix: &'static str,
    arr_prefix: &'static str,
    component: Component,
    count: usize,
}

/// Generates all filler modules plus the run-call list for the driver.
pub fn filler_files(config: &ModelConfig) -> (Vec<ModelFile>, Vec<String>) {
    let mut rng = Xor::new(config.seed ^ 0xF111E55);
    let specs = [
        FillerSpec {
            prefix: "phys_aux",
            arr_prefix: "pa",
            component: Component::Cam,
            count: config.n_phys_fillers,
        },
        FillerSpec {
            prefix: "dyn_aux",
            arr_prefix: "da",
            component: Component::Cam,
            count: config.n_dyn_fillers,
        },
        FillerSpec {
            prefix: "lnd_aux",
            arr_prefix: "la",
            component: Component::Land,
            count: config.n_lnd_fillers,
        },
    ];
    let mut files = Vec::new();
    let mut run_calls = Vec::new();
    let mut output_counter = 0usize;

    for spec in specs {
        // Preferential-attachment pool of previously created filler arrays.
        let mut pool: Vec<Source> = Vec::new();
        let base = match spec.prefix {
            "dyn_aux" => {
                let mut v = vec![
                    Source {
                        expr: "state%u(i) * 0.1_r8".into(),
                        usage: None,
                    },
                    Source {
                        expr: "state%v(i) * 0.1_r8".into(),
                        usage: None,
                    },
                    Source {
                        expr: "state%vort(i)".into(),
                        usage: None,
                    },
                ];
                v.extend(core_sources(Component::Cam).into_iter().take(4));
                v
            }
            _ => core_sources(spec.component),
        };
        for k in 1..=spec.count {
            let module = format!("{}_{:03}", spec.prefix, k);
            // Size variation: a few giant modules so "50 largest by LoC"
            // (Table 1) lands on fillers, not the core.
            let size_boost = if rng.f64() < 0.06 { 4 } else { 1 };
            let n_arrays = config.arrays_per_filler.max(2);
            let n_subs = config.subs_per_filler.max(1);
            let n_stmts = config.stmts_per_sub.max(3) * size_boost;

            let arrays: Vec<String> = (0..n_arrays)
                .map(|a| format!("{}{:03}_{}", spec.arr_prefix, k, (b'a' + a as u8) as char))
                .collect();

            // Choose external inputs: mix of base sources and pool
            // (preferential: duplicated entries raise pick probability).
            let n_inputs = 2 + rng.below(3);
            let mut inputs: Vec<Source> = Vec::new();
            for _ in 0..n_inputs {
                let from_pool = !pool.is_empty() && rng.f64() < 0.55;
                let src = if from_pool {
                    let pick = pool[rng.below(pool.len())].clone();
                    // Preferential attachment: re-insert a copy.
                    pool.push(pick.clone());
                    pick
                } else {
                    base[rng.below(base.len())].clone()
                };
                if !inputs.iter().any(|s| s.expr == src.expr) {
                    inputs.push(src);
                }
            }

            let mut src = String::new();
            let _ = writeln!(src, "module {module}");
            let _ = writeln!(src, "  use shr_kind_mod, only: r8 => shr_kind_r8");
            let _ = writeln!(src, "  use ppgrid, only: pcols");
            if spec.component == Component::Cam || spec.prefix == "dyn_aux" {
                let _ = writeln!(src, "  use camstate, only: state");
            }
            let mut used: Vec<(String, Vec<String>)> = Vec::new();
            for inp in &inputs {
                if let Some((m, n)) = &inp.usage {
                    match used.iter_mut().find(|(um, _)| um == m) {
                        Some((_, names)) => {
                            if !names.contains(n) {
                                names.push(n.clone());
                            }
                        }
                        None => used.push((m.clone(), vec![n.clone()])),
                    }
                }
            }
            for (m, names) in &used {
                let _ = writeln!(src, "  use {m}, only: {}", names.join(", "));
            }
            let _ = writeln!(src, "  implicit none");
            for a in &arrays {
                let _ = writeln!(src, "  real(r8) :: {a}(pcols)");
            }
            let _ = writeln!(src, "contains");

            for s in 1..=n_subs {
                let sub = format!("{module}_run{s}");
                let _ = writeln!(src, "  subroutine {sub}(ncol)");
                let _ = writeln!(src, "    integer, intent(in) :: ncol");
                let _ = writeln!(src, "    integer :: i");
                let _ = writeln!(src, "    do i = 1, ncol");
                for t in 0..n_stmts {
                    let target = &arrays[(t + s) % arrays.len()];
                    let keep = 0.70 + 0.25 * rng.f64();
                    let w = (1.0 - keep) * 0.8;
                    // Alternate statement shapes; all bounded relaxations.
                    // Right-multiply relaxation forms: the interpreter's
                    // FMA contraction (like a compiler) fuses the *left*
                    // product of an add, so these statements carry no FMA
                    // sites — peripheral modules stay insensitive to AVX2,
                    // concentrating Table 1's signal in the core.
                    let _ = keep;
                    let line = match t % 3 {
                        0 => {
                            let inp = &inputs[rng.below(inputs.len())];
                            format!(
                                "      {target}(i) = {target}(i) + {w:.4}_r8 * ({} - {target}(i))",
                                inp.expr
                            )
                        }
                        1 => {
                            let other = &arrays[rng.below(arrays.len())];
                            format!(
                                "      {target}(i) = {target}(i) + {w:.4}_r8 * (tanh({other}(i)) - {target}(i))",
                            )
                        }
                        _ => {
                            let inp = &inputs[rng.below(inputs.len())];
                            let other = &arrays[rng.below(arrays.len())];
                            format!(
                                "      {target}(i) = ({target}(i) + {other}(i) + {w:.4}_r8 * {}) / 2.1_r8",
                                inp.expr
                            )
                        }
                    };
                    let _ = writeln!(src, "{line}");
                }
                let _ = writeln!(src, "    end do");
                if s == 1 && config.filler_output_stride > 0 && k % config.filler_output_stride == 0
                {
                    output_counter += 1;
                    let _ = writeln!(
                        src,
                        "    call outfld('AUX{:03}', {}, ncol)",
                        output_counter, arrays[0]
                    );
                }
                let _ = writeln!(src, "  end subroutine {sub}");
                run_calls.push(format!("call {sub}(pcols)"));
            }
            let _ = writeln!(src, "end module {module}");

            // This module's first array becomes attachable for later ones.
            pool.push(Source {
                expr: format!("{}(i)", arrays[0]),
                usage: Some((module.clone(), arrays[0].clone())),
            });

            files.push(ModelFile {
                name: format!("{module}.F90"),
                component: spec.component,
                source: src,
            });
        }
    }
    (files, run_calls)
}

/// Emits the top-level driver module: `cam_init(pert)` and
/// `cam_run_step()` calling the whole model in CESM order.
pub fn driver_file(
    config: &ModelConfig,
    filler_modules: &[ModelFile],
    run_calls: &[String],
) -> ModelFile {
    let mut src = String::new();
    src.push_str(crate::anchors::driver_preamble());
    for f in filler_modules {
        let module = f.name.trim_end_matches(".F90");
        let subs: Vec<String> = run_calls
            .iter()
            .filter(|c| c.contains(&format!("call {module}_run")))
            .map(|c| {
                c.trim_start_matches("call ")
                    .split('(')
                    .next()
                    .unwrap()
                    .to_string()
            })
            .collect();
        if !subs.is_empty() {
            let _ = writeln!(src, "  use {module}, only: {}", subs.join(", "));
        }
    }
    src.push_str("  implicit none\ncontains\n");
    src.push_str(
        r#"  subroutine cam_init(pert)
    real(r8), intent(in) :: pert
    integer :: i
    do i = 1, pcols
      state%t(i) = 287.0_r8 + 8.0_r8 * sin(0.35_r8 * real(i)) + pert * real(i)
      state%q(i) = max(0.0095_r8 + 0.0035_r8 * cos(0.21_r8 * real(i)), 1.0e-6_r8)
      state%qc(i) = 2.0e-5_r8 + 1.0e-5_r8 * (1.0_r8 + sin(0.5_r8 * real(i)))
      state%qi(i) = 1.0e-5_r8 + 0.5e-5_r8 * (1.0_r8 + cos(0.4_r8 * real(i)))
      state%nc(i) = 0.05_r8 + 0.01_r8 * sin(0.3_r8 * real(i))
      state%ni(i) = 0.02_r8 + 0.005_r8 * cos(0.6_r8 * real(i))
      state%u(i) = 8.0_r8 + 2.5_r8 * sin(0.11_r8 * real(i))
      state%v(i) = 1.5_r8 + 1.0_r8 * cos(0.23_r8 * real(i))
      state%omega(i) = 0.01_r8 * sin(0.9_r8 * real(i))
      state%ps(i) = 98000.0_r8 + 600.0_r8 * sin(0.13_r8 * real(i))
      state%pmid(i) = 95000.0_r8 + 500.0_r8 * sin(0.13_r8 * real(i))
      state%zm(i) = 450.0_r8 + 60.0_r8 * cos(0.19_r8 * real(i))
      state%vort(i) = 0.31_r8 + 0.17_r8 * (1.0_r8 + sin(0.17_r8 * real(i) + 0.3_r8))
    end do
  end subroutine cam_init

  subroutine cam_run_step()
    call dyn_run(pcols)
    call dyn_update_state(pcols)
    call vertical_diffusion_tend(pcols)
    call microp_aero_run(pcols)
    call micro_mg_tend(pcols)
    call cloud_diagnostics_calc(pcols)
    call cldfrc_lw(pcols)
    call cldfrc_sw(pcols)
    call radlw_run(pcols)
    call radsw_run(pcols)
    call srfflx_run(pcols)
"#,
    );
    for call in run_calls {
        let _ = writeln!(src, "    {call}");
    }
    src.push_str(
        r#"    call lnd_run(pcols)
  end subroutine cam_run_step
end module cam_driver
"#,
    );
    let _ = config;
    ModelFile {
        name: "cam_driver.F90".to_string(),
        component: Component::Coupler,
        source: src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;

    #[test]
    fn fillers_parse() {
        let cfg = ModelConfig::test();
        let (files, calls) = filler_files(&cfg);
        assert_eq!(files.len(), cfg.total_fillers());
        assert!(!calls.is_empty());
        for f in &files {
            let (_, errs) = parse_source(&f.name, &f.source);
            assert!(errs.is_empty(), "{}: {errs:?}\n{}", f.name, f.source);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ModelConfig::test();
        let (a, _) = filler_files(&cfg);
        let (b, _) = filler_files(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn driver_parses_and_calls_everything() {
        let cfg = ModelConfig::test();
        let (files, calls) = filler_files(&cfg);
        let driver = driver_file(&cfg, &files, &calls);
        let (ast, errs) = parse_source(&driver.name, &driver.source);
        assert!(errs.is_empty(), "{errs:?}\n{}", driver.source);
        let m = &ast.modules[0];
        assert_eq!(m.name, "cam_driver");
        assert_eq!(m.subprograms.len(), 2);
        // The step subroutine calls core + all filler runners + land.
        let step = &m.subprograms[1];
        let n_calls = count_calls(&step.body);
        assert_eq!(n_calls, 12 + calls.len());
    }

    fn count_calls(stmts: &[rca_fortran::ast::Stmt]) -> usize {
        stmts
            .iter()
            .filter(|s| matches!(s, rca_fortran::ast::Stmt::Call { .. }))
            .count()
    }

    #[test]
    fn some_fillers_write_history() {
        let cfg = ModelConfig::test();
        let (files, _) = filler_files(&cfg);
        let with_out = files
            .iter()
            .filter(|f| f.source.contains("call outfld"))
            .count();
        assert!(with_out >= 2, "expected filler outputs, got {with_out}");
    }

    #[test]
    fn land_fillers_are_land_component() {
        let cfg = ModelConfig::test();
        let (files, _) = filler_files(&cfg);
        let lnd = files
            .iter()
            .filter(|f| f.component == Component::Land)
            .count();
        assert_eq!(lnd, cfg.n_lnd_fillers);
    }
}
