//! Patch-site enumeration for fault-injection campaigns.
//!
//! The paper evaluates root-cause analysis on six hand-injected defects;
//! a campaign needs *arbitrary* injection sites with known ground truth.
//! This module scans the generated Fortran text and enumerates every
//! assignment statement a mutation engine can perturb, together with the
//! bookkeeping a scorer needs: the owning module/subprogram, the assigned
//! variable's canonical name (the ground-truth [`crate::BugSite`]), and
//! which mutation operators apply — nonzero float literals (constant
//! perturbation), spaced `*`/`-` operators (operator swap), `max(`/`min(`
//! intrinsics (comparison flip), and `a*b + c` shapes (FMA-contraction
//! sensitivity for per-module AVX2 toggles).
//!
//! The scan is purely textual, which is exactly right here: the model
//! generator emits one statement per line with spaced binary operators, so
//! byte offsets into a line are stable patch coordinates, and a patched
//! model re-parses through the full `rca-fortran` front end (campaigns
//! assert this; malformed mutations would surface as parse errors).

use crate::ModelSource;
use std::collections::{HashMap, HashSet};

/// One float literal inside an assignment's right-hand side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiteralSpan {
    /// Byte offset of the literal's first character in the line.
    pub start: usize,
    /// Byte offset one past the `_r8` kind suffix.
    pub end: usize,
    /// Parsed value (always finite and nonzero).
    pub value: f64,
}

/// A mutable assignment statement in the generated model.
#[derive(Debug, Clone)]
pub struct PatchSite {
    /// Source file (e.g. `"microp_aero.F90"`).
    pub file: String,
    /// Module containing the assignment.
    pub module: String,
    /// Subprogram containing the assignment.
    pub subprogram: String,
    /// 0-based line index into the file's source.
    pub line: usize,
    /// Canonical name of the assigned variable (`state%omega(i)` →
    /// `omega`), the ground-truth key for [`crate::BugSite`].
    pub target: String,
    /// The original line text.
    pub text: String,
    /// Nonzero float literals with `_r8` kind suffix in the RHS.
    pub literals: Vec<LiteralSpan>,
    /// Byte offsets of swappable ` * ` operators in the RHS.
    pub mul_ops: Vec<usize>,
    /// Byte offsets of swappable binary ` - ` operators in the RHS.
    pub minus_ops: Vec<usize>,
    /// Byte offsets of swappable binary ` + ` operators in the RHS
    /// (additive sign-flip targets).
    pub plus_ops: Vec<usize>,
    /// Byte offsets of `max(` / `min(` intrinsics in the RHS (`true` for
    /// `max`).
    pub minmax_ops: Vec<(usize, bool)>,
    /// Whether the RHS carries an FMA-contractible shape (`a*b + c`):
    /// the statement's value changes under per-module AVX2/FMA toggles.
    pub fma_shape: bool,
}

/// Enumerates every mutable assignment site in the model, in file order.
///
/// Skipped statements: declarations, `do`/`end`/`call`/`use` lines, and
/// assignments outside a subprogram. Sites in subprograms the driver can
/// never reach (no textual call chain from `cam_init` / `cam_run_step`)
/// are dropped up front: a mutation there is provably dead — it can
/// neither perturb an output nor be localized, so injecting it would
/// silently corrupt campaign ground truth. Callers typically filter
/// further — by component (CAM-only campaigns) and by metagraph presence
/// (coverage filtering can drop a module entirely; injecting there would
/// be unscorable).
pub fn patch_sites(model: &ModelSource) -> Vec<PatchSite> {
    let live = live_subprograms(model);
    let mut sites = Vec::new();
    for f in &model.files {
        let mut module = String::new();
        let mut subprogram: Option<String> = None;
        for (idx, raw) in f.source.lines().enumerate() {
            let t = raw.trim();
            if let Some(rest) = t.strip_prefix("module ") {
                module = rest.trim().to_string();
                continue;
            }
            if t.starts_with("end subroutine") || t.starts_with("end function") {
                subprogram = None;
                continue;
            }
            if let Some(rest) = t.strip_prefix("subroutine ") {
                subprogram = Some(rest.split('(').next().unwrap_or(rest).trim().to_string());
                continue;
            }
            let Some(sub) = &subprogram else { continue };
            if !live.contains(sub.as_str()) {
                continue;
            }
            if !is_assignment(t) {
                continue;
            }
            let Some(eq) = raw.find(" = ") else { continue };
            let Some(target) = canonical_target(&raw[..eq]) else {
                continue;
            };
            let rhs_start = eq + 3;
            let literals = scan_literals(raw, rhs_start);
            let mul_ops = scan_op(raw, rhs_start, " * ");
            let minus_ops = scan_op(raw, rhs_start, " - ");
            let mut minmax_ops: Vec<(usize, bool)> = scan_op(raw, rhs_start, "max(")
                .into_iter()
                .map(|p| (p, true))
                .chain(
                    scan_op(raw, rhs_start, "min(")
                        .into_iter()
                        .map(|p| (p, false)),
                )
                .collect();
            minmax_ops.sort_unstable();
            // FMA contraction fuses the left product of an add: `a*b + c`.
            let plus_ops = scan_op(raw, rhs_start, " + ");
            let fma_shape = mul_ops.iter().any(|&m| plus_ops.iter().any(|&p| p > m));
            sites.push(PatchSite {
                file: f.name.clone(),
                module: module.clone(),
                subprogram: sub.clone(),
                line: idx,
                target,
                text: raw.to_string(),
                literals,
                mul_ops,
                minus_ops,
                plus_ops,
                minmax_ops,
                fma_shape,
            });
        }
    }
    sites
}

/// Subprogram names the driver can reach: the transitive closure of
/// textual call/function references starting from the host entry points
/// (`cam_init`, `cam_run_step` — the two subroutines the harness
/// invokes). This is the source-level twin of `rca_analysis::reach`'s
/// IR call-graph walk; it is conservative the only safe way — a name
/// collision merges liveness, so nothing reachable is ever dropped.
fn live_subprograms(model: &ModelSource) -> HashSet<String> {
    // Pass 1: every defined subprogram, with the set of *defined* names
    // its body references (identifier-token match, so `call foo(...)`,
    // `x = f(y)`, and argument-position references all count as edges).
    let mut defined: HashSet<String> = HashSet::new();
    for f in &model.files {
        for raw in f.source.lines() {
            let t = raw.trim();
            if let Some(name) = subprogram_def(t) {
                defined.insert(name.to_string());
            }
        }
    }
    let mut edges: HashMap<String, HashSet<String>> = HashMap::new();
    for f in &model.files {
        let mut current: Option<String> = None;
        for raw in f.source.lines() {
            let t = raw.trim();
            if t.starts_with("end subroutine") || t.starts_with("end function") {
                current = None;
                continue;
            }
            if let Some(name) = subprogram_def(t) {
                current = Some(name.to_string());
                continue;
            }
            let Some(cur) = &current else { continue };
            for ident in identifiers(t) {
                if ident != cur && defined.contains(ident) {
                    edges
                        .entry(cur.clone())
                        .or_default()
                        .insert(ident.to_string());
                }
            }
        }
    }
    // Pass 2: closure from the entry points.
    let mut live: HashSet<String> = HashSet::new();
    let mut work: Vec<String> = ["cam_init", "cam_run_step"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    while let Some(name) = work.pop() {
        if !live.insert(name.clone()) {
            continue;
        }
        if let Some(callees) = edges.get(&name) {
            work.extend(callees.iter().cloned());
        }
    }
    live
}

/// The defined name if a trimmed line opens a subroutine or function.
fn subprogram_def(t: &str) -> Option<&str> {
    let rest = t.strip_prefix("subroutine ").or_else(|| {
        t.strip_prefix("function ")
            .or_else(|| t.strip_prefix("real(r8) function "))
    })?;
    let name = rest.split('(').next().unwrap_or(rest).trim();
    (!name.is_empty()).then_some(name)
}

/// ASCII identifier tokens of a line, in order.
fn identifiers(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|tok| {
            !tok.is_empty() && tok.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
        })
}

/// Whether a trimmed line is a mutable assignment statement.
fn is_assignment(t: &str) -> bool {
    if !t.contains(" = ") {
        return false;
    }
    if t.contains("::") || t.contains("=>") {
        return false; // declarations and renamed imports
    }
    const SKIP: [&str; 10] = [
        "!",
        "do ",
        "end",
        "call ",
        "use ",
        "if",
        "else",
        "module",
        "subroutine",
        "function",
    ];
    !SKIP.iter().any(|p| t.starts_with(p))
}

/// Canonical variable name of an assignment's left-hand side:
/// `state%omega(i)` → `omega`, `wsub(i)` → `wsub`, `dum` → `dum`.
fn canonical_target(lhs: &str) -> Option<String> {
    let lhs = lhs.trim();
    let base = lhs.split('(').next()?.trim();
    let name = base.rsplit('%').next()?.trim();
    let ok = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
    ok.then(|| name.to_string())
}

/// Byte offsets of `needle` occurrences at or after `from`.
fn scan_op(line: &str, from: usize, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = from;
    while let Some(i) = line[pos..].find(needle) {
        out.push(pos + i);
        pos += i + needle.len();
    }
    out
}

/// Finds nonzero float literals of the form `0.25_r8` / `8.1328e-3_r8`
/// at or after `from`. The span covers mantissa through kind suffix, so a
/// mutation can replace it wholesale.
fn scan_literals(line: &str, from: usize) -> Vec<LiteralSpan> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = from;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // A literal must not continue an identifier (`pa001_a`).
        if i > 0 {
            let prev = bytes[i - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                continue;
            }
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'.' {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
        if i < bytes.len() && matches!(bytes[i], b'e' | b'E') {
            let mut j = i + 1;
            if j < bytes.len() && matches!(bytes[j], b'+' | b'-') {
                j += 1;
            }
            if j < bytes.len() && bytes[j].is_ascii_digit() {
                i = j;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
        }
        if line[i..].starts_with("_r8") {
            let end = i + 3;
            if let Ok(value) = line[start..i].parse::<f64>() {
                if value != 0.0 && value.is_finite() {
                    out.push(LiteralSpan { start, end, value });
                }
            }
            i = end;
        }
    }
    out
}

impl ModelSource {
    /// Returns a copy of the model with one line of one file replaced —
    /// the primitive under seeded mutation campaigns. Panics if the file
    /// or line does not exist (patch coordinates come from
    /// [`patch_sites`] over the same model, so a miss is a caller bug).
    pub fn with_patched_line(&self, file: &str, line: usize, new_line: &str) -> ModelSource {
        let mut out = self.clone();
        let f = out
            .files
            .iter_mut()
            .find(|f| f.name == file)
            .unwrap_or_else(|| panic!("patch target {file} missing"));
        let mut lines: Vec<&str> = f.source.lines().collect();
        assert!(line < lines.len(), "{file} has no line {line}");
        lines[line] = new_line;
        let mut source = lines.join("\n");
        if f.source.ends_with('\n') {
            source.push('\n');
        }
        f.source = source;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, ModelConfig};

    #[test]
    fn enumerates_known_anchor_sites() {
        let model = generate(&ModelConfig::test());
        let sites = patch_sites(&model);
        assert!(sites.len() > 100, "only {} sites", sites.len());
        // The WSUBBUG line is a site with a literal, a mul, and a max.
        let wsub = sites
            .iter()
            .find(|s| s.module == "microp_aero" && s.target == "wsub")
            .expect("wsub site");
        assert_eq!(wsub.subprogram, "microp_aero_run");
        assert!(wsub.text.contains("0.20_r8"));
        assert!(!wsub.literals.is_empty());
        assert!(!wsub.mul_ops.is_empty());
        assert!(wsub.minmax_ops.iter().any(|&(_, is_max)| is_max));
    }

    #[test]
    fn derived_type_targets_are_canonical() {
        let model = generate(&ModelConfig::test());
        let sites = patch_sites(&model);
        let omega = sites
            .iter()
            .find(|s| s.module == "dyn_update" && s.target == "omega")
            .expect("state%omega assignment");
        assert!(omega.text.contains("state%omega"));
    }

    #[test]
    fn literal_spans_parse_and_slice_back() {
        let model = generate(&ModelConfig::test());
        for s in patch_sites(&model) {
            for lit in &s.literals {
                let span = &s.text[lit.start..lit.end];
                assert!(span.ends_with("_r8"), "{span} in {}", s.text);
                let value: f64 = span.trim_end_matches("_r8").parse().expect("parses");
                assert_eq!(value, lit.value);
                assert!(value != 0.0);
            }
        }
    }

    #[test]
    fn operators_are_inside_rhs_and_spaced() {
        let model = generate(&ModelConfig::test());
        for s in patch_sites(&model) {
            let eq = s.text.find(" = ").unwrap();
            for &p in s.mul_ops.iter().chain(&s.minus_ops) {
                assert!(p >= eq + 3, "operator in LHS: {}", s.text);
            }
            for &p in &s.mul_ops {
                assert_eq!(&s.text[p..p + 3], " * ");
            }
            for &p in &s.minus_ops {
                assert_eq!(&s.text[p..p + 3], " - ");
            }
        }
    }

    #[test]
    fn exponent_minus_is_never_a_swap_site() {
        let model = generate(&ModelConfig::test());
        for s in patch_sites(&model) {
            for &p in &s.minus_ops {
                // A spaced binary minus can never sit inside `1.0e-6_r8`.
                assert!(!s.text[..p].ends_with('e') && !s.text[..p].ends_with('E'));
            }
        }
    }

    #[test]
    fn plus_ops_are_spaced_rhs_operators() {
        let model = generate(&ModelConfig::test());
        let sites = patch_sites(&model);
        assert!(
            sites.iter().any(|s| !s.plus_ops.is_empty()),
            "the model must expose additive sign-flip targets"
        );
        for s in &sites {
            let eq = s.text.find(" = ").unwrap();
            for &p in &s.plus_ops {
                assert!(p >= eq + 3, "operator in LHS: {}", s.text);
                assert_eq!(&s.text[p..p + 3], " + ");
                // A spaced binary plus can never sit inside `1.0e+6_r8`.
                assert!(!s.text[..p].ends_with('e') && !s.text[..p].ends_with('E'));
            }
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let model = generate(&ModelConfig::test());
        let a = patch_sites(&model);
        let b = patch_sites(&model);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.line, y.line);
        }
    }

    #[test]
    fn patched_line_changes_exactly_one_line_and_reparses() {
        let model = generate(&ModelConfig::test());
        let sites = patch_sites(&model);
        let wsub = sites
            .iter()
            .find(|s| s.module == "microp_aero" && s.target == "wsub")
            .unwrap();
        let new_line = wsub.text.replace("0.20_r8", "2.00_r8");
        let patched = model.with_patched_line(&wsub.file, wsub.line, &new_line);
        let (_, errs) = patched.parse();
        assert!(errs.is_empty(), "{errs:?}");
        let orig = &model
            .files
            .iter()
            .find(|f| f.name == wsub.file)
            .unwrap()
            .source;
        let new = &patched
            .files
            .iter()
            .find(|f| f.name == wsub.file)
            .unwrap()
            .source;
        let diffs = orig
            .lines()
            .zip(new.lines())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        assert_eq!(orig.lines().count(), new.lines().count());
    }

    #[test]
    fn provably_dead_subprogram_sites_are_dropped() {
        let mut model = generate(&ModelConfig::test());
        let baseline = patch_sites(&model);
        // Inject an uncalled subroutine with a perfectly mutable
        // assignment: a literal, a multiply, and a max.
        let f = model
            .files
            .iter_mut()
            .find(|f| f.name == "microp_aero.F90")
            .unwrap();
        f.source = f.source.replace(
            "contains",
            "contains\n  subroutine never_called_inject(x)\n    real(r8), intent(inout) :: x\n    x = max(x * 0.25_r8, 0.0_r8)\n  end subroutine never_called_inject\n",
        );
        let sites = patch_sites(&model);
        assert!(
            !sites.iter().any(|s| s.subprogram == "never_called_inject"),
            "a site in an unreachable subprogram is provably dead"
        );
        // Nothing else moved: the live universe is unchanged.
        assert_eq!(sites.len(), baseline.len());
        // Wiring the subroutine into the driver chain revives the site.
        let f = model
            .files
            .iter_mut()
            .find(|f| f.name == "microp_aero.F90")
            .unwrap();
        f.source = f.source.replace(
            "  subroutine microp_aero_run(",
            "  subroutine now_called_hook()\n    real(r8) :: x\n    x = max(x * 0.25_r8, 0.0_r8)\n  end subroutine now_called_hook\n\n  subroutine microp_aero_run(",
        );
        let f_src = &mut model
            .files
            .iter_mut()
            .find(|f| f.name == "microp_aero.F90")
            .unwrap()
            .source;
        *f_src = f_src.replacen("    wsub", "    call now_called_hook()\n    wsub", 1);
        let sites = patch_sites(&model);
        assert!(
            sites.iter().any(|s| s.subprogram == "now_called_hook"),
            "a site reachable from the driver chain is enumerated"
        );
    }

    #[test]
    fn reachability_filter_keeps_pristine_enumeration_identical() {
        // The pristine generated model has no dead subprograms, so the
        // tightening must be a no-op — campaigns planned from recorded
        // seeds stay byte-identical.
        let model = generate(&ModelConfig::test());
        let sites = patch_sites(&model);
        let live = super::live_subprograms(&model);
        let mut subs: HashSet<&str> = HashSet::new();
        for f in &model.files {
            let mut in_sub = false;
            for raw in f.source.lines() {
                let t = raw.trim();
                if t.starts_with("subroutine ") {
                    in_sub = true;
                    subs.insert(super::subprogram_def(t).unwrap());
                } else if t.starts_with("end subroutine") {
                    in_sub = false;
                }
                let _ = in_sub;
            }
        }
        for s in &subs {
            assert!(live.contains(*s), "pristine subprogram {s} deemed dead");
        }
        assert!(sites.len() > 100, "only {} sites", sites.len());
    }

    #[test]
    fn fma_shapes_exist_in_core_modules() {
        let model = generate(&ModelConfig::test());
        let sites = patch_sites(&model);
        let fma_modules: Vec<&str> = sites
            .iter()
            .filter(|s| s.fma_shape)
            .map(|s| s.module.as_str())
            .collect();
        assert!(
            fma_modules.contains(&"micro_mg"),
            "the MG kernel must carry FMA shapes; got {fma_modules:?}"
        );
    }
}
