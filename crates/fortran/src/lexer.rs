//! Free-form Fortran lexer.
//!
//! Handles the lexical quirks that made the paper resort to three parsers
//! (§4.2): `&` continuation lines (CESM contains statements exceeding 3500
//! characters), `!` comments (not inside strings), doubled-quote escapes,
//! `d`/`e` exponents, kind suffixes (`1.0_r8`), dot-operators (`.and.`,
//! `.lt.`) versus real literals with leading/trailing dots, and `;`
//! statement separators.

use crate::error::ParseError;
use crate::token::{LogicalLine, Op, Tok};

/// Lexes a whole source file into logical lines.
///
/// Errors are collected per line; offending statements are skipped (the
/// paper's pipeline "is able to handle all but 10 assignment statements" —
/// robustness over strictness).
pub fn lex(source: &str) -> (Vec<LogicalLine>, Vec<ParseError>) {
    let mut lines = Vec::new();
    let mut errors = Vec::new();
    for (joined, start_line) in join_continuations(source) {
        match lex_statement(&joined, start_line) {
            Ok(tokens_groups) => {
                for tokens in tokens_groups {
                    if !tokens.is_empty() {
                        lines.push(LogicalLine {
                            tokens,
                            line: start_line,
                        });
                    }
                }
            }
            Err(e) => errors.push(e),
        }
    }
    (lines, errors)
}

/// Joins physical lines across `&` continuations and strips comments.
/// Returns `(logical_text, first_physical_line)` pairs.
fn join_continuations(source: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    let mut pending: Option<(String, u32)> = None;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut text = trimmed.to_string();
        // Leading '&' continues the previous line's token stream.
        if let Some((prev, start)) = pending.take() {
            let cont = text
                .strip_prefix('&')
                .map_or(text.as_str(), str::trim_start);
            text = format!("{prev} {cont}");
            pending = Some((text, start));
        } else {
            pending = Some((text, lineno));
        }
        let (cur, start) = pending.take().expect("just set");
        if let Some(head) = cur.trim_end().strip_suffix('&') {
            pending = Some((head.trim_end().to_string(), start));
        } else {
            out.push((cur, start));
        }
    }
    if let Some(p) = pending {
        out.push(p); // trailing continuation: emit what we have
    }
    out
}

/// Removes a `!` comment, respecting string literals.
fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match quote {
            Some(q) => {
                out.push(c);
                if c == q {
                    quote = None; // doubled quotes re-enter immediately; fine
                }
            }
            None => {
                if c == '!' {
                    break;
                }
                if c == '\'' || c == '"' {
                    quote = Some(c);
                }
                out.push(c);
            }
        }
    }
    out
}

/// Lexes one logical line; `;` splits it into multiple statements.
fn lex_statement(text: &str, line: u32) -> Result<Vec<Vec<Tok>>, ParseError> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut groups: Vec<Vec<Tok>> = vec![Vec::new()];
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == ';' {
            groups.push(Vec::new());
            i += 1;
            continue;
        }
        let toks = groups.last_mut().expect("non-empty");
        // String literals with doubled-quote escaping.
        if c == '\'' || c == '"' {
            let quote = c;
            let mut s = String::new();
            i += 1;
            loop {
                if i >= chars.len() {
                    return Err(ParseError::new(line, "unterminated string literal"));
                }
                if chars[i] == quote {
                    if i + 1 < chars.len() && chars[i + 1] == quote {
                        s.push(quote);
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            toks.push(Tok::Str(s));
            continue;
        }
        // Numbers: digits, or '.' followed by a digit.
        if c.is_ascii_digit() || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let (tok, next) = lex_number(&chars, i, line)?;
            toks.push(tok);
            i = next;
            continue;
        }
        // Dot operators: .and. .or. .not. .true. .false. .eq. etc.
        if c == '.' {
            if let Some((tok, next)) = lex_dot_word(&chars, i) {
                toks.push(tok);
                i = next;
                continue;
            }
            return Err(ParseError::new(line, format!("stray '.' at column {i}")));
        }
        // Identifiers.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect::<String>().to_lowercase();
            toks.push(Tok::Ident(word));
            continue;
        }
        // Operators and punctuation.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        let tok2 = match two.as_str() {
            "**" => Some(Tok::Op(Op::Pow)),
            "//" => Some(Tok::Op(Op::Concat)),
            "==" => Some(Tok::Op(Op::Eq)),
            "/=" => Some(Tok::Op(Op::Ne)),
            "<=" => Some(Tok::Op(Op::Le)),
            ">=" => Some(Tok::Op(Op::Ge)),
            "=>" => Some(Tok::Arrow),
            "::" => Some(Tok::DoubleColon),
            _ => None,
        };
        if let Some(t) = tok2 {
            toks.push(t);
            i += 2;
            continue;
        }
        let tok1 = match c {
            '+' => Tok::Op(Op::Add),
            '-' => Tok::Op(Op::Sub),
            '*' => Tok::Op(Op::Mul),
            '/' => Tok::Op(Op::Div),
            '<' => Tok::Op(Op::Lt),
            '>' => Tok::Op(Op::Gt),
            '=' => Tok::Assign,
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            ',' => Tok::Comma,
            ':' => Tok::Colon,
            '%' => Tok::Percent,
            other => {
                return Err(ParseError::new(
                    line,
                    format!("unexpected character '{other}'"),
                ))
            }
        };
        toks.push(tok1);
        i += 1;
    }
    Ok(groups)
}

/// Lexes a numeric literal starting at `i`. Handles `123`, `1.5`, `1.`,
/// `.5` (caller guarantees a digit follows the dot), `1e-3`, `8.1328d-3`,
/// and kind suffixes `_r8`/`_8` (parsed and discarded).
fn lex_number(chars: &[char], mut i: usize, line: u32) -> Result<(Tok, usize), ParseError> {
    let start = i;
    let mut is_real = false;
    while i < chars.len() && chars[i].is_ascii_digit() {
        i += 1;
    }
    if i < chars.len() && chars[i] == '.' {
        // Don't swallow dot-operators: `1.eq.2` — dot followed by a letter
        // that forms a known dot-word is left alone. A digit or exponent
        // continues the number.
        let next = chars.get(i + 1);
        let looks_like_dotop =
            matches!(next, Some(c) if c.is_ascii_alphabetic()) && lex_dot_word(chars, i).is_some();
        if !looks_like_dotop {
            is_real = true;
            i += 1;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    // Exponent: e/d (case-insensitive) with optional sign.
    if i < chars.len() && matches!(chars[i], 'e' | 'E' | 'd' | 'D') {
        let mut j = i + 1;
        if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
            j += 1;
        }
        if j < chars.len() && chars[j].is_ascii_digit() {
            is_real = true;
            i = j;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let mut text: String = chars[start..i].iter().collect();
    // Kind suffix `_r8` / `_4`: consume and ignore.
    if i < chars.len() && chars[i] == '_' {
        let mut j = i + 1;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        if j > i + 1 {
            i = j;
        }
    }
    if is_real {
        // Fortran 'd' exponent == 'e' for f64 parsing.
        text = text.replace(['d', 'D'], "e");
        let v: f64 = text
            .parse()
            .map_err(|_| ParseError::new(line, format!("bad real literal '{text}'")))?;
        Ok((Tok::Real(v), i))
    } else {
        let v: i64 = text
            .parse()
            .map_err(|_| ParseError::new(line, format!("bad integer literal '{text}'")))?;
        Ok((Tok::Int(v), i))
    }
}

/// Recognizes `.word.` operators/literals at `i` (which points at `.`).
fn lex_dot_word(chars: &[char], i: usize) -> Option<(Tok, usize)> {
    let mut j = i + 1;
    while j < chars.len() && chars[j].is_ascii_alphabetic() {
        j += 1;
    }
    if j >= chars.len() || chars[j] != '.' || j == i + 1 {
        return None;
    }
    let word: String = chars[i + 1..j].iter().collect::<String>().to_lowercase();
    let tok = match word.as_str() {
        "and" => Tok::Op(Op::And),
        "or" => Tok::Op(Op::Or),
        "not" => Tok::Op(Op::Not),
        "true" => Tok::True,
        "false" => Tok::False,
        "eq" => Tok::Op(Op::Eq),
        "ne" => Tok::Op(Op::Ne),
        "lt" => Tok::Op(Op::Lt),
        "le" => Tok::Op(Op::Le),
        "gt" => Tok::Op(Op::Gt),
        "ge" => Tok::Op(Op::Ge),
        _ => return None,
    };
    Some((tok, j + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        let (lines, errs) = lex(src);
        assert!(errs.is_empty(), "lex errors: {errs:?}");
        assert_eq!(lines.len(), 1, "expected one logical line: {lines:?}");
        lines.into_iter().next().unwrap().tokens
    }

    #[test]
    fn identifiers_lowercased() {
        assert_eq!(
            toks("Wsub = DUM"),
            vec![
                Tok::Ident("wsub".into()),
                Tok::Assign,
                Tok::Ident("dum".into())
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(toks("x = 42")[2], Tok::Int(42));
        assert_eq!(toks("x = 0.20")[2], Tok::Real(0.20));
        assert_eq!(toks("x = 8.1328e-3")[2], Tok::Real(8.1328e-3));
        assert_eq!(toks("x = 1.5d0")[2], Tok::Real(1.5));
        assert_eq!(toks("x = 2.0_r8")[2], Tok::Real(2.0));
        assert_eq!(toks("x = 1.")[2], Tok::Real(1.0));
        assert_eq!(toks("x = .5")[2], Tok::Real(0.5));
    }

    #[test]
    fn goffgratch_coefficient_survives() {
        // The exact literal from the GOFFGRATCH bug (§6.3).
        assert_eq!(toks("c = 8.1328e-3")[2], Tok::Real(8.1328e-3));
        assert_eq!(toks("c = 8.1828e-3")[2], Tok::Real(8.1828e-3));
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks("s = 'FLWDS'")[2], Tok::Str("FLWDS".into()));
        assert_eq!(toks("s = 'don''t'")[2], Tok::Str("don't".into()));
        assert_eq!(toks("s = \"x\"")[2], Tok::Str("x".into()));
    }

    #[test]
    fn comments_stripped_but_not_in_strings() {
        assert_eq!(toks("x = 1 ! set x").len(), 3);
        assert_eq!(toks("s = 'a!b'")[2], Tok::Str("a!b".into()));
    }

    #[test]
    fn continuation_lines_joined() {
        let (lines, errs) = lex("x = a + &\n    b");
        assert!(errs.is_empty());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].tokens.len(), 5);
        assert_eq!(lines[0].line, 1);
    }

    #[test]
    fn continuation_with_leading_ampersand() {
        let (lines, _) = lex("call foo(a, &\n  & b)");
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].tokens,
            vec![
                Tok::Ident("call".into()),
                Tok::Ident("foo".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::RParen
            ]
        );
    }

    #[test]
    fn very_long_statement() {
        // CESM contains a 3500-character statement (§4.2); build a long sum
        // across many continuations and check it survives.
        let mut src = String::from("total = x0");
        for i in 1..200 {
            src.push_str(&format!(" + &\n x{i}"));
        }
        let (lines, errs) = lex(&src);
        assert!(errs.is_empty());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].tokens.len(), 2 + 200 + 199);
    }

    #[test]
    fn dot_operators() {
        let t = toks("ok = a .and. b .or. .not. c");
        assert!(t.contains(&Tok::Op(Op::And)));
        assert!(t.contains(&Tok::Op(Op::Or)));
        assert!(t.contains(&Tok::Op(Op::Not)));
        let t = toks("ok = a .lt. b");
        assert!(t.contains(&Tok::Op(Op::Lt)));
        assert_eq!(toks("ok = .true.")[2], Tok::True);
    }

    #[test]
    fn two_char_operators() {
        let t = toks("y = a**2 + s // t");
        assert!(t.contains(&Tok::Op(Op::Pow)));
        assert!(t.contains(&Tok::Op(Op::Concat)));
        let t = toks("ok = a /= b");
        assert!(t.contains(&Tok::Op(Op::Ne)));
        let t = toks("use m, only: a => b");
        assert!(t.contains(&Tok::Arrow));
    }

    #[test]
    fn declarations_tokens() {
        let t = toks("real(r8), dimension(pcols) :: wsub");
        assert!(t.contains(&Tok::DoubleColon));
        assert!(t.contains(&Tok::Ident("dimension".into())));
    }

    #[test]
    fn percent_for_derived_types() {
        let t = toks("w = state%omega");
        assert_eq!(
            t,
            vec![
                Tok::Ident("w".into()),
                Tok::Assign,
                Tok::Ident("state".into()),
                Tok::Percent,
                Tok::Ident("omega".into())
            ]
        );
    }

    #[test]
    fn semicolons_split_statements() {
        let (lines, _) = lex("a = 1; b = 2");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].line, 1);
        assert_eq!(lines[1].line, 1);
    }

    #[test]
    fn blank_and_comment_only_lines_skipped() {
        let (lines, _) = lex("\n! header comment\n\n  x = 1\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].line, 4);
    }

    #[test]
    fn unterminated_string_is_error() {
        let (_, errs) = lex("s = 'oops");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unterminated"));
    }

    #[test]
    fn number_then_dot_operator() {
        let t = toks("ok = 1.eq.n");
        assert_eq!(t[2], Tok::Int(1));
        assert_eq!(t[3], Tok::Op(Op::Eq));
    }
}
