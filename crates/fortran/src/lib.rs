//! # rca-fortran — Fortran-90 subset frontend for climate-rca
//!
//! The paper converts CESM Fortran into ASTs with fparser (plus KGen helper
//! functions and a custom string parser for the cases fparser cannot
//! handle, §4.1–4.2). No Rust Fortran frontend exists, so this crate
//! implements the dialect the synthetic model emits — which is also the
//! dialect CESM's physics code is written in:
//!
//! - free-form source with `&` continuations, `!` comments, `;` separators;
//! - modules with `use` (renames + only-lists), derived types, named
//!   interfaces (`module procedure`), module variables and parameters;
//! - subroutines and (elemental/pure) functions with `result(...)`;
//! - declarations with kind specs, `parameter`, `intent`, `dimension`,
//!   `pointer`, initializers, per-entity shapes;
//! - executable statements: assignments (incl. array elements and
//!   derived-type refs `a%b%c(i)`), `call`, block/one-line `if`,
//!   `do`/`do while`, `return`/`exit`/`cycle`;
//! - full expression grammar with Fortran precedence, dot-operators, `d`
//!   exponents and kind-suffixed literals.
//!
//! Two deliberate design echoes of the paper:
//!
//! 1. `name(args)` stays **ambiguous** ([`ast::Expr::CallOrIndex`]) — array
//!    reference vs. function call is only resolvable "after creating a hash
//!    table of function names" once all files are read; that second pass
//!    lives in `rca-metagraph`.
//! 2. Parsing is **fault-tolerant**: bad statements become diagnostics, not
//!    failures (the paper loses only 10 of 660k lines).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    Attr, BaseType, DeclEntity, Declaration, DerivedType, Expr, Interface, Module, SourceFile,
    Stmt, Subprogram, SubprogramKind, UseStmt,
};
pub use error::ParseError;
pub use lexer::lex;
pub use parser::parse_source;
pub use token::{LogicalLine, Op, Tok};
