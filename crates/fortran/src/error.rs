//! Parse diagnostics.
//!
//! The paper's parsing pipeline is deliberately tolerant: of the 660k
//! coverage-filtered lines it fails on only 10 assignment statements
//! (§4.2), falling back through three parsers. We mirror that policy:
//! errors are *collected*, the offending statement is skipped, and parsing
//! continues.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A recoverable parse error tied to a source line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// 1-based physical line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new(42, "bad token");
        assert_eq!(e.to_string(), "line 42: bad token");
    }
}
