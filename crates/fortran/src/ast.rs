//! Abstract syntax tree for the Fortran-90 subset.
//!
//! Mirrors the structures the paper extracts (§4): modules with `use`
//! associations (renames and only-lists), derived types, interfaces,
//! subprograms, and assignment/call statements. The AST deliberately keeps
//! `name(args)` as [`Expr::CallOrIndex`]: "Fortran syntax does not always
//! distinguish function calls from arrays, so correct associations must be
//! made after creating a hash table of function names" — that resolution is
//! the metagraph builder's job, after *all* files are read.

use serde::{Deserialize, Serialize};

/// A parsed source file (one or more modules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceFile {
    /// File path or synthetic name (e.g. `micro_mg.F90`).
    pub path: String,
    /// Modules defined in the file.
    pub modules: Vec<Module>,
}

/// A Fortran module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (lowercase).
    pub name: String,
    /// `use` statements at module scope.
    pub uses: Vec<UseStmt>,
    /// Derived-type definitions.
    pub types: Vec<DerivedType>,
    /// Module-level variable/parameter declarations.
    pub decls: Vec<Declaration>,
    /// Named interfaces mapping to module procedures.
    pub interfaces: Vec<Interface>,
    /// Contained subprograms.
    pub subprograms: Vec<Subprogram>,
    /// Line of the `module` statement.
    pub line: u32,
}

/// `use mod_name` / `use mod_name, only: a, b => c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UseStmt {
    /// Source module name.
    pub module: String,
    /// `only` list as `(local_name, remote_name)`; `None` means the whole
    /// module's public names are imported. A plain `only: a` has
    /// `local == remote`; a rename `only: a => b` maps local `a` to remote
    /// `b` ("we map the target of use statements to their local names to
    /// establish correct local symbols ... resolving Fortran renames").
    pub only: Option<Vec<(String, String)>>,
    /// Source line.
    pub line: u32,
}

/// A derived-type definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerivedType {
    /// Type name.
    pub name: String,
    /// Field declarations.
    pub fields: Vec<Declaration>,
    /// Source line of `type ::`.
    pub line: u32,
}

/// A named interface block (static dispatch is unresolvable, so the
/// metagraph maps "all possible connections").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interface {
    /// Generic name.
    pub name: String,
    /// Specific module procedures it may dispatch to.
    pub procedures: Vec<String>,
    /// Source line.
    pub line: u32,
}

/// Base type of a declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseType {
    /// `real` (any kind).
    Real,
    /// `integer`.
    Integer,
    /// `logical`.
    Logical,
    /// `character` (any length spec).
    Character,
    /// `type(name)`.
    Derived(String),
}

/// Declaration attributes we track.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attr {
    /// `parameter` — compile-time constant.
    Parameter,
    /// `intent(in)`.
    IntentIn,
    /// `intent(out)`.
    IntentOut,
    /// `intent(inout)`.
    IntentInOut,
    /// `dimension(...)` present (arrays are atomic in the digraph).
    Dimension,
    /// `pointer` (treated as a normal variable, §4.2).
    Pointer,
    /// `public` visibility.
    Public,
    /// `private` visibility.
    Private,
    /// `allocatable`.
    Allocatable,
    /// `save`.
    Save,
}

/// One declared entity within a declaration statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeclEntity {
    /// Entity name.
    pub name: String,
    /// Per-entity shape, e.g. `arr(pcols)`; `None` when scalar or shaped by
    /// a `dimension(...)` attribute.
    pub shape: Option<Vec<Expr>>,
    /// Initializer, if any.
    pub init: Option<Expr>,
}

/// One declaration statement, possibly declaring several names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Declaration {
    /// Base type.
    pub base: BaseType,
    /// Attributes.
    pub attrs: Vec<Attr>,
    /// Shape from a `dimension(...)` attribute, applying to every entity
    /// without its own shape.
    pub dims: Option<Vec<Expr>>,
    /// Declared entities.
    pub entities: Vec<DeclEntity>,
    /// Source line.
    pub line: u32,
}

impl Declaration {
    /// Whether the declaration carries `parameter`.
    pub fn is_parameter(&self) -> bool {
        self.attrs.contains(&Attr::Parameter)
    }

    /// The effective shape of `entity`, if it is an array.
    pub fn shape_of<'a>(&'a self, entity: &'a DeclEntity) -> Option<&'a [Expr]> {
        entity.shape.as_deref().or(self.dims.as_deref())
    }
}

/// Subprogram flavor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SubprogramKind {
    /// `subroutine`.
    Subroutine,
    /// `function`, with the result variable name (defaults to the function
    /// name when no `result(...)` clause is given).
    Function {
        /// Name of the result variable.
        result: String,
    },
}

/// A subroutine or function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subprogram {
    /// Flavor (and result name for functions).
    pub kind: SubprogramKind,
    /// Subprogram name.
    pub name: String,
    /// `elemental` prefix (the Goff–Gratch function is elemental, §6.3).
    pub elemental: bool,
    /// `pure` prefix.
    pub pure: bool,
    /// Dummy-argument names in order.
    pub args: Vec<String>,
    /// Local `use` statements.
    pub uses: Vec<UseStmt>,
    /// Local declarations (covers dummies too).
    pub decls: Vec<Declaration>,
    /// Executable body.
    pub body: Vec<Stmt>,
    /// Source line of the header.
    pub line: u32,
}

impl Subprogram {
    /// The name holding the return value (functions only).
    pub fn result_name(&self) -> Option<&str> {
        match &self.kind {
            SubprogramKind::Function { result } => Some(result),
            SubprogramKind::Subroutine => None,
        }
    }
}

/// Executable statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `target = value`. The target may be a plain variable, an array
    /// element (`a(i)`), or a derived-type reference (`state%omega`).
    Assign {
        /// Left-hand side.
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `call name(args)`.
    Call {
        /// Callee name (possibly a generic interface).
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `if/else if/else` chain: `(condition, block)` arms; a `None`
    /// condition is the `else` arm.
    If {
        /// Arms in order.
        arms: Vec<(Option<Expr>, Vec<Stmt>)>,
        /// Source line of `if`.
        line: u32,
    },
    /// Counted `do` loop.
    Do {
        /// Loop variable.
        var: String,
        /// Start expression.
        start: Expr,
        /// End expression.
        end: Expr,
        /// Optional stride.
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line of `do`.
        line: u32,
    },
    /// `do while (cond)`.
    DoWhile {
        /// Continuation condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `return`.
    Return {
        /// Source line.
        line: u32,
    },
    /// `exit` (break the innermost loop).
    Exit {
        /// Source line.
        line: u32,
    },
    /// `cycle` (continue the innermost loop).
    Cycle {
        /// Source line.
        line: u32,
    },
}

impl Stmt {
    /// The statement's source line.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Assign { line, .. }
            | Stmt::Call { line, .. }
            | Stmt::If { line, .. }
            | Stmt::Do { line, .. }
            | Stmt::DoWhile { line, .. }
            | Stmt::Return { line }
            | Stmt::Exit { line }
            | Stmt::Cycle { line } => *line,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Real literal.
    Real(f64),
    /// Integer literal.
    Int(i64),
    /// Character literal.
    Str(String),
    /// Logical literal.
    Logical(bool),
    /// Variable reference.
    Var(String),
    /// `name(args)` — function call *or* array element; disambiguated by
    /// the metagraph's function hash table (paper §4.2).
    CallOrIndex {
        /// Called/indexed name.
        name: String,
        /// Arguments or subscripts.
        args: Vec<Expr>,
    },
    /// `base%field` or `base%field(subs)`.
    DerivedRef {
        /// The base reference (`elem(ie)%derived` nests here).
        base: Box<Expr>,
        /// Accessed field.
        field: String,
        /// Subscripts applied to the field (`state%q(i,k)`); empty if none.
        subs: Vec<Expr>,
    },
    /// Unary operation (`-x`, `.not. x`, `+x`).
    Unary {
        /// Operator.
        op: crate::token::Op,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: crate::token::Op,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Array-section bound `lo:hi` (either side optional), only valid
    /// inside subscript lists.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
}

impl Expr {
    /// The **canonical name** of a reference expression (paper §4.2): for a
    /// derived-type chain the *last* `%` component
    /// (`elem(ie)%derived%omega_p` → `omega_p`); for arrays the base name
    /// (indices ignored — arrays are atomic); for plain variables the name
    /// itself. Returns `None` for non-reference expressions.
    pub fn canonical_name(&self) -> Option<&str> {
        match self {
            Expr::Var(n) => Some(n),
            Expr::CallOrIndex { name, .. } => Some(name),
            Expr::DerivedRef { field, .. } => Some(field),
            _ => None,
        }
    }

    /// Collects every variable-like name referenced in this expression
    /// (canonical names of leaves), left-to-right, including derived-type
    /// bases' subscript variables.
    pub fn referenced_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(n) => out.push(n),
            Expr::CallOrIndex { name, args } => {
                out.push(name);
                for a in args {
                    a.referenced_names(out);
                }
            }
            Expr::DerivedRef { base, field, subs } => {
                out.push(field);
                // Base contributes its subscripts but its own name is
                // subsumed by the canonical field name.
                if let Expr::CallOrIndex { args, .. } = base.as_ref() {
                    for a in args {
                        a.referenced_names(out);
                    }
                }
                if let Expr::DerivedRef { .. } = base.as_ref() {
                    base.referenced_names(out);
                }
                for s in subs {
                    s.referenced_names(out);
                }
            }
            Expr::Unary { expr, .. } => expr.referenced_names(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.referenced_names(out);
                rhs.referenced_names(out);
            }
            Expr::Range { lo, hi } => {
                if let Some(l) = lo {
                    l.referenced_names(out);
                }
                if let Some(h) = hi {
                    h.referenced_names(out);
                }
            }
            // Literals reference nothing.
            Expr::Real(_) | Expr::Int(_) | Expr::Str(_) | Expr::Logical(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_name_of_derived_chain() {
        // elem(ie)%derived%omega_p  →  "omega_p" (paper's own example)
        let e = Expr::DerivedRef {
            base: Box::new(Expr::DerivedRef {
                base: Box::new(Expr::CallOrIndex {
                    name: "elem".into(),
                    args: vec![Expr::Var("ie".into())],
                }),
                field: "derived".into(),
                subs: vec![],
            }),
            field: "omega_p".into(),
            subs: vec![],
        };
        assert_eq!(e.canonical_name(), Some("omega_p"));
    }

    #[test]
    fn canonical_name_array_atomic() {
        let e = Expr::CallOrIndex {
            name: "qctend".into(),
            args: vec![Expr::Var("i".into()), Expr::Var("k".into())],
        };
        assert_eq!(e.canonical_name(), Some("qctend"));
    }

    #[test]
    fn referenced_names_walks_everything() {
        // dum = ratio * qniic(i) + state%omega
        let e = Expr::Binary {
            op: crate::token::Op::Add,
            lhs: Box::new(Expr::Binary {
                op: crate::token::Op::Mul,
                lhs: Box::new(Expr::Var("ratio".into())),
                rhs: Box::new(Expr::CallOrIndex {
                    name: "qniic".into(),
                    args: vec![Expr::Var("i".into())],
                }),
            }),
            rhs: Box::new(Expr::DerivedRef {
                base: Box::new(Expr::Var("state".into())),
                field: "omega".into(),
                subs: vec![],
            }),
        };
        let mut names = Vec::new();
        e.referenced_names(&mut names);
        assert_eq!(names, vec!["ratio", "qniic", "i", "omega"]);
    }

    #[test]
    fn non_reference_has_no_canonical_name() {
        assert_eq!(Expr::Real(1.0).canonical_name(), None);
        let b = Expr::Binary {
            op: crate::token::Op::Add,
            lhs: Box::new(Expr::Var("a".into())),
            rhs: Box::new(Expr::Var("b".into())),
        };
        assert_eq!(b.canonical_name(), None);
    }

    #[test]
    fn function_result_name() {
        let f = Subprogram {
            kind: SubprogramKind::Function {
                result: "es".into(),
            },
            name: "goffgratch".into(),
            elemental: true,
            pure: false,
            args: vec!["t".into()],
            uses: vec![],
            decls: vec![],
            body: vec![],
            line: 1,
        };
        assert_eq!(f.result_name(), Some("es"));
    }
}
