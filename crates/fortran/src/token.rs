//! Token definitions for the Fortran-90 subset.
//!
//! Fortran has **no reserved words** — `if`, `do`, even `end` are legal
//! identifiers — so keywords are not distinguished at the token level; the
//! parser matches identifier spellings in context. Identifiers are
//! case-normalized to lowercase (Fortran is case-insensitive).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary and unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `//` string concatenation
    Concat,
    /// `==` / `.eq.`
    Eq,
    /// `/=` / `.ne.`
    Ne,
    /// `<` / `.lt.`
    Lt,
    /// `<=` / `.le.`
    Le,
    /// `>` / `.gt.`
    Gt,
    /// `>=` / `.ge.`
    Ge,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "/",
            Op::Pow => "**",
            Op::Concat => "//",
            Op::Eq => "==",
            Op::Ne => "/=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::And => ".and.",
            Op::Or => ".or.",
            Op::Not => ".not.",
        };
        write!(f, "{s}")
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Tok {
    /// Identifier (lowercased). Keywords are identifiers.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (kind suffixes like `_r8` and `d` exponents folded in).
    Real(f64),
    /// Character literal content (quotes stripped, doubled quotes unescaped).
    Str(String),
    /// `.true.`
    True,
    /// `.false.`
    False,
    /// Operator.
    Op(Op),
    /// `=` (assignment, *not* comparison)
    Assign,
    /// `=>` (rename in use-statements, pointer assignment)
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `::`
    DoubleColon,
    /// `:`
    Colon,
    /// `%`
    Percent,
}

impl Tok {
    /// Whether this token is the identifier `word` (already lowercase).
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == word)
    }
}

/// One *logical* line: physical lines joined across `&` continuations, with
/// comments stripped, `;`-separated statements split apart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalLine {
    /// Tokens of the statement.
    pub tokens: Vec<Tok>,
    /// 1-based physical line number where the statement starts.
    pub line: u32,
}
